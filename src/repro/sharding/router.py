"""Scatter/merge router over a sharded, replicated serving fleet.

:class:`ShardRouter` is the fleet counterpart of a single
:class:`~repro.serving.server.ViewServer`: the workload database is
dealt into key-range shards (:mod:`repro.sharding.partition`), each
shard runs one *primary* server plus N read replicas — every one an
ordinary ``ViewServer`` whose :class:`~repro.serving.pool.ConnectionPool`
snapshot-clones the shard's source database — and a request fans out to
one server per shard, the per-shard documents merging under the schema
tree's spine (:mod:`repro.sharding.merge`) into a single response that
is byte-identical to a single-box run over the unpartitioned data.

Each shard is a *replica set*: the primary owns the shard's
:class:`~repro.maintenance.tracker.WriteTracker`, and every replica has
its **own tracker lineage** fed by a
:class:`~repro.sharding.replica.ReplicaApplier` that replays the
primary's write events with an injectable delay — so replicas genuinely
lag, and reads route **lag-aware**: strict reads pin to the primary or
a caught-up replica, bounded-staleness reads accept replicas within the
policy's version budget, and the manual policy ignores lag entirely.
Member eligibility is further gated by a per-member
:class:`~repro.sharding.replica.ReplicaHealth` machine (fed by request
outcomes and probe latencies; dead members readmit through half-open
probes in the E16 breaker shape) and by fleet-scoped fault injection
(:class:`~repro.resilience.faults.FleetFaultPlan`): a crashed replica
is skipped (and its pool refuses new sessions for in-flight work), a
partitioned primary stays writable but unreadable from the router.

Within the eligible members, reads balance round-robin across the
caught-up healthy set; a member whose trace comes back failed (breaker
open, deadline, fault) fails over to the next candidate, and when no
member on a shard can compute, the shard serves its degraded-stale
fallback if any member has one — the router-level outcome then
degrades rather than erroring, mirroring the single-box resilience
semantics per shard. Hedged requests carry a
:class:`~repro.sharding.replica.PlacementGroup`; the second attempt
prefers a member the first attempt did not use (anti-affinity),
falling back to the same pool only on 1-member shards.

Writes route through :meth:`ShardRouter.route_write`: the write
function runs once per shard against ``(shard source, shard tracker)``,
so delta/fragment maintenance stays entirely shard-local — each shard's
tracker only ever sees its own rows, and each shard's result cache
splices only its own slice of the document.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.errors import ReplicaUnavailable, ReproError
from repro.maintenance.policy import StalenessPolicy
from repro.maintenance.tracker import WriteTracker
from repro.relational.engine import Database
from repro.relational.schema import Catalog
from repro.resilience.faults import FaultPlan, FleetFaultPlan
from repro.resilience.policy import ResiliencePolicy
from repro.schema_tree.model import SchemaTreeQuery
from repro.serving.fingerprint import fingerprint_catalog, plan_key
from repro.serving.server import (
    OUTCOMES,
    PublishRequest,
    RequestTrace,
    ViewServer,
)
from repro.sharding.merge import MergePlan, merge_documents, plan_merge
from repro.sharding.replica import ReplicaApplier, ReplicaHealth
from repro.sharding.partition import (
    KeyRangePartitioner,
    PartitionScheme,
    ShardingError,
    derive_partition_column,
    partition_database,
    partition_keys,
)
from repro.xmlcore.nodes import Document
from repro.xmlcore.parser import parse_fragment
from repro.xmlcore.serializer import serialize


@dataclass
class RouterTrace:
    """Per-request record of one fleet-wide serve.

    ``shards`` holds one summary dict per shard (in shard order) naming
    the server that ultimately answered (``primary`` / ``replica-N``),
    its outcome/freshness, and its latency — the scatter detail behind
    the merged totals. ``outcome`` follows the single-box taxonomy:
    ``success`` only when every shard computed fresh bytes,
    ``degraded`` when every shard served *something* but at least one
    fell back to stale bytes, else the first failing shard's outcome.
    """

    request_id: int
    label: str
    strategy: str
    outcome: str = "success"
    freshness: str = "bypass"
    version_lag: int = 0
    failovers: int = 0
    shard_count: int = 0
    queries_executed: int = 0
    rows_fetched: int = 0
    execute_seconds: float = 0.0
    merge_seconds: float = 0.0
    serialize_seconds: float = 0.0
    total_seconds: float = 0.0
    shards: list[dict] = field(default_factory=list)
    error: Optional[str] = None
    xml: Optional[str] = None

    def to_dict(self, include_xml: bool = False) -> dict:
        """JSON-friendly trace record; ``include_xml`` adds the bytes."""
        record = {
            "request_id": self.request_id,
            "label": self.label,
            "strategy": self.strategy,
            "outcome": self.outcome,
            "freshness": self.freshness,
            "version_lag": self.version_lag,
            "failovers": self.failovers,
            "shard_count": self.shard_count,
            "queries_executed": self.queries_executed,
            "rows_fetched": self.rows_fetched,
            "execute_seconds": round(self.execute_seconds, 6),
            "merge_seconds": round(self.merge_seconds, 6),
            "serialize_seconds": round(self.serialize_seconds, 6),
            "total_seconds": round(self.total_seconds, 6),
            "shards": self.shards,
            "error": self.error,
        }
        if include_xml:
            record["xml"] = self.xml
        return record


class _Member:
    """One member of a shard's replica set: server + lineage + health."""

    __slots__ = ("name", "role", "server", "tracker", "health", "applier")

    def __init__(
        self,
        name: str,
        role: int,
        server: ViewServer,
        tracker: WriteTracker,
        health: ReplicaHealth,
        applier: Optional[ReplicaApplier],
    ):
        self.name = name
        self.role = role  # 0 = primary
        self.server = server
        self.tracker = tracker
        self.health = health
        self.applier = applier

    def lag(self, shard: "_Shard") -> int:
        """Write events on the shard the member has not yet applied."""
        if self.role == 0:
            return 0
        return max(0, shard.tracker.clock() - self.tracker.clock())


class _Shard:
    """One shard's serving stack: source, primary tracker, replica set."""

    def __init__(
        self,
        index: int,
        source: Database,
        tracker: Optional[WriteTracker],
        members: Sequence[_Member],
    ):
        self.index = index
        self.source = source
        self.tracker = tracker
        self.members = list(members)
        self._rr = 0
        self._lock = threading.Lock()

    @property
    def servers(self) -> list[tuple[str, ViewServer]]:
        """Members as ``(name, server)`` pairs (metrics/lifecycle paths)."""
        return [(member.name, member.server) for member in self.members]

    def rotation(self) -> int:
        """The round-robin cursor for this read's balanced starting point."""
        with self._lock:
            start = self._rr
            self._rr += 1
        return start


class ShardRouter:
    """Routes requests across shards and merges their responses.

    Construct with one source :class:`Database` per shard (already
    partitioned — see :meth:`build` for the end-to-end path from a
    single unpartitioned source). Each shard gets a primary server and
    ``replicas`` read replicas; every server clones its own snapshot of
    the shard source, so replicas are genuine independent read copies.

    ``faults``, when given, is a per-shard sequence of
    :class:`FaultPlan` (or ``None``) applied to that shard's **primary
    only** — replicas stay clean, making them the failover target the
    fault tests exercise. ``fleet_faults`` is a single
    :class:`FleetFaultPlan` scheduling whole-member faults (replica
    crash, apply-stall, primary read-partition) across every shard.
    ``replica_lag_ms`` is the injectable apply delay: 0 keeps
    propagation synchronous, > 0 makes replicas genuinely lag by that
    long per event.
    """

    def __init__(
        self,
        catalog: Catalog,
        sources: Sequence[Database],
        *,
        replicas: int = 0,
        workers: int = 2,
        trackers: Optional[Sequence[WriteTracker]] = None,
        staleness: str = "strict",
        maintenance: str = "full",
        fragment_policy=None,
        resilience: Optional[ResiliencePolicy] = None,
        faults: Optional[Sequence[Optional[FaultPlan]]] = None,
        fleet_faults: Optional[FleetFaultPlan] = None,
        replica_lag_ms: float = 0.0,
        health_factory: Optional[Callable[[], ReplicaHealth]] = None,
        keep_xml: bool = True,
        cache_capacity: int = 64,
        result_cache_capacity: int = 128,
        router_workers: Optional[int] = None,
        scheme: Optional[PartitionScheme] = None,
        partitioner: Optional[KeyRangePartitioner] = None,
        owns_sources: bool = False,
    ):
        if not sources:
            raise ShardingError("router needs at least one shard source")
        if replicas < 0:
            raise ShardingError(f"replicas must be >= 0, got {replicas}")
        if trackers is not None and len(trackers) != len(sources):
            raise ShardingError(
                f"{len(trackers)} trackers for {len(sources)} shards"
            )
        if faults is not None and len(faults) != len(sources):
            raise ShardingError(
                f"{len(faults)} fault plans for {len(sources)} shards"
            )
        self.catalog = catalog
        self.replicas = replicas
        self.keep_xml = keep_xml
        self.scheme = scheme
        self.partitioner = partitioner
        self.fleet_faults = fleet_faults
        self.replica_lag_ms = replica_lag_ms
        # Version budget the routing layer holds reads to: 0 (strict),
        # N (bounded:N), or None (manual — lag never gates).
        policy = (
            StalenessPolicy.parse(staleness)
            if isinstance(staleness, str)
            else staleness
        )
        if policy.kind == "strict":
            self._lag_budget: Optional[int] = 0
        elif policy.kind == "bounded":
            self._lag_budget = policy.max_lag
        else:
            self._lag_budget = None
        self._owns_sources = owns_sources
        self._catalog_fingerprint = fingerprint_catalog(catalog)
        self._merge_plans: dict[str, MergePlan] = {}
        self._merge_lock = threading.Lock()
        # Merged-response memo: (plan key, strategy, per-shard xml) ->
        # merged bytes. Keyed by the shard xml *strings themselves*
        # (served by reference from the shard result caches, so hashing
        # is amortized and equality is an identity check): when no
        # shard's response changed since the last merge, the merged
        # bytes cannot have changed either, and the router skips the
        # merge + serialize entirely — the fleet analogue of a result-
        # cache hit. Bounded LRU; bypass_cache requests skip it.
        self._merged_cache: "dict[tuple, str]" = {}
        self._merged_capacity = 32
        self._merged_hits = 0
        self._merged_misses = 0
        # Parsed-fragment memo: shard xml -> parsed document. A shard
        # serving result-cache hits returns the same xml string on
        # every request but (under ``maintenance="full"``) carries no
        # captured document, so without this the merge path re-parses
        # every *unchanged* slice whenever any other shard's slice
        # changed — at scale that parse costs more than the recompute
        # the scatter avoided. merge_documents never mutates its
        # inputs, so a cached document is shared safely across merges.
        self._parsed_cache: "dict[str, Document]" = {}
        self._parsed_capacity = max(16, 2 * len(sources))
        self._parsed_hits = 0
        self._parsed_misses = 0
        self._lock = threading.Lock()
        self._next_request_id = 1
        self.requests_served = 0
        self.errors = 0
        self._failovers_total = 0
        self._outcome_counts = {outcome: 0 for outcome in OUTCOMES}
        # Fleet-routing counters: reads served from a member that was
        # behind the primary (and the worst such lag), members skipped
        # by crash/partition/lag/health gates, shards left with no
        # eligible member, and hedge anti-affinity placement outcomes.
        self._stale_serves = 0
        self._max_member_lag_served = 0
        self._max_served_lag = 0
        self._crash_skips = 0
        self._partition_skips = 0
        self._lag_skips = 0
        self._dead_skips = 0
        self._no_candidates = 0
        self._anti_affinity_hits = 0
        self._anti_affinity_misses = 0
        self._closed = False
        if health_factory is None:
            health_factory = ReplicaHealth
        self.shards: list[_Shard] = []
        for index, source in enumerate(sources):
            tracker = trackers[index] if trackers is not None else WriteTracker()
            shard_faults = faults[index] if faults is not None else None
            members: list[_Member] = []
            for role in range(replicas + 1):
                name = "primary" if role == 0 else f"replica-{role}"
                if role == 0:
                    member_tracker = tracker
                    applier = None
                else:
                    # Split lineage: the replica's own tracker advances
                    # only as the applier replays the primary's events,
                    # so replica-side version_lag is real, not 0 by
                    # aliasing.
                    member_tracker = WriteTracker()
                    applier = ReplicaApplier(
                        tracker,
                        member_tracker,
                        delay_ms=replica_lag_ms,
                        faults=fleet_faults,
                        shard=index,
                        member=name,
                    )
                admission = None
                if fleet_faults is not None and role > 0:
                    admission = self._pool_gate(index, name)
                server = ViewServer(
                    catalog,
                    source=source,
                    workers=workers,
                    cache_capacity=cache_capacity,
                    keep_xml=True,
                    keep_documents=True,
                    tracker=member_tracker,
                    staleness=staleness,
                    result_cache_capacity=result_cache_capacity,
                    maintenance=maintenance,
                    fragment_policy=fragment_policy,
                    resilience=resilience,
                    faults=shard_faults if role == 0 else None,
                    pool_admission=admission,
                )
                members.append(
                    _Member(
                        name, role, server, member_tracker,
                        health_factory(), applier,
                    )
                )
            self.shards.append(_Shard(index, source, tracker, members))
        self._executor = ThreadPoolExecutor(
            max_workers=router_workers or max(4, 2 * len(self.shards)),
            thread_name_prefix="shardrouter",
        )

    @classmethod
    def build(
        cls,
        catalog: Catalog,
        source: Database,
        scheme: PartitionScheme,
        shards: int,
        **kwargs,
    ) -> "ShardRouter":
        """Partition ``source`` by key range and stand up the fleet.

        The router owns the shard databases it creates here and closes
        them with :meth:`close`; the original ``source`` is only read.
        """
        partitioner = KeyRangePartitioner.from_keys(
            partition_keys(source, scheme), shards
        )
        shard_dbs = partition_database(source, scheme, partitioner)
        return cls(
            catalog,
            shard_dbs,
            scheme=scheme,
            partitioner=partitioner,
            owns_sources=True,
            **kwargs,
        )

    # -- request API ---------------------------------------------------------

    def submit(self, request: PublishRequest) -> "Future[RouterTrace]":
        """Enqueue a fleet-wide request; resolves to its merged trace."""
        if self._closed:
            raise RuntimeError("router is closed")
        with self._lock:
            request_id = self._next_request_id
            self._next_request_id += 1
        return self._executor.submit(self._serve, request, request_id)

    async def submit_async(self, request: PublishRequest) -> RouterTrace:
        """Awaitable scatter entry point for the asyncio front end.

        Bridges the scatter executor's future onto the running event
        loop; the caller's coroutine suspends while the fleet serves.
        (The HTTP tier normally goes through
        :class:`~repro.frontend.facade.AsyncViewServer`, which adds
        hedging on top of this same bridge.)
        """
        import asyncio

        return await asyncio.wrap_future(self.submit(request))

    def render(
        self,
        view: SchemaTreeQuery,
        stylesheet=None,
        strategy: str = "nested-loop",
        prune: bool = True,
        paper_mode: bool = False,
        label: str = "",
        bypass_cache: bool = False,
    ) -> RouterTrace:
        """Serve one request synchronously (submit + wait)."""
        return self.submit(
            PublishRequest(
                view=view,
                stylesheet=stylesheet,
                strategy=strategy,
                prune=prune,
                paper_mode=paper_mode,
                label=label,
                bypass_cache=bypass_cache,
            )
        ).result()

    def render_many(
        self, requests: Iterable[PublishRequest]
    ) -> list[RouterTrace]:
        """Serve a batch concurrently; traces come back in request order."""
        futures = [self.submit(request) for request in requests]
        return [future.result() for future in futures]

    def route_write(self, write_fn: Callable[[Database, WriteTracker], object]) -> list:
        """Apply one logical write to every shard, shard-locally tracked.

        ``write_fn(source, tracker)`` runs once per shard in shard
        order. The workload writers address rows by key predicates, so
        each shard's statements only touch rows it owns — the union of
        the per-shard effects equals the single-box effect of the same
        write, which is exactly what the differential suite checks.
        """
        return [
            write_fn(shard.source, shard.tracker) for shard in self.shards
        ]

    # -- serving -------------------------------------------------------------

    def _pool_gate(self, shard: int, member: str) -> Callable[[], None]:
        """The pool admission hook enforcing replica-crash windows.

        Installed on replica pools when a fleet fault plan is present:
        while the crash fault is active at this member's site, every
        ``acquire`` raises :class:`~repro.errors.ReplicaUnavailable`
        (classified transient) — the pool refuses new sessions, so even
        a request already routed here before the window opened fails
        fast instead of computing on a "crashed" member.
        """
        plan = self.fleet_faults

        def gate() -> None:
            if plan.active("replica-crash", shard, member):
                raise ReplicaUnavailable(f"shard{shard}:{member}")

        return gate

    def _candidates(
        self, shard: _Shard, request: PublishRequest
    ) -> list[tuple[_Member, int]]:
        """Eligible members for one read, best candidate first.

        Eligibility gates, in order: fleet faults (a crashed replica or
        a read-partitioned primary is out), the staleness budget (a
        member lagging past the policy's version budget is out — strict
        pins to lag 0, manual never gates), then the health machine (a
        dead member is out unless its cooldown elapsed and a half-open
        probe slot is free). The lag gate runs first so a dead *and*
        lagging member is lag-skipped without ever looking probe-ready.
        Enumeration never consumes the probe slot — that happens in
        :meth:`_dispatch`, against an actual attempt — so a candidate
        that is enumerated but never tried cannot leak it. Ordering:
        caught-up non-suspect members rotate round-robin (load
        balancing), then the rest by (suspect, lag). A hedged request's
        :class:`PlacementGroup` reorders unclaimed members first so the
        hedge lands on a different member than the first attempt
        whenever one exists; claims are recorded at dispatch time, not
        here.

        Returns ``(member, lag-at-pick)`` pairs; the pick-time lag is
        what routing guaranteed, so accounting uses it rather than
        re-reading the clocks after the serve.
        """
        fleet = self.fleet_faults
        crash_skips = partition_skips = lag_skips = dead_skips = 0
        eligible: list[tuple[int, int, _Member]] = []
        for member in shard.members:
            lag = member.lag(shard)
            member.health.observe_lag(lag)
            if fleet is not None:
                if member.role == 0:
                    if fleet.active("partition", shard.index, member.name):
                        partition_skips += 1
                        continue
                elif fleet.active("replica-crash", shard.index, member.name):
                    crash_skips += 1
                    continue
            if self._lag_budget is not None and lag > self._lag_budget:
                lag_skips += 1
                continue
            state = member.health.state()
            if state == "dead" and not member.health.probe_ready():
                dead_skips += 1
                continue
            suspect = 0 if state == "healthy" else 1
            eligible.append((suspect, lag, member))
        if crash_skips or partition_skips or lag_skips or dead_skips:
            with self._lock:
                self._crash_skips += crash_skips
                self._partition_skips += partition_skips
                self._lag_skips += lag_skips
                self._dead_skips += dead_skips
        if not eligible:
            return []
        front = [
            (member, lag)
            for suspect, lag, member in eligible
            if suspect == 0 and lag == 0
        ]
        rest = sorted(
            (
                (suspect, lag, member)
                for suspect, lag, member in eligible
                if not (suspect == 0 and lag == 0)
            ),
            key=lambda entry: (entry[0], entry[1]),
        )
        if len(front) > 1:
            start = shard.rotation() % len(front)
            front = front[start:] + front[:start]
        ordered = front + [(member, lag) for _, lag, member in rest]
        placement = request.placement
        if placement is not None:
            already = placement.claimed(shard.index)
            if already:
                unclaimed = [
                    entry for entry in ordered if entry[0].name not in already
                ]
                with self._lock:
                    if unclaimed:
                        self._anti_affinity_hits += 1
                    else:
                        self._anti_affinity_misses += 1
                if unclaimed:
                    ordered = unclaimed + [
                        entry for entry in ordered if entry[0].name in already
                    ]
        return ordered

    def _dispatch(
        self,
        shard: _Shard,
        candidates: Sequence[tuple[_Member, int]],
        request: PublishRequest,
        start: int = 0,
    ) -> tuple[Optional[int], Optional["Future[RequestTrace]"]]:
        """Admit, claim, and submit the first dispatchable candidate.

        This is where a dead member's half-open probe slot is consumed
        (:meth:`ReplicaHealth.admit`) — never during enumeration — so
        every granted slot is attached to an attempt whose outcome
        (``record_success`` / ``record_failure``, including the
        synthetic failed trace when ``submit`` itself raises) releases
        it. A candidate whose slot was raced away since enumeration is
        skipped like any other dead member. The hedge placement claim
        is recorded here too, against the member actually attempted.
        Returns ``(index, future)``, or ``(None, None)`` when no
        candidate from ``start`` on admits.
        """
        denied = 0
        dispatched: tuple[Optional[int], Optional["Future[RequestTrace]"]]
        dispatched = (None, None)
        for idx in range(start, len(candidates)):
            member = candidates[idx][0]
            if not member.health.admit():
                denied += 1
                continue
            if request.placement is not None:
                request.placement.claim(shard.index, member.name)
            try:
                future = member.server.submit(request)
            except Exception as exc:
                failed: "Future[RequestTrace]" = Future()
                failed.set_result(self._failed_trace(request, str(exc)))
                future = failed
            dispatched = (idx, future)
            break
        if denied:
            with self._lock:
                self._dead_skips += denied
        return dispatched

    def _feed_health(self, member: _Member, shard_trace: RequestTrace) -> None:
        """Turn one member's trace outcome into a health signal.

        ``cancelled`` (a hedge loser) and ``rejected`` (admission shed)
        are intentional, not member failures — the same categories
        :func:`~repro.errors.classify_error` exempts. ``degraded``
        counts as a failure: the member served stale bytes because its
        computation failed.
        """
        if shard_trace.outcome == "success":
            member.health.record_success(shard_trace.total_seconds * 1000.0)
        elif shard_trace.outcome not in ("cancelled", "rejected"):
            member.health.record_failure()

    def _merge_plan(self, request: PublishRequest) -> tuple[str, MergePlan]:
        """The merge plan for this request's *composed* view, cached.

        The spine merge must see the view the shards actually evaluate
        — after stylesheet composition and pruning — so the router
        composes (once per content key, same fingerprint the plan cache
        uses) instead of planning against the raw publishing view.
        Returns ``(plan key, merge plan)``.
        """
        key = plan_key(
            self._catalog_fingerprint,
            request.view,
            request.stylesheet,
            prune=request.prune,
            paper_mode=request.paper_mode,
        )
        with self._merge_lock:
            plan = self._merge_plans.get(key)
            if plan is not None:
                return key, plan
            from repro.core.compose import compose
            from repro.core.optimize import prune_stylesheet_view

            if request.stylesheet is None:
                view = request.view
            else:
                view = compose(
                    request.view,
                    request.stylesheet,
                    self.catalog,
                    paper_mode=request.paper_mode,
                )
                if request.prune:
                    prune_stylesheet_view(view, self.catalog)
            if self.scheme is not None:
                table, column = derive_partition_column(view, self.catalog)
                if (table, column) != (self.scheme.table, self.scheme.column):
                    raise ShardingError(
                        f"view partitions by {table}.{column} but the fleet "
                        f"is dealt by {self.scheme.table}.{self.scheme.column}"
                    )
            plan = plan_merge(view)
            self._merge_plans[key] = plan
            return key, plan

    def _resolve_shard(
        self,
        shard: _Shard,
        candidates: Sequence[tuple[_Member, int]],
        future: "Future[RequestTrace]",
        request: PublishRequest,
    ) -> tuple[str, int, RequestTrace, int]:
        """Wait out one shard's answer, failing over along the candidates.

        Returns ``(member_name, member_lag, trace, failovers)``. Policy:
        take the first ``success``; remember the first ``degraded``
        trace and serve it only after every candidate has been tried;
        otherwise the last failure stands. Every attempted member's
        outcome feeds its health machine. Failover attempts go through
        :meth:`_dispatch`, so each one admits (consuming a dead
        member's probe slot only when actually tried) and records its
        own placement claim.
        """
        degraded: Optional[tuple[str, int, RequestTrace]] = None
        attempt = 0
        member, lag = candidates[0]
        trace = future.result()
        failovers = 0
        while True:
            self._feed_health(member, trace)
            if trace.outcome == "success":
                return member.name, lag, trace, failovers
            if trace.outcome == "degraded" and degraded is None:
                degraded = (member.name, lag, trace)
            if attempt + 1 >= len(candidates):
                break
            next_idx, next_future = self._dispatch(
                shard, candidates, request, start=attempt + 1
            )
            if next_future is None:
                break
            attempt = next_idx
            failovers += 1
            member, lag = candidates[attempt]
            trace = next_future.result()
        if degraded is not None:
            return degraded[0], degraded[1], degraded[2], failovers
        return member.name, lag, trace, failovers

    @staticmethod
    def _failed_trace(request: PublishRequest, error: str) -> RequestTrace:
        """A synthetic error trace for a member that could not be asked."""
        return RequestTrace(
            request_id=0,
            label=request.label,
            strategy=request.strategy,
            cache_hit=False,
            plan_key="",
            outcome="error",
            error=error,
        )

    def _document(self, trace: RequestTrace):
        """The shard's response document, parsing bytes when not kept.

        Served-from-cache responses under ``maintenance="full"`` carry
        no captured document; the serialized bytes are authoritative
        either way, so parsing them back is always equivalent. Parsed
        as a *fragment* because a view whose partition node is
        top-level serializes multiple root elements per shard. Parses
        are memoized on the xml string (served by reference from the
        shard result caches, so repeat lookups are identity checks):
        an unchanged slice is parsed once, not once per merge.
        """
        if trace.document is not None:
            return trace.document
        if trace.xml is None:
            raise ReproError(
                f"shard trace {trace.request_id} has neither document "
                "nor xml to merge"
            )
        with self._merge_lock:
            cached = self._parsed_cache.get(trace.xml)
            if cached is not None:
                self._parsed_hits += 1
                return cached
            self._parsed_misses += 1
        # Parse outside the lock: a concurrent duplicate parse is
        # cheaper than serializing every merge behind one parser.
        document = Document()
        for node in parse_fragment(trace.xml):
            document.append(node)
        with self._merge_lock:
            if trace.xml not in self._parsed_cache and (
                len(self._parsed_cache) >= self._parsed_capacity
            ):
                self._parsed_cache.pop(next(iter(self._parsed_cache)))
            self._parsed_cache[trace.xml] = document
        return document

    def _serve(self, request: PublishRequest, request_id: int) -> RouterTrace:
        started = time.perf_counter()
        trace = RouterTrace(
            request_id=request_id,
            label=request.label,
            strategy=request.strategy,
            shard_count=len(self.shards),
        )
        try:
            self._serve_inner(request, trace)
        except Exception as exc:
            if trace.outcome == "success":
                trace.outcome = "error"
            trace.error = str(exc)
            trace.xml = None
        trace.total_seconds = time.perf_counter() - started
        with self._lock:
            self.requests_served += 1
            self._failovers_total += trace.failovers
            if trace.outcome in self._outcome_counts:
                self._outcome_counts[trace.outcome] += 1
            if trace.outcome not in ("success", "degraded"):
                self.errors += 1
        return trace

    def _merged_lookup(self, key: tuple) -> Optional[str]:
        with self._merge_lock:
            xml = self._merged_cache.get(key)
            if xml is not None:
                self._merged_hits += 1
            else:
                self._merged_misses += 1
            return xml

    def _merged_store(self, key: tuple, xml: str) -> None:
        with self._merge_lock:
            if key not in self._merged_cache and (
                len(self._merged_cache) >= self._merged_capacity
            ):
                self._merged_cache.pop(next(iter(self._merged_cache)))
            self._merged_cache[key] = xml

    def _serve_inner(self, request: PublishRequest, trace: RouterTrace) -> None:
        merge_key, plan = self._merge_plan(request)
        # Scatter: one balanced candidate pick per shard, all in flight
        # at once; failover (if any) happens while other shards compute.
        # A shard with no eligible member (everything crashed /
        # partitioned / lagging past budget) resolves to a synthetic
        # failure without being asked.
        scattered = []
        for shard in self.shards:
            candidates = self._candidates(shard, request)
            idx: Optional[int] = None
            future: Optional["Future[RequestTrace]"] = None
            if candidates:
                idx, future = self._dispatch(shard, candidates, request)
            if future is None:
                # Nothing eligible, or every eligible member lost its
                # probe slot to a concurrent request between enumeration
                # and dispatch.
                with self._lock:
                    self._no_candidates += 1
                scattered.append((shard, [], None))
                continue
            # Trim so the dispatched member leads: _resolve_shard treats
            # candidates[0] as the attempt already in flight.
            scattered.append((shard, candidates[idx:], future))
        resolved: list[tuple[str, int, RequestTrace, int]] = []
        for shard, candidates, future in scattered:
            if future is None:
                resolved.append(
                    (
                        "none",
                        0,
                        self._failed_trace(
                            request,
                            f"no eligible member on shard {shard.index} "
                            "(crashed, partitioned, or lagging past the "
                            "staleness budget)",
                        ),
                        0,
                    )
                )
                continue
            resolved.append(
                self._resolve_shard(shard, candidates, future, request)
            )
        freshness_seen = set()
        failed: Optional[RequestTrace] = None
        any_degraded = False
        stale_served = False
        max_member_lag = 0
        for (name, member_lag, shard_trace, failovers), shard in zip(
            resolved, self.shards
        ):
            trace.failovers += failovers
            trace.queries_executed += shard_trace.queries_executed
            trace.rows_fetched += shard_trace.rows_fetched
            trace.execute_seconds = max(
                trace.execute_seconds, shard_trace.total_seconds
            )
            # The served staleness is the member's catch-up lag at pick
            # time plus however stale the member's own cached entry was
            # under its tracker.
            served_lag = member_lag + shard_trace.version_lag
            trace.version_lag = max(trace.version_lag, served_lag)
            if shard_trace.outcome in ("success", "degraded"):
                max_member_lag = max(max_member_lag, member_lag)
                if served_lag > 0:
                    stale_served = True
            freshness_seen.add(shard_trace.freshness)
            trace.shards.append(
                {
                    "shard": shard.index,
                    "server": name,
                    "outcome": shard_trace.outcome,
                    "freshness": shard_trace.freshness,
                    "lag": member_lag,
                    "total_seconds": round(shard_trace.total_seconds, 6),
                    "failovers": failovers,
                }
            )
            if shard_trace.outcome == "degraded":
                any_degraded = True
            elif shard_trace.outcome != "success" and failed is None:
                failed = shard_trace
        if failed is None:
            with self._lock:
                if stale_served:
                    self._stale_serves += 1
                self._max_member_lag_served = max(
                    self._max_member_lag_served, max_member_lag
                )
                self._max_served_lag = max(
                    self._max_served_lag, trace.version_lag
                )
        if failed is not None:
            trace.outcome = failed.outcome
            trace.error = failed.error
            trace.freshness = (
                freshness_seen.pop()
                if len(freshness_seen) == 1
                else "mixed"
            )
            return
        trace.outcome = "degraded" if any_degraded else "success"
        trace.freshness = (
            freshness_seen.pop() if len(freshness_seen) == 1 else "mixed"
        )
        shard_xmls = tuple(
            shard_trace.xml for _, _, shard_trace, _ in resolved
        )
        cache_key: Optional[tuple] = None
        if not request.bypass_cache and all(
            xml is not None for xml in shard_xmls
        ):
            cache_key = (merge_key, request.strategy) + shard_xmls
            cached = self._merged_lookup(cache_key)
            if cached is not None:
                if self.keep_xml:
                    trace.xml = cached
                return
        documents = [
            self._document(shard_trace) for _, _, shard_trace, _ in resolved
        ]
        merge_started = time.perf_counter()
        merged = merge_documents(plan, documents)
        serialize_started = time.perf_counter()
        trace.merge_seconds = serialize_started - merge_started
        xml = serialize(merged)
        trace.serialize_seconds = time.perf_counter() - serialize_started
        if cache_key is not None:
            self._merged_store(cache_key, xml)
        if self.keep_xml:
            trace.xml = xml

    # -- metrics / lifecycle -------------------------------------------------

    def fleet_metrics(self) -> dict:
        """Replica-resilience counters: routing gates, lag, anti-affinity.

        ``replica_health`` lists every member's health-machine stats
        (plus its live lag and applier progress); ``anti_affinity``
        summarizes hedge placement — ``hits`` are hedge attempts routed
        to a member no earlier attempt of the same request used,
        ``misses`` fell back to an already-used member (1-member
        shards), ``rate`` = hits / (hits + misses).
        """
        with self._lock:
            hits = self._anti_affinity_hits
            misses = self._anti_affinity_misses
            summary = {
                "stale_serves": self._stale_serves,
                "max_member_lag_served": self._max_member_lag_served,
                "max_served_lag": self._max_served_lag,
                "lag_budget": self._lag_budget,
                "skips": {
                    "crash": self._crash_skips,
                    "partition": self._partition_skips,
                    "lagging": self._lag_skips,
                    "dead": self._dead_skips,
                },
                "no_candidates": self._no_candidates,
                "anti_affinity": {
                    "hits": hits,
                    "misses": misses,
                    "rate": (
                        hits / (hits + misses) if hits + misses else None
                    ),
                },
            }
        summary["replica_health"] = [
            {
                "shard": shard.index,
                "members": {
                    member.name: {
                        **member.health.stats(),
                        "lag": member.lag(shard),
                        "applied": (
                            member.applier.applied
                            if member.applier is not None
                            else None
                        ),
                        "stalled_checks": (
                            member.applier.stalled_checks
                            if member.applier is not None
                            else None
                        ),
                    }
                    for member in shard.members
                },
            }
            for shard in self.shards
        ]
        if self.fleet_faults is not None:
            summary["fleet_faults"] = self.fleet_faults.stats()
        return summary

    def metrics(self) -> dict:
        """Router-lifetime counters plus every shard server's metrics."""
        with self._lock:
            summary = {
                "requests_served": self.requests_served,
                "errors": self.errors,
                "failovers": self._failovers_total,
                "outcomes": dict(self._outcome_counts),
            }
        summary["fleet"] = self.fleet_metrics()
        with self._merge_lock:
            summary["merged_cache"] = {
                "hits": self._merged_hits,
                "misses": self._merged_misses,
                "size": len(self._merged_cache),
            }
            summary["parsed_cache"] = {
                "hits": self._parsed_hits,
                "misses": self._parsed_misses,
                "size": len(self._parsed_cache),
            }
        summary["shards"] = [
            {
                "shard": shard.index,
                "servers": {
                    name: server.metrics() for name, server in shard.servers
                },
            }
            for shard in self.shards
        ]
        summary["shard_count"] = len(self.shards)
        summary["replicas"] = self.replicas
        if self.partitioner is not None:
            summary["key_ranges"] = self.partitioner.describe()
        return summary

    def aggregate_metrics(self) -> dict:
        """Fleet metrics in the single-server shape, counters summed.

        ``serve-bench`` and the E18 harness reuse the single-box report
        path unchanged; per-server detail stays available through
        :meth:`metrics`. Dict-valued sections (cache, freshness,
        outcomes, result cache, fragments) sum key-wise across every
        server in the fleet; ``workers`` is the fleet-wide worker-thread
        count. Router-level counters ride along under ``router``.
        """
        per_server = [
            server.metrics()
            for shard in self.shards
            for _, server in shard.servers
        ]
        first = per_server[0]

        def summed(section: str) -> dict:
            keys = first[section]
            return {
                key: sum(m[section][key] for m in per_server) for key in keys
            }

        with self._lock:
            router = {
                "requests_served": self.requests_served,
                "errors": self.errors,
                "failovers": self._failovers_total,
                "outcomes": dict(self._outcome_counts),
                "shard_count": len(self.shards),
                "replicas": self.replicas,
            }
        router["fleet"] = self.fleet_metrics()
        with self._merge_lock:
            router["merged_cache"] = {
                "hits": self._merged_hits,
                "misses": self._merged_misses,
                "size": len(self._merged_cache),
            }
            router["parsed_cache"] = {
                "hits": self._parsed_hits,
                "misses": self._parsed_misses,
                "size": len(self._parsed_cache),
            }
        if self.partitioner is not None:
            router["key_ranges"] = self.partitioner.describe()
        metrics = {
            "requests_served": sum(m["requests_served"] for m in per_server),
            "errors": sum(m["errors"] for m in per_server),
            "workers": sum(m["workers"] for m in per_server),
            "cache": summed("cache"),
            "freshness": summed("freshness"),
            "outcomes": summed("outcomes"),
            "queries_executed": sum(
                m["queries_executed"] for m in per_server
            ),
            "rows_fetched": sum(m["rows_fetched"] for m in per_server),
            "router": router,
        }
        if "result_cache" in first:
            metrics["result_cache"] = summed("result_cache")
            metrics["staleness_policy"] = first["staleness_policy"]
            metrics["maintenance"] = first["maintenance"]
            metrics["delta_fallbacks"] = sum(
                m["delta_fallbacks"] for m in per_server
            )
            metrics["delta_fallbacks_by_reason"] = summed(
                "delta_fallbacks_by_reason"
            )
            metrics["tracker"] = {
                "total_writes": sum(
                    m["tracker"]["total_writes"] for m in per_server
                ),
            }
            if "fragments" in first:
                fragments = {
                    key: sum(m["fragments"][key] for m in per_server)
                    for key in first["fragments"]
                    if key != "policy"
                }
                fragments["policy"] = first["fragments"]["policy"]
                metrics["fragments"] = fragments
        if "resilience" in first:
            resilience = {
                key: sum(m["resilience"][key] for m in per_server)
                for key in ("retries", "deadline_hits", "shed_requests",
                            "degraded_serves")
            }
            resilience["policy"] = first["resilience"]["policy"]
            breakers = [
                m["resilience"]["breaker"]
                for m in per_server
                if m["resilience"]["breaker"] is not None
            ]
            if breakers:
                merged = {
                    key: sum(b[key] for b in breakers)
                    for key in ("opened", "closed", "half_opened",
                                "short_circuits")
                }
                merged["threshold"] = breakers[0]["threshold"]
                merged["cooldown_ms"] = breakers[0]["cooldown_ms"]
                merged["states"] = {
                    state: sum(b["states"][state] for b in breakers)
                    for state in breakers[0]["states"]
                }
                resilience["breaker"] = merged
            else:
                resilience["breaker"] = None
            metrics["resilience"] = resilience
        with_faults = [m["faults"] for m in per_server if "faults" in m]
        if with_faults:
            injected: dict[str, int] = {}
            for stats in with_faults:
                for key, value in stats["injected"].items():
                    injected[key] = injected.get(key, 0) + value
            metrics["faults"] = {"injected": injected}
        return metrics

    def outstanding(self) -> int:
        """Borrowed-but-unreturned connections across the whole fleet."""
        return sum(
            server.pool.outstanding()
            for shard in self.shards
            for _, server in shard.servers
        )

    def close(self) -> None:
        """Shut every shard server down; close owned shard databases.

        Appliers stop first so no replay lands on a tracker whose
        server is mid-shutdown; the thread-name leak scans then see no
        surviving ``shardrouter``-prefixed threads.
        """
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=True)
        for shard in self.shards:
            for member in shard.members:
                if member.applier is not None:
                    member.applier.close()
            for member in shard.members:
                member.server.close()
            if self._owns_sources:
                shard.source.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

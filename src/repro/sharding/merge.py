"""Merge per-shard documents under the schema-tree spine.

Every shard evaluates the full (possibly composed) view over its own
key range, producing a complete document whose *spine* — the literal
elements from the root down to the partition node's parent — is
identical across shards, and whose partition-node instances are the
shard's slice of the top-level key domain. Merging is therefore pure
structure: walk the spine once, concatenate the partition runs in shard
order (ranges ascend, so document order by shard key is preserved), and
keep every other child from shard 0 (spine siblings are literal, hence
byte-identical everywhere).

The merge is **non-destructive**: shard documents may be (and under
delta/fragment maintenance *are*) documents captured inside result
caches, so no shared node is ever re-parented or mutated. The merged
document is a fresh :class:`~repro.xmlcore.nodes.Document` whose spine
chain is shallow-copied; partition instances and off-spine children are
attached *by reference* through direct ``children``-list mutation —
their ``parent`` pointers keep pointing into the shard documents, which
the serializer never reads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.schema_tree.model import SchemaNode, SchemaTreeQuery
from repro.sharding.partition import derive_partition_node
from repro.xmlcore.nodes import Document, Element


class ShardMergeUnsupported(ReproError):
    """The view's shape (or a document's) defeats the spine merge."""


@dataclass
class MergePlan:
    """Everything the merge needs to know about one view's shape.

    ``spine`` is the chain of literal schema nodes from the root element
    down to (and including) the partition node's parent — empty when the
    partition node is itself top-level, as in the plain Figure 1 view.
    """

    partition: SchemaNode
    spine: list[SchemaNode]

    @property
    def spine_tags(self) -> list[str]:
        return [node.tag for node in self.spine]


def plan_merge(view: SchemaTreeQuery) -> MergePlan:
    """Derive and validate the merge plan for a (composed) view.

    Requirements, each checked here so a violation fails loudly at plan
    time instead of corrupting merged output:

    * every query-bearing node lives inside the partition subtree
      (checked by :func:`derive_partition_node`);
    * each spine node's tag is unique among its schema siblings, so the
      per-shard spine element can be located positionally by tag;
    * the partition node's tag is unique among *its* siblings, so the
      partition run in the parent's child list is unambiguous.
    """
    partition = derive_partition_node(view)
    spine: list[SchemaNode] = [
        node for node in partition.path_from_root()
        if not node.is_root and node is not partition
    ]
    for node in spine + [partition]:
        parent = node.parent
        siblings = parent.children if parent is not None else []
        same_tag = [s for s in siblings if s.tag == node.tag]
        if len(same_tag) != 1:
            raise ShardMergeUnsupported(
                f"tag <{node.tag}> is ambiguous among the children of "
                f"node {parent.id if parent else '?'}; the spine merge "
                "cannot locate it positionally"
            )
    return MergePlan(partition=partition, spine=spine)


def _sole_child(container, tag: str) -> Element:
    """The unique element child with ``tag`` (spine walk step)."""
    matches = [
        child
        for child in container.children
        if isinstance(child, Element) and child.tag == tag
    ]
    if len(matches) != 1:
        raise ShardMergeUnsupported(
            f"expected exactly one <{tag}> child on the spine, "
            f"found {len(matches)}"
        )
    return matches[0]


def _split_partition_run(plan: MergePlan, container) -> tuple[list, list, list]:
    """Split a partition parent's children into (prefix, run, suffix).

    The evaluators append children grouped by schema child node, in
    schema order, so a shard's partition instances form one contiguous
    run. A shard serving an empty key slice has no run; its insertion
    point is after the elements of the schema siblings that precede the
    partition node (each literal sibling emits exactly one element per
    parent instance).
    """
    children = container.children
    tag = plan.partition.tag
    indices = [
        index
        for index, child in enumerate(children)
        if isinstance(child, Element) and child.tag == tag
    ]
    if not indices:
        parent = plan.partition.parent
        preceding = 0
        if parent is not None:
            for sibling in parent.children:
                if sibling is plan.partition:
                    break
                preceding += 1
        cut = 0
        seen_elements = 0
        for index, child in enumerate(children):
            if seen_elements == preceding:
                cut = index
                break
            if isinstance(child, Element):
                seen_elements += 1
            cut = index + 1
        return list(children[:cut]), [], list(children[cut:])
    first, last = indices[0], indices[-1]
    if indices != list(range(first, last + 1)):
        raise ShardMergeUnsupported(
            f"partition run of <{tag}> is not contiguous"
        )
    return (
        list(children[:first]),
        list(children[first:last + 1]),
        list(children[last + 1:]),
    )


def merge_documents(plan: MergePlan, documents: list[Document]) -> Document:
    """Merge per-shard documents into one, shard order preserved.

    Shard 0 supplies the spine and every off-spine child (all literal,
    identical across shards); the partition runs concatenate in shard
    order. No input document is mutated — see the module docstring for
    the sharing discipline.
    """
    if not documents:
        raise ShardMergeUnsupported("no shard documents to merge")
    if len(documents) == 1:
        return documents[0]
    # Locate each shard's partition parent by walking its spine.
    parents = []
    for document in documents:
        container = document
        for tag in plan.spine_tags:
            container = _sole_child(container, tag)
        parents.append(container)
    prefix, _, suffix = _split_partition_run(plan, parents[0])
    merged_children = list(prefix)
    for parent in parents:
        merged_children.extend(_split_partition_run(plan, parent)[1])
    merged_children.extend(suffix)
    # Rebuild shard 0's spine chain bottom-up with fresh copies; shared
    # nodes are attached through direct children-list mutation so their
    # parent pointers (into the shard documents) are never retargeted.
    chain = [documents[0]]
    container = documents[0]
    for tag in plan.spine_tags:
        container = _sole_child(container, tag)
        chain.append(container)
    replacement = None
    for depth in range(len(chain) - 1, -1, -1):
        original = chain[depth]
        copy = Document() if depth == 0 else original.shallow_copy()
        if depth == len(chain) - 1:
            copy.children.extend(merged_children)
        else:
            spine_child = chain[depth + 1]
            for child in original.children:
                if child is spine_child:
                    copy.children.append(replacement)
                    replacement.parent = copy
                else:
                    copy.children.append(child)
        replacement = copy
    return replacement

"""Replica bookkeeping for the sharded fleet: lineage, health, placement.

Before this module, every replica of a shard shared the primary's
:class:`~repro.maintenance.tracker.WriteTracker` — so a replica's
``version_lag`` was 0 by construction and staleness accounting on
replica reads was silently wrong. Here each replica gets its **own
tracker lineage**: writes land on the primary's tracker, and a
:class:`ReplicaApplier` replays them into the replica's tracker through
:meth:`WriteTracker.replay_events`, optionally holding each event back
for an injectable delay so replicas *genuinely* lag. The router then
routes reads by the replica's real lag (primary clock minus replica
clock) against the staleness policy's version budget.

:class:`ReplicaHealth` is the per-member state machine the router feeds
with request outcomes:

.. code-block:: text

            failures >= suspect_after        failures >= dead_after
   healthy ─────────────────────────> suspect ───────────────────> dead
      ^                                  │ success                   │
      │ success (probe)                  v                           │
      └───────────────────────────── healthy <── cooldown + half-open probe

It reuses the E16 breaker shape (closed/open/half-open ≈
healthy/dead/probing): a dead member refuses traffic until its cooldown
elapses, then admits at most ``probe_max`` trial requests; one success
readmits it, one failure re-deads it and restarts the cooldown. The
error taxonomy (:func:`repro.errors.classify_error`) keeps intentional
outcomes — cancelled hedge losers, admission sheds — from counting as
health signals. "lagging" is an *overlay* state, not a transition:
a healthy member whose version lag exceeds the policy budget reports
``effective_state() == "lagging"`` and is skipped for reads, but its
failure counters are untouched (lag is the applier's problem, not the
member's).

:class:`PlacementGroup` carries hedge anti-affinity: both attempts of a
hedged request share one group, each attempt's chosen member is
claimed, and the router prefers unclaimed members for later attempts —
so the hedge lands on a *different* replica than the first attempt
whenever the shard has one to offer.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Optional

from repro.errors import classify_error
from repro.maintenance.tracker import WriteTracker

#: States a replica can report. ``lagging`` is an overlay on
#: ``healthy`` (computed against the staleness budget at read time);
#: the failure-driven machine itself moves healthy → suspect → dead.
REPLICA_STATES = ("healthy", "lagging", "suspect", "dead")


class ReplicaHealth:
    """Failure-and-lag-driven health machine for one fleet member.

    Thread-safe; all decisions run under one lock with an injectable
    ``clock`` (monotonic seconds) so tests drive the cooldown without
    sleeping. Mirrors the :class:`~repro.resilience.breaker.CircuitBreaker`
    half-open shape for readmission.
    """

    def __init__(
        self,
        suspect_after: int = 2,
        dead_after: int = 4,
        cooldown_ms: float = 500.0,
        probe_max: int = 1,
        latency_window: int = 32,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not 1 <= suspect_after <= dead_after:
            raise ValueError(
                "need 1 <= suspect_after <= dead_after, got "
                f"{suspect_after}/{dead_after}"
            )
        if probe_max < 1:
            raise ValueError(f"probe_max must be >= 1, got {probe_max}")
        self.suspect_after = suspect_after
        self.dead_after = dead_after
        self.cooldown_ms = cooldown_ms
        self.probe_max = probe_max
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "healthy"
        self._consecutive_failures = 0
        self._died_at = 0.0
        self._probes_inflight = 0
        self._latencies: deque = deque(maxlen=latency_window)
        self.current_lag = 0
        self.max_lag = 0
        self.successes = 0
        self.failures = 0
        self.ignored_failures = 0
        self.deaths = 0
        self.readmissions = 0
        self.probes_fired = 0
        self.probe_denials = 0

    # -- admission -----------------------------------------------------------

    def probe_ready(self) -> bool:
        """Read-only: could :meth:`admit` grant a request right now?

        The enumeration-time check. Candidate selection must not consume
        a probe slot for a member it may never attempt — a granted slot
        is only released by the attempt's outcome, so an unattempted
        grant would leak the slot and lock the member out of readmission
        forever. Enumeration asks this instead; the slot itself is taken
        by :meth:`admit` at dispatch time, when an attempt is certain.
        """
        with self._lock:
            if self._state != "dead":
                return True
            if (self._clock() - self._died_at) * 1000.0 < self.cooldown_ms:
                return False
            return self._probes_inflight < self.probe_max

    def admit(self) -> bool:
        """May this member receive a request right now?

        Healthy and suspect members always admit (suspect only costs
        routing *priority*, not traffic). A dead member refuses until
        ``cooldown_ms`` has elapsed since it died, then grants at most
        ``probe_max`` concurrent half-open trials — the trial's
        :meth:`record_success` / :meth:`record_failure` settles whether
        it comes back. Call only when the request will actually be
        dispatched to this member (see :meth:`probe_ready`).
        """
        with self._lock:
            if self._state != "dead":
                return True
            elapsed_ms = (self._clock() - self._died_at) * 1000.0
            if elapsed_ms < self.cooldown_ms:
                return False
            if self._probes_inflight >= self.probe_max:
                self.probe_denials += 1
                return False
            self._probes_inflight += 1
            self.probes_fired += 1
            return True

    # -- outcome feedback ----------------------------------------------------

    def record_success(self, latency_ms: Optional[float] = None) -> None:
        """A request served by this member succeeded."""
        with self._lock:
            self.successes += 1
            if latency_ms is not None:
                self._latencies.append(latency_ms)
            if self._probes_inflight > 0:
                self._probes_inflight -= 1
            if self._state == "dead":
                self.readmissions += 1
            self._state = "healthy"
            self._consecutive_failures = 0

    def record_failure(self, error: Optional[BaseException] = None) -> None:
        """A request served by this member failed.

        ``error`` (when available) is classified: ``cancelled`` and
        ``rejected`` outcomes are intentional — a hedge loser or an
        admission shed says nothing about the member's health — and are
        ignored. Everything else (transient, deadline, permanent)
        counts toward the suspect/dead thresholds.
        """
        category = "transient" if error is None else classify_error(error)
        with self._lock:
            if category in ("cancelled", "rejected"):
                self.ignored_failures += 1
                return
            self.failures += 1
            if self._probes_inflight > 0:
                self._probes_inflight -= 1
            if self._state == "dead":
                # Failed half-open probe: stay dead, restart cooldown.
                self._died_at = self._clock()
                return
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.dead_after:
                self._state = "dead"
                self._died_at = self._clock()
                self._probes_inflight = 0
                self.deaths += 1
            elif self._consecutive_failures >= self.suspect_after:
                self._state = "suspect"

    def observe_lag(self, lag: int) -> None:
        """Record the member's current version lag (watermarked)."""
        with self._lock:
            self.current_lag = lag
            if lag > self.max_lag:
                self.max_lag = lag

    # -- introspection -------------------------------------------------------

    def state(self) -> str:
        """The failure-driven base state (no lag overlay)."""
        with self._lock:
            return self._state

    def effective_state(self, lag_budget: Optional[int] = None) -> str:
        """Base state with the staleness overlay applied.

        A healthy member whose last observed lag exceeds ``lag_budget``
        reports ``"lagging"``; ``None`` budget means lag never matters
        (the manual staleness policy).
        """
        with self._lock:
            if self._state != "healthy":
                return self._state
            if lag_budget is not None and self.current_lag > lag_budget:
                return "lagging"
            return "healthy"

    def probe_latency_ms(self) -> Optional[float]:
        """Median of the recent success latencies (None before any)."""
        with self._lock:
            if not self._latencies:
                return None
            ordered = sorted(self._latencies)
            return ordered[len(ordered) // 2]

    def stats(self) -> dict:
        """Counters, state, and lag watermarks (one locked snapshot)."""
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "successes": self.successes,
                "failures": self.failures,
                "ignored_failures": self.ignored_failures,
                "deaths": self.deaths,
                "readmissions": self.readmissions,
                "probes_fired": self.probes_fired,
                "probe_denials": self.probe_denials,
                "current_lag": self.current_lag,
                "max_lag": self.max_lag,
            }


class ReplicaApplier:
    """Replays primary write events into a replica's tracker, lagged.

    Writes land on the primary tracker; this applier replays them —
    event for event, preserving version parity — into the replica's own
    tracker once each event is at least ``delay_ms`` old. With the
    default ``delay_ms=0`` propagation is *synchronous*: the apply runs
    inline in the primary tracker's subscriber callback, so a write is
    visible on every replica's clock before ``record_write`` returns
    (the pre-split shared-tracker behaviour, now with split lineage).
    With a positive delay the background thread (named with the
    ``shardrouter`` prefix so fleet leak checks cover it) holds events
    back, and the replica genuinely lags.

    An armed fleet fault plan can stall the loop: while
    ``apply-stall`` is active at this member's site, no events apply
    and the replica's lag grows unboundedly until the window passes.
    """

    def __init__(
        self,
        primary: WriteTracker,
        replica: WriteTracker,
        delay_ms: float = 0.0,
        faults=None,
        shard: int = 0,
        member: str = "replica",
        poll_ms: float = 5.0,
        name: Optional[str] = None,
    ):
        if delay_ms < 0:
            raise ValueError(f"delay_ms must be >= 0, got {delay_ms}")
        self.primary = primary
        self.replica = replica
        self.delay_ms = delay_ms
        self.faults = faults
        self.shard = shard
        self.member = member
        self.applied = 0
        self.stalled_checks = 0
        self._poll_s = max(poll_ms, 1.0) / 1000.0
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._stop = threading.Event()
        primary.subscribe(self._on_write)
        self._thread = threading.Thread(
            target=self._run,
            daemon=True,
            name=name or f"shardrouter-apply-s{shard}-{member}",
        )
        self._thread.start()

    def _on_write(self, table: str, version: int) -> None:
        if self._stop.is_set():
            return
        if self.delay_ms == 0:
            # Synchronous propagation: catch up inline so zero-delay
            # fleets never observe spurious lag between a write and the
            # next read. The thread still sweeps stall leftovers.
            self.apply_pending()
        self._wake.set()

    def _run(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(timeout=self._poll_s)
            self._wake.clear()
            if self._stop.is_set():
                break
            self.apply_pending()

    def apply_pending(self) -> int:
        """Apply every due event; returns how many were applied.

        Serialized under a lock (the inline zero-delay path and the
        background thread may race). Events are replayed oldest-first;
        a not-yet-due event blocks its table's later events so per-table
        version order is never violated.
        """
        if self.faults is not None and self.faults.active(
            "apply-stall", self.shard, self.member
        ):
            with self._lock:
                self.stalled_checks += 1
            return 0
        applied = 0
        with self._lock:
            pending = self.primary.replay_events(self.replica.snapshot())
            now = time.monotonic()
            blocked: set[str] = set()
            for table, _version, keys, columns, ts in pending:
                if table in blocked:
                    continue
                if self.delay_ms and (now - ts) * 1000.0 < self.delay_ms:
                    blocked.add(table)
                    continue
                self.replica.record_write(
                    table, rows=0, keys=keys, columns=columns
                )
                applied += 1
            self.applied += applied
        return applied

    def lag(self) -> int:
        """Write events recorded on the primary but not yet replayed."""
        return max(0, self.primary.clock() - self.replica.clock())

    def close(self, timeout: float = 5.0) -> None:
        """Stop the apply thread (pending events stay unapplied)."""
        self._stop.set()
        self._wake.set()
        self._thread.join(timeout=timeout)


class PlacementGroup:
    """Anti-affinity scope shared by the attempts of one hedged request.

    The router claims the member each attempt is routed to; later
    attempts in the same group prefer unclaimed members. Per-shard
    claim sets, thread-safe (the primary attempt and the hedge race).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._claims: dict[int, list[str]] = {}

    def claim(self, shard: int, member: str) -> None:
        """Record that an attempt was routed to ``member`` of ``shard``."""
        with self._lock:
            self._claims.setdefault(shard, []).append(member)

    def claimed(self, shard: int) -> frozenset:
        """Members of ``shard`` already used by attempts in this group."""
        with self._lock:
            return frozenset(self._claims.get(shard, ()))

    def attempts(self, shard: int) -> int:
        """How many attempts have claimed a member of ``shard``."""
        with self._lock:
            return len(self._claims.get(shard, ()))

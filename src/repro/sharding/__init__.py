"""Sharded, replicated serving fleet (scatter / spine-merge / gather).

The paper's composed plans evaluate one decorrelated query per schema
node, all scoped by the top-level binding variable — so the workload
partitions cleanly by the top-level key column. This package deals the
database into key-range shards (:mod:`repro.sharding.partition`), runs
a :class:`~repro.serving.server.ViewServer` per shard plus N snapshot
replicas, fans each request out across the fleet, and merges the
per-shard documents under the schema-tree spine
(:mod:`repro.sharding.merge`) into a response byte-identical to a
single-box run (:mod:`repro.sharding.router`). Experiment E18 and
``serve-bench --shards N --replicas M`` drive it.
"""

from repro.sharding.merge import (
    MergePlan,
    ShardMergeUnsupported,
    merge_documents,
    plan_merge,
)
from repro.sharding.partition import (
    KeyRange,
    KeyRangePartitioner,
    PartitionScheme,
    ShardingError,
    derive_partition_column,
    derive_partition_node,
    partition_database,
    partition_keys,
)
from repro.sharding.replica import (
    REPLICA_STATES,
    PlacementGroup,
    ReplicaApplier,
    ReplicaHealth,
)
from repro.sharding.router import RouterTrace, ShardRouter

__all__ = [
    "KeyRange",
    "KeyRangePartitioner",
    "MergePlan",
    "PartitionScheme",
    "PlacementGroup",
    "REPLICA_STATES",
    "ReplicaApplier",
    "ReplicaHealth",
    "RouterTrace",
    "ShardMergeUnsupported",
    "ShardRouter",
    "ShardingError",
    "derive_partition_column",
    "derive_partition_node",
    "merge_documents",
    "partition_database",
    "partition_keys",
    "plan_merge",
]

"""Schema-tree query model (Definition 1 of the paper).

A :class:`SchemaNode` is the 6-tuple *(id, tag, bv, parameters, Q_bv,
children)*: ``parameters`` is derivable from the tag query (the binding
variables it references), so it is exposed as a property rather than
stored.

Every :class:`SchemaTreeQuery` has a synthetic **root node** with id 0 and
no tag query; it corresponds to the implied unique document root the paper
mentions ("a unique document root is implied") and is what the stylesheet
pattern ``/`` matches abstractly.

Composed stylesheet views additionally use two node features that plain
publishing views leave at their defaults:

* ``attr_columns`` — which result columns surface as XML attributes
  (``None`` means *all* for query-bearing nodes, the publishing default;
  composed views restrict this so literal template elements carry no
  data),
* ``attr_source_bv`` — for nodes without a query of their own (literal
  template elements), the binding variable whose current tuple supplies
  the ``attr_columns`` values (the composed form of
  ``<xsl:value-of select="@attr"/>``),
* nodes with ``tag_query=None`` emit exactly one element per parent
  context instead of one per result tuple (literal output elements).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import ViewDefinitionError
from repro.sql.ast import Select
from repro.sql.params import referenced_vars

#: id reserved for the synthetic root node.
ROOT_ID = 0


@dataclass
class SchemaNode:
    """One node of a schema-tree query."""

    id: int
    tag: str
    bv: Optional[str] = None
    tag_query: Optional[Select] = None
    children: list["SchemaNode"] = field(default_factory=list)
    parent: Optional["SchemaNode"] = None
    attr_columns: Optional[list[str]] = None
    attr_source_bv: Optional[str] = None
    literal_attributes: dict[str, str] = field(default_factory=dict)
    #: Renamed data attributes: XML attribute name -> source-row column.
    #: Composed from attribute value templates (``attr="{@col}"``) and
    #: ``value-of "@col"`` (identity rename).
    data_attributes: dict[str, str] = field(default_factory=dict)

    @property
    def is_root(self) -> bool:
        return self.id == ROOT_ID

    @property
    def parameters(self) -> list[str]:
        """Binding variables referenced by this node's tag query."""
        if self.tag_query is None:
            return []
        return referenced_vars(self.tag_query)

    @property
    def has_query(self) -> bool:
        return self.tag_query is not None

    def add_child(self, child: "SchemaNode") -> "SchemaNode":
        """Attach ``child`` and return it."""
        child.parent = self
        self.children.append(child)
        return child

    def child_by_tag(self, tag: str) -> list["SchemaNode"]:
        """All children with the given tag (ids make them distinct)."""
        return [c for c in self.children if c.tag == tag]

    def path_from_root(self) -> list["SchemaNode"]:
        """Nodes from the synthetic root down to (and including) this node."""
        path: list[SchemaNode] = []
        node: Optional[SchemaNode] = self
        while node is not None:
            path.append(node)
            node = node.parent
        path.reverse()
        return path

    def ancestors(self) -> Iterator["SchemaNode"]:
        """Yield ancestors from the parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def walk(self) -> Iterator["SchemaNode"]:
        """Pre-order traversal of the subtree rooted here."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return f"SchemaNode({self.id}, <{self.tag}>)"


class SchemaTreeQuery:
    """A schema-tree view query: a synthetic root plus element nodes."""

    def __init__(self, root: Optional[SchemaNode] = None):
        self.root = root or SchemaNode(ROOT_ID, "")
        if not self.root.is_root:
            raise ViewDefinitionError("root node must have id 0")

    # -- structure ------------------------------------------------------------

    def nodes(self, include_root: bool = True) -> list[SchemaNode]:
        """All nodes in pre-order; optionally excluding the synthetic root."""
        all_nodes = list(self.root.walk())
        if include_root:
            return all_nodes
        return [n for n in all_nodes if not n.is_root]

    def node_by_id(self, node_id: int) -> SchemaNode:
        """Look up a node by id; raises if absent."""
        for node in self.root.walk():
            if node.id == node_id:
                return node
        raise ViewDefinitionError(f"no node with id {node_id}")

    def size(self) -> int:
        """Number of nodes excluding the synthetic root (|v| in Section 4.5)."""
        return len(self.nodes(include_root=False))

    @staticmethod
    def lowest_common_ancestor(a: SchemaNode, b: SchemaNode) -> SchemaNode:
        """The deepest node on both root-paths. Nodes must share a tree."""
        path_a = a.path_from_root()
        path_b = b.path_from_root()
        lca: Optional[SchemaNode] = None
        for node_a, node_b in zip(path_a, path_b):
            if node_a is node_b:
                lca = node_a
            else:
                break
        if lca is None:
            raise ViewDefinitionError("nodes do not share a tree")
        return lca

    @staticmethod
    def path_between(ancestor: SchemaNode, descendant: SchemaNode) -> list[SchemaNode]:
        """Nodes from ``ancestor`` down to ``descendant``, inclusive.

        Raises:
            ViewDefinitionError: if ``ancestor`` is not an ancestor-or-self
                of ``descendant``.
        """
        path: list[SchemaNode] = []
        node: Optional[SchemaNode] = descendant
        while node is not None:
            path.append(node)
            if node is ancestor:
                path.reverse()
                return path
            node = node.parent
        raise ViewDefinitionError(
            f"{ancestor!r} is not an ancestor of {descendant!r}"
        )

    # -- presentation ---------------------------------------------------------

    def describe(self) -> str:
        """A one-node-per-line outline (tests and docs print this)."""
        from repro.sql.printer import print_select

        lines: list[str] = []

        def visit(node: SchemaNode, depth: int) -> None:
            indent = "  " * depth
            if node.is_root:
                lines.append("/")
            else:
                bv = f" ${node.bv}" if node.bv else ""
                query = ""
                if node.tag_query is not None:
                    query = f" := {print_select(node.tag_query)}"
                lines.append(f"{indent}({node.id}) <{node.tag}>{bv}{query}")
            for child in node.children:
                visit(child, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"SchemaTreeQuery({self.size()} nodes)"

"""XML-publishing views: schema-tree queries (Definition 1, ROLEX-style).

A schema-tree query is a tree of nodes, each carrying an XML tag and a
parameterized SQL *tag query*; materializing the view runs tag queries
top-down, each tuple generating one element whose attributes are the
tuple's columns, with the tuple bound to the node's *binding variable*
for use by descendant tag queries.

This package provides the model (:mod:`~repro.schema_tree.model`), a
fluent builder (:mod:`~repro.schema_tree.builder`), static validation
(:mod:`~repro.schema_tree.validate`), and the evaluator that materializes
``v(I)`` as an XML document (:mod:`~repro.schema_tree.evaluator`).
"""

from repro.schema_tree.model import SchemaNode, SchemaTreeQuery
from repro.schema_tree.builder import ViewBuilder
from repro.schema_tree.bulk_evaluator import BulkViewEvaluator
from repro.schema_tree.evaluator import (
    STRATEGIES,
    MaterializeStats,
    ViewEvaluator,
    materialize,
)
from repro.schema_tree.validate import validate_view

__all__ = [
    "SchemaNode",
    "SchemaTreeQuery",
    "ViewBuilder",
    "BulkViewEvaluator",
    "MaterializeStats",
    "STRATEGIES",
    "ViewEvaluator",
    "materialize",
    "validate_view",
]

"""Serialization of catalogs and schema-tree views to/from XML files.

A view definition file makes publishing views first-class artifacts: they
can be versioned, shipped, composed offline (see ``python -m repro``),
and round-tripped — including composed stylesheet views with their
projection metadata.

Formats:

.. code-block:: xml

    <catalog>
      <table name="metroarea" primary-key="metroid">
        <column name="metroid" type="INTEGER"/>
        <column name="metroname" type="TEXT"/>
      </table>
    </catalog>

    <view>
      <node tag="metro" bv="m"
            query="SELECT metroid, metroname FROM metroarea">
        <node tag="hotel" bv="h" query="SELECT * FROM hotel
              WHERE metro_id = $m.metroid"/>
      </node>
    </view>

Node attributes beyond ``tag``/``bv``/``query``: ``attr-columns`` (space
separated; ``*`` for the surface-everything default, ``-`` for none),
``attr-source-bv``, and nested ``<attr name=... value=...>`` children for
literal XML attributes.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ViewDefinitionError
from repro.relational.schema import Catalog, Column, Table
from repro.schema_tree.model import ROOT_ID, SchemaNode, SchemaTreeQuery
from repro.schema_tree.validate import validate_view
from repro.sql.parser import parse_select
from repro.sql.printer import print_select
from repro.xmlcore.nodes import Document, Element
from repro.xmlcore.parser import parse_document
from repro.xmlcore.serializer import serialize_pretty


# ---------------------------------------------------------------------------
# Catalog
# ---------------------------------------------------------------------------


def catalog_to_xml(catalog: Catalog) -> str:
    """Serialize a catalog to XML text."""
    root = Element("catalog")
    for table in catalog:
        table_element = Element("table", {"name": table.name})
        if table.primary_key is not None:
            table_element.set("primary-key", table.primary_key)
        for column in table.columns:
            table_element.append(
                Element("column", {"name": column.name, "type": column.type})
            )
        for column in table.indexes:
            table_element.append(Element("index", {"column": column}))
        root.append(table_element)
    document = Document()
    document.append(root)
    return serialize_pretty(document)


def catalog_from_xml(text: str) -> Catalog:
    """Parse a catalog from XML text."""
    document = parse_document(text)
    root = document.root_element
    if root is None or root.tag != "catalog":
        raise ViewDefinitionError("expected a <catalog> document")
    catalog = Catalog()
    for table_element in root.find_children("table"):
        name = table_element.get("name")
        if not name:
            raise ViewDefinitionError("<table> requires a name attribute")
        columns = []
        for column_element in table_element.find_children("column"):
            column_name = column_element.get("name")
            if not column_name:
                raise ViewDefinitionError("<column> requires a name attribute")
            columns.append(Column(column_name, column_element.get("type", "TEXT")))
        indexes = []
        for index_element in table_element.find_children("index"):
            index_column = index_element.get("column")
            if not index_column:
                raise ViewDefinitionError("<index> requires a column attribute")
            indexes.append(index_column)
        catalog.add(
            Table(
                name,
                columns,
                primary_key=table_element.get("primary-key"),
                indexes=indexes,
            )
        )
    return catalog


# ---------------------------------------------------------------------------
# Views
# ---------------------------------------------------------------------------


def view_to_xml(view: SchemaTreeQuery) -> str:
    """Serialize a schema-tree view (plain or composed) to XML text."""
    root = Element("view")

    def convert(node: SchemaNode, parent: Element) -> None:
        element = Element("node", {"tag": node.tag})
        if node.bv is not None:
            element.set("bv", node.bv)
        if node.tag_query is not None:
            element.set("query", print_select(node.tag_query))
        if node.attr_columns is not None:
            element.set(
                "attr-columns",
                " ".join(node.attr_columns) if node.attr_columns else "-",
            )
        if node.attr_source_bv is not None:
            element.set("attr-source-bv", node.attr_source_bv)
        for name, value in node.literal_attributes.items():
            element.append(Element("attr", {"name": name, "value": value}))
        for name, column in node.data_attributes.items():
            element.append(Element("data-attr", {"name": name, "column": column}))
        parent.append(element)
        for child in node.children:
            convert(child, element)

    for top in view.root.children:
        convert(top, root)
    document = Document()
    document.append(root)
    return serialize_pretty(document)


def view_from_xml(
    text: str, catalog: Optional[Catalog] = None, validate: bool = True
) -> SchemaTreeQuery:
    """Parse a view definition from XML text.

    Args:
        text: the ``<view>`` document.
        catalog: when given (and ``validate``), the view is checked
            against it.
        validate: run :func:`~repro.schema_tree.validate.validate_view`.
    """
    document = parse_document(text)
    root = document.root_element
    if root is None or root.tag != "view":
        raise ViewDefinitionError("expected a <view> document")
    view = SchemaTreeQuery()
    counter = [ROOT_ID]

    def convert(element: Element, parent: SchemaNode) -> None:
        if element.tag != "node":
            raise ViewDefinitionError(
                f"unexpected <{element.tag}> in view definition"
            )
        tag = element.get("tag")
        if not tag:
            raise ViewDefinitionError("<node> requires a tag attribute")
        counter[0] += 1
        query_text = element.get("query")
        attr_columns: Optional[list[str]] = None
        attr_spec = element.get("attr-columns")
        if attr_spec is not None:
            attr_columns = [] if attr_spec == "-" else attr_spec.split()
        node = SchemaNode(
            id=counter[0],
            tag=tag,
            bv=element.get("bv"),
            tag_query=parse_select(query_text) if query_text else None,
            attr_columns=attr_columns,
            attr_source_bv=element.get("attr-source-bv"),
        )
        for child in element.child_elements():
            if child.tag == "attr":
                name = child.get("name")
                value = child.get("value", "")
                if not name:
                    raise ViewDefinitionError("<attr> requires a name attribute")
                node.literal_attributes[name] = value
                continue
            if child.tag == "data-attr":
                name = child.get("name")
                column = child.get("column")
                if not name or not column:
                    raise ViewDefinitionError(
                        "<data-attr> requires name and column attributes"
                    )
                node.data_attributes[name] = column
                continue
            # Defer child <node> conversion until the node is attached so
            # ids stay in document order.
        parent.add_child(node)
        for child in element.child_elements():
            if child.tag == "node":
                convert(child, node)
            elif child.tag not in ("attr", "data-attr"):
                raise ViewDefinitionError(
                    f"unexpected <{child.tag}> under <node>"
                )

    for top in root.child_elements():
        convert(top, view.root)
    if validate:
        validate_view(view, catalog)
    return view


# ---------------------------------------------------------------------------
# File helpers
# ---------------------------------------------------------------------------


def save_view(view: SchemaTreeQuery, path: str) -> None:
    """Write a view definition to ``path`` as XML."""
    with open(path, "w") as handle:
        handle.write(view_to_xml(view))


def load_view(
    path: str, catalog: Optional[Catalog] = None, validate: bool = True
) -> SchemaTreeQuery:
    """Read a view definition from ``path``."""
    with open(path) as handle:
        return view_from_xml(handle.read(), catalog, validate)


def save_catalog(catalog: Catalog, path: str) -> None:
    """Write a catalog to ``path`` as XML."""
    with open(path, "w") as handle:
        handle.write(catalog_to_xml(catalog))


def load_catalog(path: str) -> Catalog:
    """Read a catalog from ``path``."""
    with open(path) as handle:
        return catalog_from_xml(handle.read())

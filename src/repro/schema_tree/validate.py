"""Static validation of schema-tree view queries.

Checks performed (each violation raises
:class:`~repro.errors.ViewDefinitionError`):

* node ids are unique and the root has id 0,
* binding variables are unique across the tree,
* every tag query's parameters reference binding variables of strict
  ancestors (the scoping rule of Definition 1),
* with a catalog: referenced tables exist, and declared ``attr_columns``
  are a subset of the query's output columns.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SchemaError, ViewDefinitionError
from repro.relational.schema import Catalog
from repro.schema_tree.model import SchemaNode, SchemaTreeQuery
from repro.sql.analysis import output_columns, referenced_tables


def validate_view(view: SchemaTreeQuery, catalog: Optional[Catalog] = None) -> None:
    """Validate ``view``; optionally resolve against ``catalog``."""
    seen_ids: set[int] = set()
    seen_bvs: set[str] = set()
    for node in view.nodes():
        if node.id in seen_ids:
            raise ViewDefinitionError(f"duplicate node id {node.id}")
        seen_ids.add(node.id)
        if node.bv is not None:
            if node.bv in seen_bvs:
                raise ViewDefinitionError(f"duplicate binding variable ${node.bv}")
            seen_bvs.add(node.bv)
    for node in view.nodes(include_root=False):
        _validate_node(node, catalog)


def _validate_node(node: SchemaNode, catalog: Optional[Catalog]) -> None:
    if not node.tag:
        raise ViewDefinitionError(f"node {node.id} has an empty tag")
    if node.tag_query is None:
        return
    ancestor_bvs = {a.bv for a in node.ancestors() if a.bv is not None}
    for var in node.parameters:
        if var == node.bv:
            raise ViewDefinitionError(
                f"node {node.id} <{node.tag}>: tag query references its own "
                f"binding variable ${var}"
            )
        if var not in ancestor_bvs:
            raise ViewDefinitionError(
                f"node {node.id} <{node.tag}>: tag query references ${var}, "
                "which is not bound by an ancestor"
            )
    if catalog is None:
        return
    for table in referenced_tables(node.tag_query):
        if table not in catalog:
            raise ViewDefinitionError(
                f"node {node.id} <{node.tag}>: unknown table {table!r}"
            )
    try:
        columns = output_columns(node.tag_query, catalog)
    except SchemaError as exc:
        raise ViewDefinitionError(
            f"node {node.id} <{node.tag}>: {exc}"
        ) from exc
    if node.attr_columns is not None:
        missing = [c for c in node.attr_columns if c not in columns]
        if missing:
            raise ViewDefinitionError(
                f"node {node.id} <{node.tag}>: attr_columns {missing} are not "
                f"output columns of the tag query (outputs: {columns})"
            )
    if node.data_attributes and node.attr_source_bv is None:
        missing = [
            c for c in node.data_attributes.values() if c not in columns
        ]
        if missing:
            raise ViewDefinitionError(
                f"node {node.id} <{node.tag}>: data attributes reference "
                f"columns {missing} the tag query does not output"
            )

"""Materialization of schema-tree views: compute ``v(I)`` as XML.

The evaluator follows the nested-loop semantics of Section 2.1: each
node's tag query runs once per binding of its ancestors' variables; every
result tuple generates one element (its columns become attributes), and
the tuple extends the binding environment for the node's children.

Nodes without a tag query (literal output elements of composed views)
emit exactly one element per parent context.

Work accounting: :class:`MaterializeStats` counts elements and attributes
created here; query counts live on the engine's
:class:`~repro.relational.engine.QueryStats`. The central claim of the
paper — composed views materialize fewer nodes — is measured with exactly
these counters (experiment E2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import ViewEvaluationError
from repro.relational.engine import Database, Row
from repro.schema_tree.model import ROOT_ID, SchemaNode, SchemaTreeQuery
from repro.sql.params import collect_params
from repro.xmlcore.nodes import Document, Element


@dataclass
class MaterializeStats:
    """Counters for one materialization run."""

    elements_created: int = 0
    attributes_created: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.elements_created = 0
        self.attributes_created = 0
        self.cache_hits = 0
        self.cache_misses = 0


def format_value(value: Any) -> Optional[str]:
    """Convert a SQL value to XML attribute text.

    ``None`` (SQL NULL) returns ``None`` — the attribute is omitted.
    Integral floats print without the trailing ``.0`` so sqlite's numeric
    affinity does not leak into the XML.
    """
    if value is None:
        return None
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return str(value)


class ViewEvaluator:
    """Materializes schema-tree queries against a database.

    With ``memoize=True`` the evaluator caches tag-query results keyed by
    the node and the concrete values its parameters take: sibling
    subtrees whose ancestors carry identical parameter values share one
    query execution. This is the simplest of the execution optimizations
    the paper defers to future work; the E10 ablation benchmark measures
    it. Memoization assumes the database does not change during
    materialization.

    ``db`` and ``stats`` are the evaluator's injected connection/stats
    pair: the serving layer passes a pooled per-worker database and a
    per-request :class:`MaterializeStats`, so concurrent requests never
    share counters.

    ``capture_instances`` (a caller-owned dict) opts into recording the
    evaluation's per-node instance state for incremental maintenance:
    for every schema node id, the list of ``(element, env)`` pairs in
    document order, where ``env`` is the binding environment visible to
    that element's children (row dicts are shared, not copied). The
    synthetic root records ``(document, {})`` under
    :data:`~repro.schema_tree.model.ROOT_ID`. See
    :mod:`repro.maintenance.incremental`.
    """

    def __init__(
        self,
        db: Database,
        memoize: bool = False,
        stats: Optional[MaterializeStats] = None,
        capture_instances: Optional[dict[int, list]] = None,
    ):
        self.db = db
        self.memoize = memoize
        self.stats = stats if stats is not None else MaterializeStats()
        self._result_cache: dict[tuple, list[Row]] = {}
        self._param_cache: dict[int, list] = {}
        self._capture = capture_instances

    def _run_tag_query(self, node: SchemaNode, env: dict[str, Row]) -> list[Row]:
        assert node.tag_query is not None
        if not self.memoize:
            return self.db.run_query(node.tag_query, env)
        params = self._param_cache.get(node.id)
        if params is None:
            params = collect_params(node.tag_query)
            self._param_cache[node.id] = params
        key = (node.id,) + tuple(env[p.var][p.column] for p in params)
        cached = self._result_cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        rows = self.db.run_query(node.tag_query, env)
        self._result_cache[key] = rows
        self.stats.cache_misses += 1
        return rows

    def materialize(self, view: SchemaTreeQuery) -> Document:
        """Evaluate ``view`` against the database; returns the document.

        The synthetic schema root becomes the XML document node; if the
        view has several top-level elements per tuple they appear as
        siblings under the document (the paper's "unique document root is
        implied" convention — callers that need strict XML can check
        ``document.root_element``).
        """
        document = Document()
        env: dict[str, Row] = {}
        if self._capture is not None:
            self._capture[ROOT_ID] = [(document, env)]
        for child in view.root.children:
            self._evaluate_node(child, document, env)
        return document

    def _record(self, node: SchemaNode, element, env: dict[str, Row]) -> None:
        assert self._capture is not None
        self._capture.setdefault(node.id, []).append((element, env))

    def _evaluate_node(self, node: SchemaNode, parent, env: dict[str, Row]) -> None:
        if node.tag_query is None:
            element = self._make_element(node, env, row=None)
            parent.append(element)
            if self._capture is not None:
                self._record(node, element, env)
            for child in node.children:
                self._evaluate_node(child, element, env)
            return
        rows = self._run_tag_query(node, env)
        if not node.children and self._capture is None:
            # Leaf fast path: no child reads the extended environment.
            for row in rows:
                parent.append(self._make_element(node, env, row=row))
            return
        for row in rows:
            element = self._make_element(node, env, row=row)
            parent.append(element)
            if node.bv is not None:
                child_env = dict(env)
                child_env[node.bv] = row
            else:
                child_env = env
            if self._capture is not None:
                self._record(node, element, child_env)
            for child in node.children:
                self._evaluate_node(child, element, child_env)

    def _make_element(
        self, node: SchemaNode, env: dict[str, Row], row: Optional[Row]
    ) -> Element:
        return build_element(node, env, row, self.stats)


def build_element(
    node: SchemaNode,
    env: dict[str, Row],
    row: Optional[Row],
    stats: MaterializeStats,
    surface_columns: Optional[list[str]] = None,
) -> Element:
    """Create one output element for a node from its tuple and environment.

    Shared between the nested-loop :class:`ViewEvaluator` and the bulk
    evaluator so both strategies produce byte-identical elements and feed
    the same :class:`MaterializeStats` counters.

    ``surface_columns`` overrides the surface-everything default for nodes
    without an explicit ``attr_columns`` list: the bulk evaluator passes
    the node's own output columns so it can hand over its wider rows
    (which carry ancestor key columns) without rebuilding a dict per row.
    """
    element = Element(node.tag)
    for name, value in node.literal_attributes.items():
        element.set(name, value)
        stats.attributes_created += 1
    source: Optional[Row] = row
    if source is None and node.attr_source_bv is not None:
        if node.attr_source_bv not in env:
            raise ViewEvaluationError(
                f"node {node.id} <{node.tag}>: attribute source "
                f"${node.attr_source_bv} is not bound"
            )
        source = env[node.attr_source_bv]
    if source is not None:
        if node.attr_columns is not None:
            columns = node.attr_columns
        elif surface_columns is not None and source is row:
            columns = surface_columns
        else:
            columns = list(source)
        for column in columns:
            if column not in source:
                raise ViewEvaluationError(
                    f"node {node.id} <{node.tag}>: attribute column "
                    f"{column!r} missing from tuple (has {sorted(source)})"
                )
            text = format_value(source[column])
            if text is not None:
                element.set(column, text)
                stats.attributes_created += 1
        for name, column in node.data_attributes.items():
            if column not in source:
                raise ViewEvaluationError(
                    f"node {node.id} <{node.tag}>: data attribute "
                    f"{name!r} needs column {column!r} "
                    f"(tuple has {sorted(source)})"
                )
            text = format_value(source[column])
            if text is not None:
                element.set(name, text)
                stats.attributes_created += 1
    stats.elements_created += 1
    return element


#: Execution strategies accepted by :func:`materialize` and the CLI.
STRATEGIES = ("nested-loop", "memoized", "bulk")


def materialize(
    view: SchemaTreeQuery, db: Database, strategy: str = "nested-loop"
) -> Document:
    """Convenience one-shot materialization.

    ``strategy`` selects the execution plan:

    * ``"nested-loop"`` — the paper's Section 2.1 semantics, one query per
      ancestor binding (the default),
    * ``"memoized"`` — nested loop with tag-query result caching,
    * ``"bulk"`` — one decorrelated query per schema node
      (:class:`~repro.schema_tree.bulk_evaluator.BulkViewEvaluator`).
    """
    if strategy == "nested-loop":
        return ViewEvaluator(db).materialize(view)
    if strategy == "memoized":
        return ViewEvaluator(db, memoize=True).materialize(view)
    if strategy == "bulk":
        from repro.schema_tree.bulk_evaluator import BulkViewEvaluator

        return BulkViewEvaluator(db).materialize(view)
    raise ViewEvaluationError(
        f"unknown strategy {strategy!r} (expected one of {', '.join(STRATEGIES)})"
    )

"""Fluent construction of schema-tree view queries.

Example (the first two levels of the paper's Figure 1):

.. code-block:: python

    builder = ViewBuilder(catalog)
    metro = builder.node("metro", "SELECT metroid, metroname FROM metroarea", bv="m")
    metro.child(
        "hotel",
        "SELECT * FROM hotel WHERE metro_id=$m.metroid AND starrating > 4",
        bv="h",
    )
    view = builder.build()

Tag queries are parsed and normalized on entry: unaliased aggregates get
canonical ``FUNC_column`` aliases so the XML attribute names they produce
are deterministic (see DESIGN.md, semantics decision 4).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import ViewDefinitionError
from repro.relational.schema import Catalog
from repro.schema_tree.model import ROOT_ID, SchemaNode, SchemaTreeQuery
from repro.schema_tree.validate import validate_view
from repro.sql.analysis import canonicalize_aggregate_aliases
from repro.sql.ast import Select
from repro.sql.parser import parse_select


class NodeBuilder:
    """Handle onto one node under construction; spawns children."""

    def __init__(self, builder: "ViewBuilder", node: SchemaNode):
        self._builder = builder
        self.node = node

    def child(
        self,
        tag: str,
        query: Union[str, Select, None] = None,
        bv: Optional[str] = None,
        attr_columns: Optional[list[str]] = None,
    ) -> "NodeBuilder":
        """Add a child node and return its builder handle."""
        return self._builder._add(self.node, tag, query, bv, attr_columns)


class ViewBuilder:
    """Builds a :class:`SchemaTreeQuery` with auto-assigned node ids."""

    def __init__(self, catalog: Optional[Catalog] = None):
        self.catalog = catalog
        self._view = SchemaTreeQuery()
        self._next_id = ROOT_ID + 1
        self._bvs: set[str] = set()

    def node(
        self,
        tag: str,
        query: Union[str, Select, None] = None,
        bv: Optional[str] = None,
        attr_columns: Optional[list[str]] = None,
    ) -> NodeBuilder:
        """Add a top-level node (child of the synthetic root)."""
        return self._add(self._view.root, tag, query, bv, attr_columns)

    def _add(
        self,
        parent: SchemaNode,
        tag: str,
        query: Union[str, Select, None],
        bv: Optional[str],
        attr_columns: Optional[list[str]],
    ) -> NodeBuilder:
        if not tag:
            raise ViewDefinitionError("node tag must be non-empty")
        parsed: Optional[Select]
        if isinstance(query, str):
            parsed = parse_select(query)
        else:
            parsed = query
        if parsed is not None:
            canonicalize_aggregate_aliases(parsed)
            if bv is None:
                bv = f"v{self._next_id}"
        if bv is not None:
            if bv in self._bvs:
                raise ViewDefinitionError(f"duplicate binding variable ${bv}")
            self._bvs.add(bv)
        node = SchemaNode(
            id=self._next_id,
            tag=tag,
            bv=bv,
            tag_query=parsed,
            attr_columns=list(attr_columns) if attr_columns is not None else None,
        )
        self._next_id += 1
        parent.add_child(node)
        return NodeBuilder(self, node)

    def build(self, validate: bool = True) -> SchemaTreeQuery:
        """Finish construction; validates against the catalog by default."""
        if validate:
            validate_view(self._view, self.catalog)
        return self._view

"""Bulk decorrelated view evaluation: one query per schema node.

The nested-loop evaluator of :mod:`repro.schema_tree.evaluator` re-runs
each node's tag query once per binding of its ancestors' variables, so a
view over N tuples costs O(N) SQL round-trips. This module evaluates the
same views with **one decorrelated query per schema node** — O(|v|)
round-trips — by reusing the composition machinery the paper builds for
UNBIND: each node's correlated tag query is rewritten into an unbound
join against the inlined chain of its query-bearing ancestors
(:func:`repro.sql.transform.attach_parent_query`, the Figures 10/12
derived-table inlining), with every ancestor's output columns carried to
the result. The flat row stream is then stitched back into the XML tree
by a grouped merge in Python: rows group on the carried ancestor-column
tuple, and each parent element attaches the group matching its own
binding values, preserving the parent-major order the propagated ORDER BY
keys produce.

Correctness notes (each is covered by the equivalence property tests):

* **Aggregates.** Ungrouped aggregate tag queries decorrelate through the
  scalar-subquery form (one row per parent binding even over empty
  groups); grouped aggregates extend their GROUP BY with the carried
  ancestor columns, which partitions the groups per binding.
* **Duplicate parent bindings.** When two ancestor bindings carry
  identical values, their element subtrees are identical, but the joined
  chain duplicates the child rows. The merge detects this (multiple
  parent elements sharing one group key) and deals each parent its share:
  plain queries divide the group's row multiplicities by the duplicate
  count; DISTINCT queries attach the (already collapsed) group as-is;
  grouped aggregates cannot be split after the fact, so the node falls
  back to correlated execution.
* **Fallback.** Any node whose query the decorrelator cannot handle
  (non-derivable output column names, shapes the key columns cannot be
  carried through, SQL the transform rejects) is executed with the
  original correlated query, one run per parent binding, and recorded in
  :attr:`BulkViewEvaluator.fallback_nodes` and the module logger — never
  silently.

Work accounting matches the other strategies: elements/attributes land in
the shared :class:`~repro.schema_tree.evaluator.MaterializeStats`, query
and row counts on the engine's ``QueryStats``, so E1/E2/E12 compare like
for like.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass, field
from operator import itemgetter
from typing import Any, Optional

from repro.errors import ReproError, ViewEvaluationError
from repro.relational.engine import Database, Row
from repro.schema_tree.evaluator import MaterializeStats, build_element
from repro.schema_tree.model import SchemaNode, SchemaTreeQuery
from repro.sql.analysis import has_top_level_aggregate, output_columns
from repro.sql.ast import ColumnRef, FuncCall, ParamRef, Select, Star
from repro.sql.params import collect_params, walk_exprs
from repro.sql.transform import attach_parent_query, expand_stars

logger = logging.getLogger(__name__)

#: Per-view plan cache: ``id(view) -> (view, catalog, plans, records)``.
#: Plans depend only on the view tree and the catalog (never on data), so
#: repeated materializations of the same view object skip the clone +
#: decorrelate + validate pass entirely. Identity-checked against both the
#: view and the catalog; bounded FIFO so held references stay small.
#: Guarded by ``_PLAN_CACHE_LOCK``: the serving layer materializes one
#: shared (cached) view object from several worker threads at once.
_PLAN_CACHE: dict[int, tuple] = {}
_PLAN_CACHE_LIMIT = 8
_PLAN_CACHE_LOCK = threading.Lock()


class _BulkUnsupported(Exception):
    """Internal: this node cannot (or can no longer) be bulk-evaluated."""


@dataclass
class FallbackRecord:
    """One node that ran correlated instead of bulk, and why."""

    node_id: int
    tag: str
    reason: str

    def __str__(self) -> str:  # pragma: no cover - formatting only
        return f"node {self.node_id} <{self.tag}>: {self.reason}"


@dataclass(slots=True)
class _Instance:
    """One materialized element with its binding context.

    ``key`` is the element's context signature: the concatenated *key
    columns* (the pruned, descendant-referenced subset) of every
    query-bearing ancestor-or-self binding, in root-to-leaf order.
    Children group their bulk rows on exactly this tuple; ``env`` keeps
    the full rows for correlated fallbacks and ``attr_source_bv``
    resolution.
    """

    element: Any
    env: dict[str, Row]
    key: tuple


@dataclass
class _NodePlan:
    """The per-node execution decision."""

    node: SchemaNode
    kind: str  # "bulk" | "fallback" | "literal"
    query: Optional[Select] = None
    #: Bulk-row column names holding the parent context key, in order.
    key_columns: list[str] = field(default_factory=list)
    #: The node's own output column names (static == sqlite names).
    own_columns: list[str] = field(default_factory=list)
    #: The subset of own columns descendants key on (pruned context).
    own_key_columns: list[str] = field(default_factory=list)
    #: Whether descendants may rely on this node's static column names.
    reliable: bool = True
    grouped_aggregate: bool = False
    distinct: bool = False
    #: For ungrouped aggregates evaluated through the grouped join form:
    #: the row an empty group produces (COUNT -> 0, SUM/MIN/MAX/AVG -> NULL).
    empty_row: Optional[Row] = None
    #: Whether a descendant surfaces this node's env row wholesale
    #: (``attr_source_bv`` with no column list), forcing the bulk row to be
    #: trimmed to the node's own columns instead of handed over as-is.
    exact_env_row: bool = False
    reason: str = ""


def _stable_output_columns(query: Select, catalog) -> list[str]:
    """Output columns whose static names provably match sqlite's.

    Raises :class:`_BulkUnsupported` when a select item's runtime column
    name could differ from the statically derived one (unaliased
    expressions, duplicates the engine would rename with ``__2``
    suffixes) — the grouped merge keys on these names, so a mismatch
    would silently misgroup rows.
    """
    try:
        columns = output_columns(query, catalog)
    except ReproError as exc:
        raise _BulkUnsupported(f"output columns not derivable: {exc}") from exc
    if len(set(columns)) != len(columns):
        raise _BulkUnsupported("duplicate output column names")
    for item in query.items:
        if item.alias or isinstance(item.expr, (Star, ColumnRef)):
            continue
        raise _BulkUnsupported(
            f"select item without a stable column name: {item.expr!r}"
        )
    return columns


def _empty_group_row(select: Select) -> Optional[Row]:
    """The row an ungrouped aggregate query yields over an empty input.

    ``SELECT COUNT(x) AS c, SUM(y) AS s ...`` with no matching tuples
    returns exactly one row ``(0, NULL)``. Knowing that row lets the bulk
    evaluator run such queries through the cheap join-and-group form and
    repair the dropped empty groups in the merge. Returns ``None`` when
    the query is not an ungrouped aggregate or its empty-input row is not
    statically known (non-aggregate select items, HAVING).
    """
    if (
        select.group_by
        or select.distinct
        or select.having is not None
        or not has_top_level_aggregate(select)
    ):
        return None
    row: Row = {}
    for item in select.items:
        expr = item.expr
        if not isinstance(expr, FuncCall) or not expr.is_aggregate:
            return None
        name = item.output_name()
        if not name:
            return None
        row[name] = 0 if expr.name == "COUNT" else None
    return row


class BulkViewEvaluator:
    """Materializes a schema-tree view with one query per schema node.

    Drop-in alternative to :class:`~repro.schema_tree.evaluator.ViewEvaluator`:
    same output document (canonically identical), same stats counters.

    ``db`` and ``stats`` are the injected connection/stats pair (see
    :class:`~repro.schema_tree.evaluator.ViewEvaluator`): the serving
    layer supplies a pooled per-worker database and per-request
    counters so concurrent requests never share mutable state.

    ``capture_instances`` (a caller-owned dict) opts into recording the
    per-node instance state for incremental maintenance, in the same
    ``{node_id: [(element, env), ...]}`` shape the nested-loop
    evaluator's capture produces (the root records ``(document, {})``).
    Enabling capture also disables the leaf fast path so leaf elements
    are recorded too. See :mod:`repro.maintenance.incremental`.
    """

    def __init__(
        self,
        db: Database,
        stats: Optional[MaterializeStats] = None,
        capture_instances: Optional[dict[int, list]] = None,
    ):
        self.db = db
        self.stats = stats if stats is not None else MaterializeStats()
        self.fallback_nodes: list[FallbackRecord] = []
        self.bulk_queries_executed = 0
        self._key_columns_cache: dict[int, list[str]] = {}
        self._capture = capture_instances

    # -- planning -------------------------------------------------------------

    def _node_key_columns(self, node: SchemaNode) -> list[str]:
        """The columns of ``node``'s row its subtree's merge keys use.

        Descendants join and group on their ancestors' *key columns*, not
        every carried column: the columns their tag queries reference as
        ``$bv.column`` parameters, plus the node's own ORDER BY keys (so
        document order still propagates). Anything else cannot influence
        a descendant's rows, so two bindings agreeing on the key columns
        have identical subtrees — which is exactly the invariant the
        duplicate-binding merge relies on. Pruning here is what keeps the
        bulk queries' carried width and GROUP BY lists narrow.

        DISTINCT queries are never pruned (projection changes their
        cardinality), keeping the pruned query reusable as an inlined
        ancestor.
        """
        cached = self._key_columns_cache.get(node.id)
        if cached is not None:
            return cached
        assert node.tag_query is not None
        out = output_columns(node.tag_query, self.db.catalog)
        if node.tag_query.distinct:
            self._key_columns_cache[node.id] = out
            return out
        needed: set[str] = set()
        if node.bv is not None:
            for descendant in node.walk():
                if descendant is node or descendant.tag_query is None:
                    continue
                for expr in walk_exprs(descendant.tag_query):
                    if isinstance(expr, ParamRef) and expr.var == node.bv:
                        needed.add(expr.column)
        for item in node.tag_query.order_by:
            if isinstance(item.expr, ColumnRef) and item.expr.column in out:
                needed.add(item.expr.column)
        columns = [c for c in out if c in needed]
        self._key_columns_cache[node.id] = columns
        return columns

    def _pruned_parent(self, ancestor: SchemaNode, keep: list[str]) -> Select:
        """A clone of an ancestor's tag query projecting only ``keep``.

        Cardinality is preserved: the WHERE/GROUP BY/ORDER BY clauses are
        untouched, and when nothing is kept one original item remains so
        the query still produces one row per binding.
        """
        assert ancestor.tag_query is not None
        query = ancestor.tag_query.clone()
        out = output_columns(query, self.db.catalog)
        if query.distinct or set(keep) == set(out):
            return query
        expand_stars(query, self.db.catalog)
        keep_set = set(keep)
        kept = [i for i in query.items if i.output_name() in keep_set]
        if not kept:
            kept = [query.items[0]]
        query.items = kept
        return query

    def _plan_node(self, node: SchemaNode, tainted: bool) -> _NodePlan:
        """Decide how to execute one node (bulk, fallback, or literal)."""
        if node.tag_query is None:
            return _NodePlan(node, "literal")
        try:
            own_columns = _stable_output_columns(node.tag_query, self.db.catalog)
            reliable = True
        except _BulkUnsupported as exc:
            return self._fallback_plan(node, str(exc), reliable=False)
        own_key_columns = self._node_key_columns(node)
        if tainted:
            return self._fallback_plan(
                node,
                "ancestor column names are not statically derivable",
                reliable=reliable,
                own_columns=own_columns,
                own_key_columns=own_key_columns,
            )
        empty_row = _empty_group_row(node.tag_query)
        try:
            query, key_columns = self._decorrelate(
                node, grouped_aggregates=empty_row is not None
            )
        except _BulkUnsupported as exc:
            return self._fallback_plan(
                node, str(exc), reliable=reliable, own_columns=own_columns,
                own_key_columns=own_key_columns,
            )
        return _NodePlan(
            node,
            "bulk",
            query=query,
            key_columns=key_columns,
            own_columns=own_columns,
            own_key_columns=own_key_columns,
            reliable=True,
            # A synthesized ungrouped aggregate ran through GROUP BY too,
            # so duplicate parent bindings inflate it just the same.
            grouped_aggregate=bool(node.tag_query.group_by)
            or empty_row is not None,
            distinct=node.tag_query.distinct,
            empty_row=empty_row,
            exact_env_row=node.bv is not None
            and any(
                d.attr_source_bv == node.bv and d.attr_columns is None
                for d in node.walk()
                if d is not node
            ),
        )

    def _fallback_plan(
        self,
        node: SchemaNode,
        reason: str,
        reliable: bool,
        own_columns: Optional[list[str]] = None,
        own_key_columns: Optional[list[str]] = None,
    ) -> _NodePlan:
        record = FallbackRecord(node.id, node.tag, reason)
        self.fallback_nodes.append(record)
        logger.warning("bulk evaluation falling back to correlated: %s", record)
        return _NodePlan(
            node,
            "fallback",
            own_columns=own_columns or [],
            own_key_columns=own_key_columns or [],
            reliable=reliable,
            reason=reason,
        )

    def _decorrelate(
        self, node: SchemaNode, grouped_aggregates: bool = False
    ) -> tuple[Select, list[str]]:
        """Rewrite the node's tag query into one closed bulk query.

        Ancestor tag queries are attached nearest-first: each step inlines
        the ancestor as a derived table wherever its binding variable is
        referenced (recursing into previously inlined levels), carries the
        ancestor's columns to the output, and propagates its ORDER BY keys
        parent-major — the same one-level step UNBIND iterates.

        With ``grouped_aggregates`` an ungrouped aggregate takes the
        join-and-group form instead of correlated scalar subqueries: far
        cheaper (one grouped pass instead of a subquery per parent row),
        at the price of losing empty groups — which the caller repairs
        from :attr:`_NodePlan.empty_row` during the merge.
        """
        catalog = self.db.catalog
        assert node.tag_query is not None
        ancestors = [
            a for a in node.path_from_root()[1:-1] if a.tag_query is not None
        ]
        query = node.tag_query.clone()
        exposures: dict[int, dict[str, str]] = {}
        for ancestor in reversed(ancestors):
            if ancestor.bv is None:
                raise _BulkUnsupported(
                    f"ancestor <{ancestor.tag}> has a query but no binding "
                    "variable"
                )
            try:
                _stable_output_columns(ancestor.tag_query, catalog)
                pruned = self._pruned_parent(
                    ancestor, self._node_key_columns(ancestor)
                )
                exposures[ancestor.id] = attach_parent_query(
                    query, ancestor.bv, pruned, catalog,
                    scalar_aggregates=not grouped_aggregates,
                )
            except ReproError as exc:
                raise _BulkUnsupported(
                    f"cannot inline ancestor <{ancestor.tag}>: {exc}"
                ) from exc
        if collect_params(query):
            leftover = sorted(
                {p.var for p in collect_params(query)}
            )
            raise _BulkUnsupported(
                f"decorrelation left unresolved parameters ${', $'.join(leftover)}"
            )
        bulk_columns = _stable_output_columns(query, catalog)
        key_columns: list[str] = []
        for ancestor in ancestors:
            exposure = exposures[ancestor.id]
            for column in self._node_key_columns(ancestor):
                exposed = exposure.get(column)
                if exposed is None or exposed not in bulk_columns:
                    raise _BulkUnsupported(
                        f"ancestor <{ancestor.tag}> column {column!r} was "
                        "not carried to the bulk result"
                    )
                key_columns.append(exposed)
        return query, key_columns

    def _plan_view(self, view: SchemaTreeQuery) -> dict[int, _NodePlan]:
        """Plan every node of ``view``, with cross-evaluator caching.

        Planning depends only on the view and the catalog, so the result
        (including which nodes fell back and why) is cached per view
        object. On a hit the planning-time fallback records are replayed
        into :attr:`fallback_nodes` without re-logging.
        """
        with _PLAN_CACHE_LOCK:
            cached = _PLAN_CACHE.get(id(view))
            if (
                cached is not None
                and cached[0] is view
                and cached[1] is self.db.catalog
            ):
                self.fallback_nodes.extend(cached[3])
                return cached[2]
        marker = len(self.fallback_nodes)
        plans: dict[int, _NodePlan] = {}
        reliability: dict[int, bool] = {view.root.id: True}
        for node in view.nodes(include_root=False):
            parent = node.parent
            assert parent is not None
            plan = self._plan_node(node, tainted=not reliability[parent.id])
            plans[node.id] = plan
            reliability[node.id] = reliability[parent.id] and plan.reliable
        with _PLAN_CACHE_LOCK:
            while len(_PLAN_CACHE) >= _PLAN_CACHE_LIMIT:
                _PLAN_CACHE.pop(next(iter(_PLAN_CACHE)))
            _PLAN_CACHE[id(view)] = (
                view,
                self.db.catalog,
                plans,
                list(self.fallback_nodes[marker:]),
            )
        return plans

    # -- execution ------------------------------------------------------------

    def materialize(self, view: SchemaTreeQuery) -> "Document":
        """Evaluate ``view``; returns the document (see ViewEvaluator)."""
        from repro.xmlcore.nodes import Document

        plans = self._plan_view(view)
        document = Document()
        instances: dict[int, list[_Instance]] = {
            view.root.id: [_Instance(document, {}, ())]
        }
        for node in view.nodes(include_root=False):
            parent = node.parent
            assert parent is not None
            parents = instances.get(parent.id, [])
            created = self.evaluate_node(plans[node.id], parents)
            instances[node.id] = created
        if self._capture is not None:
            for node_id, created in instances.items():
                self._capture[node_id] = [(i.element, i.env) for i in created]
        return document

    def evaluate_node(
        self, plan: _NodePlan, parents: list[_Instance]
    ) -> list[_Instance]:
        """Materialize one schema node's elements under ``parents``.

        Dispatches on the plan kind (literal / bulk / correlated
        fallback) and returns the created instances in document order.
        Public so incremental maintenance
        (:mod:`repro.maintenance.incremental`) can re-execute single
        dirty nodes against shadow parent instances instead of the full
        view.
        """
        if plan.kind == "literal":
            return self._emit_literal(plan.node, parents)
        if plan.kind == "bulk":
            return self._emit_bulk(plan, parents)
        return self._emit_fallback(plan, parents)

    def plan_view(self, view: SchemaTreeQuery) -> dict[int, _NodePlan]:
        """Public per-node plans for ``view`` (see :meth:`_plan_view`).

        Incremental maintenance uses the plans to check node
        reliability (whether splice keys are trustworthy) and to feed
        :meth:`evaluate_node`.
        """
        return self._plan_view(view)

    def node_key_columns(self, node: SchemaNode) -> list[str]:
        """Public key columns of ``node`` (see :meth:`_node_key_columns`).

        Incremental maintenance concatenates these over a frontier
        node's query-bearing ancestors to rebuild the context keys
        retained parent instances would have carried.
        """
        return self._node_key_columns(node)

    def _emit_literal(
        self, node: SchemaNode, parents: list[_Instance]
    ) -> list[_Instance]:
        created: list[_Instance] = []
        for parent in parents:
            element = build_element(node, parent.env, row=None, stats=self.stats)
            parent.element.append(element)
            created.append(_Instance(element, parent.env, parent.key))
        return created

    def _emit_fallback(
        self, plan: _NodePlan, parents: list[_Instance]
    ) -> list[_Instance]:
        """Correlated execution: one query per parent binding (Section 2.1)."""
        node = plan.node
        assert node.tag_query is not None
        created: list[_Instance] = []
        for parent in parents:
            rows = self.db.run_query(node.tag_query, parent.env)
            created.extend(self._attach_rows(plan, parent, rows))
        return created

    def _emit_bulk(
        self, plan: _NodePlan, parents: list[_Instance]
    ) -> list[_Instance]:
        node = plan.node
        assert plan.query is not None
        if not parents:
            return []
        try:
            rows = self.db.run_query(plan.query, env=None)
        except ReproError as exc:
            plan = self._fallback_plan(
                node, f"bulk query failed: {exc}", reliable=plan.reliable,
                own_columns=plan.own_columns,
            )
            return self._emit_fallback(plan, parents)
        self.bulk_queries_executed += 1
        try:
            shares = self._group_rows(plan, parents, rows)
        except _BulkUnsupported as exc:
            plan = self._fallback_plan(
                node, str(exc), reliable=plan.reliable,
                own_columns=plan.own_columns,
            )
            return self._emit_fallback(plan, parents)
        created: list[_Instance] = []
        for parent in parents:
            created.extend(
                self._attach_rows(plan, parent, shares.get(id(parent), []))
            )
        return created

    def _group_rows(
        self,
        plan: _NodePlan,
        parents: list[_Instance],
        rows: list[Row],
    ) -> dict[int, list[Row]]:
        """The grouped merge: deal bulk rows out to their parent elements.

        Returns a mapping from ``id(parent_instance)`` to that parent's
        child rows, in bulk-result (document) order.
        """
        key_columns = plan.key_columns
        grouped: dict[tuple, list[Row]] = {}
        if not key_columns:
            keyfunc = None
        elif len(key_columns) == 1:
            single = itemgetter(key_columns[0])
            keyfunc = lambda r: (single(r),)  # noqa: E731
        else:
            keyfunc = itemgetter(*key_columns)
        try:
            for row in rows:
                key = keyfunc(row) if keyfunc else ()
                grouped.setdefault(key, []).append(row)
        except KeyError as exc:
            raise _BulkUnsupported(
                f"bulk row is missing key column {exc}"
            ) from exc
        parents_by_key: dict[tuple, list[_Instance]] = {}
        for parent in parents:
            parents_by_key.setdefault(parent.key, []).append(parent)
        matched = 0
        shares: dict[int, list[Row]] = {}
        for key, siblings in parents_by_key.items():
            group = grouped.get(key, [])
            matched += len(group)
            if not group and plan.empty_row is not None:
                # The grouped form dropped this parent's empty group;
                # restore the statically-known empty-input aggregate row.
                share = [dict(plan.empty_row)]
            elif len(siblings) == 1 or not group:
                share = group
            elif plan.grouped_aggregate:
                # GROUP BY merged the duplicate bindings into one group,
                # corrupting the aggregate values — only re-running the
                # correlated query per binding recovers them.
                raise _BulkUnsupported(
                    "duplicate parent bindings under a grouped aggregate"
                )
            elif plan.distinct:
                # DISTINCT already collapsed the duplicated copies.
                share = group
            else:
                share = _divide_group(group, len(siblings))
            for parent in siblings:
                shares[id(parent)] = share
        if matched != len(rows):
            raise _BulkUnsupported(
                f"{len(rows) - matched} bulk rows matched no parent binding"
            )
        return shares

    def _attach_rows(
        self, plan: _NodePlan, parent: _Instance, rows: list[Row]
    ) -> list[_Instance]:
        node = plan.node
        created: list[_Instance] = []
        own_columns = plan.own_columns
        # Bulk rows carry ancestor key columns after the node's own
        # columns. Rather than rebuild a narrowed dict per row, hand the
        # wide row over and limit attribute surfacing to the node's own
        # columns — env lookups are by name, so the extra (uniquely named)
        # carried columns are invisible to descendants. The exception is
        # a descendant that surfaces this env row wholesale
        # (``exact_env_row``): only then is the per-row trim paid.
        wide = (
            plan.kind == "bulk"
            and bool(own_columns)
            and bool(rows)
            and len(rows[0]) != len(own_columns)
        )
        trim = wide and plan.exact_env_row
        surface = own_columns if wide and not trim else None
        if not node.children and self._capture is None:
            # Leaf fast path: no descendant ever reads the env or the
            # context key, so skip the per-row bookkeeping entirely.
            stats = self.stats
            append = parent.element.append
            env = parent.env
            for row in rows:
                own_row = {c: row[c] for c in own_columns} if trim else row
                append(
                    build_element(node, env, own_row, stats, surface_columns=surface)
                )
            return created
        for row in rows:
            own_row = {c: row[c] for c in own_columns} if trim else row
            element = build_element(
                node, parent.env, own_row, self.stats, surface_columns=surface
            )
            parent.element.append(element)
            if node.bv is not None:
                child_env = dict(parent.env)
                child_env[node.bv] = own_row
            else:
                child_env = parent.env
            key = parent.key
            if plan.reliable:
                key = key + tuple(
                    own_row.get(c) for c in plan.own_key_columns
                )
            created.append(_Instance(element, child_env, key))
        return created


def _divide_group(rows: list[Row], share_count: int) -> list[Row]:
    """Split a group that joined against ``share_count`` duplicate bindings.

    Every duplicate binding contributed one identical copy of the child
    multiset, so each distinct row value's multiplicity must divide evenly;
    first-occurrence order is preserved.
    """
    counts: dict[tuple, list] = {}
    order: list[tuple] = []
    for row in rows:
        try:
            key = tuple(row.values())
        except TypeError as exc:  # pragma: no cover - defensive
            raise _BulkUnsupported(f"unhashable row value: {exc}") from exc
        entry = counts.get(key)
        if entry is None:
            counts[key] = [row, 1]
            order.append(key)
        else:
            entry[1] += 1
    share: list[Row] = []
    for key in order:
        row, count = counts[key]
        quotient, remainder = divmod(count, share_count)
        if remainder:
            raise _BulkUnsupported(
                "group rows do not divide evenly among duplicate parent "
                "bindings"
            )
        share.extend([row] * quotient)
    return share


def materialize_bulk(view: SchemaTreeQuery, db: Database) -> "Document":
    """Convenience one-shot bulk materialization."""
    return BulkViewEvaluator(db).materialize(view)

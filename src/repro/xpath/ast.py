"""AST node definitions for the XPath subset.

All nodes are immutable dataclasses with structural equality, so tests can
assert directly against expected trees and the composer can use them as
dictionary keys where needed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Union


class Axis(enum.Enum):
    """The navigation axes supported by the dialect."""

    CHILD = "child"
    PARENT = "parent"
    SELF = "self"
    ATTRIBUTE = "attribute"
    DESCENDANT_OR_SELF = "descendant-or-self"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


# A predicate expression is one of the classes below.
Expr = Union[
    "BinaryOp",
    "FunctionCall",
    "Literal",
    "NumberLiteral",
    "AttributeRef",
    "VariableRef",
    "PathExpr",
    "ContextRef",
]


@dataclass(frozen=True)
class Literal:
    """A quoted string literal."""

    value: str

    def to_text(self) -> str:
        """Render as XPath source text."""
        return f'"{self.value}"'


@dataclass(frozen=True)
class NumberLiteral:
    """A numeric literal. Stored as float; prints as int when integral."""

    value: float

    def to_text(self) -> str:
        """Render as XPath source text."""
        if self.value == int(self.value):
            return str(int(self.value))
        return str(self.value)


@dataclass(frozen=True)
class AttributeRef:
    """``@name`` — an attribute of the predicate's context node."""

    name: str

    def to_text(self) -> str:
        """Render as XPath source text."""
        return f"@{self.name}"


@dataclass(frozen=True)
class VariableRef:
    """``$name`` — an XSLT variable or parameter reference."""

    name: str

    def to_text(self) -> str:
        """Render as XPath source text."""
        return f"${self.name}"


@dataclass(frozen=True)
class ContextRef:
    """``.`` used as an expression (string-value of the context node)."""

    def to_text(self) -> str:
        """Render as XPath source text."""
        return "."


@dataclass(frozen=True)
class BinaryOp:
    """A binary operation: comparisons, arithmetic, ``and``/``or``."""

    op: str  # one of =, !=, <, <=, >, >=, and, or, +, -, *, div, mod
    left: Expr
    right: Expr

    def to_text(self) -> str:
        """Render as XPath source text."""
        return f"{_wrap(self.left)} {self.op} {_wrap(self.right)}"


@dataclass(frozen=True)
class FunctionCall:
    """A function call. The dialect supports not/true/false/count."""

    name: str
    args: tuple[Expr, ...] = ()

    def to_text(self) -> str:
        """Render as XPath source text."""
        return f"{self.name}({', '.join(_expr_text(a) for a in self.args)})"


@dataclass(frozen=True)
class Step:
    """One location step: ``axis::node_test[predicates]``.

    ``node_test`` is an element name, ``"*"`` for any element, or an
    attribute name when the axis is ``ATTRIBUTE``.
    """

    axis: Axis
    node_test: str
    predicates: tuple[Expr, ...] = ()

    def with_predicates(self, predicates: tuple[Expr, ...]) -> "Step":
        """Return a copy of this step carrying ``predicates``."""
        return Step(self.axis, self.node_test, predicates)

    def to_text(self) -> str:
        """Render as XPath source text (using abbreviations)."""
        if self.axis is Axis.SELF and self.node_test == "*" and not self.predicates:
            return "."
        if self.axis is Axis.PARENT and self.node_test == "*" and not self.predicates:
            return ".."
        preds = "".join(f"[{_expr_text(p)}]" for p in self.predicates)
        if self.axis is Axis.CHILD:
            return f"{self.node_test}{preds}"
        if self.axis is Axis.ATTRIBUTE:
            return f"@{self.node_test}{preds}"
        if self.axis is Axis.SELF:
            base = "." if self.node_test == "*" else f"self::{self.node_test}"
            return f"{base}{preds}"
        if self.axis is Axis.PARENT:
            base = ".." if self.node_test == "*" else f"parent::{self.node_test}"
            return f"{base}{preds}"
        return f"{self.axis.value}::{self.node_test}{preds}"


@dataclass(frozen=True)
class LocationPath:
    """A location path: optional leading ``/`` plus a sequence of steps."""

    steps: tuple[Step, ...]
    absolute: bool = False

    def to_text(self) -> str:
        """Render as XPath source text (using abbreviations)."""
        parts: list[str] = []
        for step in self.steps:
            if (
                step.axis is Axis.DESCENDANT_OR_SELF
                and step.node_test == "*"
                and not step.predicates
            ):
                # Render the descendant step together with the next '/' as
                # the '//' abbreviation.
                parts.append("")
                continue
            parts.append(step.to_text())
        body = "/".join(parts)
        if self.absolute:
            return "/" + body
        return body

    @property
    def last_step(self) -> Step:
        if not self.steps:
            raise ValueError("empty location path has no last step")
        return self.steps[-1]

    def uses_axis(self, axis: Axis) -> bool:
        """Whether any step (not descending into predicates) uses ``axis``."""
        return any(step.axis is axis for step in self.steps)

    def has_predicates(self) -> bool:
        """Whether any step carries a predicate."""
        return any(step.predicates for step in self.steps)


@dataclass(frozen=True)
class PathExpr:
    """A location path used in expression position (existence test)."""

    path: LocationPath

    def to_text(self) -> str:
        """Render as XPath source text."""
        return self.path.to_text()


def _expr_text(expr: Expr) -> str:
    return expr.to_text()


def _wrap(expr: Expr) -> str:
    """Parenthesize nested boolean operations for unambiguous output."""
    if isinstance(expr, BinaryOp) and expr.op in ("and", "or"):
        return f"({expr.to_text()})"
    return expr.to_text()

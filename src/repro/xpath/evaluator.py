"""Instance-level evaluation of the XPath subset over xmlcore trees.

The evaluator implements the semantics the XSLT interpreter needs:

* :meth:`XPathEvaluator.select` — evaluate a location path from a context
  node, returning element (and document) nodes in traversal order,
* :meth:`XPathEvaluator.evaluate` — evaluate an expression to a value
  (boolean, number, string, or node-set),
* :meth:`XPathEvaluator.truth` — XPath boolean coercion.

Value model: Python ``bool``, ``float``, ``str``, ``None`` (absent
attribute), and ``list`` of nodes. Comparisons follow XPath 1.0 coercion:
when a node-set participates, the comparison holds if it holds for *some*
member; numbers compare numerically; ``=``/``!=`` fall back to string
comparison when either side is non-numeric.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import XPathEvaluationError
from repro.xmlcore.nodes import Document, Element, Node
from repro.xpath.ast import (
    AttributeRef,
    Axis,
    BinaryOp,
    ContextRef,
    Expr,
    FunctionCall,
    Literal,
    LocationPath,
    NumberLiteral,
    PathExpr,
    Step,
    VariableRef,
)

Value = Union[bool, float, str, None, list]


class XPathEvaluator:
    """Evaluates paths and expressions with an optional variable binding."""

    def __init__(self, variables: Optional[dict[str, Value]] = None):
        self.variables: dict[str, Value] = dict(variables) if variables else {}

    # -- path evaluation ----------------------------------------------------

    def select(self, path: LocationPath, context: Node) -> list[Node]:
        """Evaluate a location path; returns nodes in traversal order.

        Attribute-axis steps may only appear as the final step; they yield
        the *owning elements filtered by attribute presence* when used
        mid-expression, but as a final step the caller should use
        :meth:`select_values` to obtain the attribute strings.
        """
        nodes: list[Node] = [context.root() if path.absolute else context]
        for step in path.steps:
            nodes = self._apply_step(step, nodes)
        return nodes

    def select_values(self, path: LocationPath, context: Node) -> list[Value]:
        """Like :meth:`select` but a final attribute step yields strings."""
        steps = path.steps
        if steps and steps[-1].axis is Axis.ATTRIBUTE:
            prefix = LocationPath(steps[:-1], absolute=path.absolute)
            owners = self.select(prefix, context) if prefix.steps or prefix.absolute else [context]
            name = steps[-1].node_test
            values: list[Value] = []
            for owner in owners:
                if isinstance(owner, Element) and name in owner.attributes:
                    values.append(owner.attributes[name])
            return values
        return list(self.select(path, context))

    def _apply_step(self, step: Step, nodes: list[Node]) -> list[Node]:
        result: list[Node] = []
        seen: set[int] = set()

        def push(node: Node) -> None:
            if id(node) not in seen:
                seen.add(id(node))
                result.append(node)

        for node in nodes:
            for candidate in self._step_candidates(step, node):
                if self._node_passes(step, candidate):
                    push(candidate)
        return result

    def _step_candidates(self, step: Step, node: Node) -> list[Node]:
        if step.axis is Axis.CHILD:
            if isinstance(node, (Element, Document)):
                return list(node.child_elements())
            return []
        if step.axis is Axis.PARENT:
            return [node.parent] if node.parent is not None else []
        if step.axis is Axis.SELF:
            return [node]
        if step.axis is Axis.DESCENDANT_OR_SELF:
            candidates: list[Node] = [node]
            if isinstance(node, (Element, Document)):
                candidates.extend(node.iter_elements())
            return candidates
        if step.axis is Axis.ATTRIBUTE:
            # Mid-path attribute steps act as an ownership filter; the
            # value extraction happens in select_values.
            if isinstance(node, Element) and (
                step.node_test == "*" or step.node_test in node.attributes
            ):
                return [node]
            return []
        raise XPathEvaluationError(f"unsupported axis {step.axis.value!r}")

    def _node_passes(self, step: Step, node: Node) -> bool:
        if step.axis is Axis.ATTRIBUTE:
            # Presence was already checked while generating candidates.
            pass
        elif step.node_test != "*":
            if not isinstance(node, Element) or node.tag != step.node_test:
                return False
        elif step.axis in (Axis.CHILD,):
            if not isinstance(node, Element):
                return False
        for predicate in step.predicates:
            if not isinstance(node, Element):
                return False
            if not self.check_predicate(predicate, node):
                return False
        return True

    # -- expression evaluation ------------------------------------------------

    def check_predicate(self, expr: Expr, context: Element) -> bool:
        """Evaluate a predicate expression to a boolean at ``context``."""
        return self.truth(self.evaluate(expr, context))

    def evaluate(self, expr: Expr, context: Node) -> Value:
        """Evaluate an expression at ``context`` to a Value."""
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, NumberLiteral):
            return expr.value
        if isinstance(expr, AttributeRef):
            if isinstance(context, Element):
                return context.attributes.get(expr.name)
            return None
        if isinstance(expr, VariableRef):
            if expr.name not in self.variables:
                raise XPathEvaluationError(f"unbound variable ${expr.name}")
            return self.variables[expr.name]
        if isinstance(expr, ContextRef):
            return [context]
        if isinstance(expr, PathExpr):
            return self.select_values(expr.path, context)
        if isinstance(expr, FunctionCall):
            return self._call_function(expr, context)
        if isinstance(expr, BinaryOp):
            return self._binary(expr, context)
        raise XPathEvaluationError(f"cannot evaluate {type(expr).__name__}")

    def _call_function(self, call: FunctionCall, context: Node) -> Value:
        if call.name == "not":
            if len(call.args) != 1:
                raise XPathEvaluationError("not() takes exactly one argument")
            return not self.truth(self.evaluate(call.args[0], context))
        if call.name == "true":
            return True
        if call.name == "false":
            return False
        if call.name == "count":
            if len(call.args) != 1 or not isinstance(call.args[0], PathExpr):
                raise XPathEvaluationError("count() takes one path argument")
            return float(len(self.select_values(call.args[0].path, context)))
        raise XPathEvaluationError(f"unknown function {call.name}()")

    def _binary(self, expr: BinaryOp, context: Node) -> Value:
        op = expr.op
        if op == "and":
            return self.truth(self.evaluate(expr.left, context)) and self.truth(
                self.evaluate(expr.right, context)
            )
        if op == "or":
            return self.truth(self.evaluate(expr.left, context)) or self.truth(
                self.evaluate(expr.right, context)
            )
        left = self.evaluate(expr.left, context)
        right = self.evaluate(expr.right, context)
        if op in ("+", "-", "*", "div", "mod"):
            ln, rn = self.to_number(left), self.to_number(right)
            if ln is None or rn is None:
                raise XPathEvaluationError(f"non-numeric operand for {op!r}")
            if op == "+":
                return ln + rn
            if op == "-":
                return ln - rn
            if op == "*":
                return ln * rn
            if op == "div":
                return ln / rn
            return ln % rn
        return self._compare(op, left, right)

    def _compare(self, op: str, left: Value, right: Value) -> bool:
        # Node-set semantics: true if the comparison holds for some member.
        if isinstance(left, list):
            return any(self._compare(op, self.string_value(v), right) for v in left)
        if isinstance(right, list):
            return any(self._compare(op, left, self.string_value(v)) for v in right)
        if left is None or right is None:
            return False
        ln, rn = self.to_number(left), self.to_number(right)
        if ln is not None and rn is not None:
            return self._apply_comparison(op, ln, rn)
        if op == "=":
            return self.to_string(left) == self.to_string(right)
        if op == "!=":
            return self.to_string(left) != self.to_string(right)
        return False

    @staticmethod
    def _apply_comparison(op: str, left: float, right: float) -> bool:
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        raise XPathEvaluationError(f"unknown comparison {op!r}")

    # -- coercions ------------------------------------------------------------

    @staticmethod
    def truth(value: Value) -> bool:
        """XPath boolean coercion."""
        if isinstance(value, bool):
            return value
        if isinstance(value, float):
            return value != 0 and value == value  # NaN is false
        if isinstance(value, str):
            return bool(value)
        if isinstance(value, list):
            return bool(value)
        return False

    @staticmethod
    def to_number(value: Value) -> Optional[float]:
        """Coerce to a number, or ``None`` when not numeric."""
        if isinstance(value, bool):
            return 1.0 if value else 0.0
        if isinstance(value, float):
            return value
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                return None
        return None

    @classmethod
    def to_string(cls, value: Value) -> str:
        """XPath string coercion."""
        if value is None:
            return ""
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, float):
            if value == int(value):
                return str(int(value))
            return str(value)
        if isinstance(value, str):
            return value
        if isinstance(value, list):
            return cls.string_value(value[0]) if value else ""
        return str(value)

    @classmethod
    def string_value(cls, value) -> str:
        """String value of a node (concatenated text) or pass-through."""
        if isinstance(value, Element):
            return value.text_content()
        if isinstance(value, Document):
            root = value.root_element
            return root.text_content() if root is not None else ""
        if isinstance(value, str):
            return value
        return cls.to_string(value)


def evaluate_path(path_text: str, context: Node, variables: Optional[dict] = None) -> list[Node]:
    """Convenience: parse and evaluate a location path at ``context``."""
    from repro.xpath.parser import parse_path

    return XPathEvaluator(variables).select(parse_path(path_text), context)


def evaluate_predicate(expr_text: str, context: Element, variables: Optional[dict] = None) -> bool:
    """Convenience: parse and evaluate a predicate expression at ``context``."""
    from repro.xpath.parser import parse_expression

    return XPathEvaluator(variables).check_predicate(parse_expression(expr_text), context)

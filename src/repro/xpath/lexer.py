"""Tokenizer for the XPath subset."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import XPathSyntaxError

# Token kinds.
NAME = "NAME"
NUMBER = "NUMBER"
STRING = "STRING"
VARIABLE = "VARIABLE"
SYMBOL = "SYMBOL"
EOF = "EOF"

_TWO_CHAR_SYMBOLS = ("//", "..", "::", "!=", "<=", ">=")
_ONE_CHAR_SYMBOLS = set("/.@[]()|=<>,*$+-")


@dataclass(frozen=True)
class Token:
    """A single lexical token."""

    kind: str
    value: str
    position: int

    def is_symbol(self, value: str) -> bool:
        """Whether this token is the given symbol."""
        return self.kind == SYMBOL and self.value == value

    def is_name(self, value: str | None = None) -> bool:
        """Whether this token is a name (optionally a specific one)."""
        if self.kind != NAME:
            return False
        return value is None or self.value == value


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_name_char(ch: str) -> bool:
    # Hyphens are excluded so that "$idx-1" lexes as a subtraction; the
    # names appearing in composable views and stylesheets use underscores.
    return ch.isalnum() or ch == "_"


def tokenize(expression: str) -> list[Token]:
    """Tokenize an XPath expression or pattern.

    A trailing ``EOF`` token is always appended.

    Raises:
        XPathSyntaxError: on characters outside the dialect.
    """
    tokens: list[Token] = []
    pos = 0
    length = len(expression)
    while pos < length:
        ch = expression[pos]
        if ch.isspace():
            pos += 1
            continue
        if ch in "\"'":
            end = expression.find(ch, pos + 1)
            if end < 0:
                raise XPathSyntaxError("unterminated string literal", expression, pos)
            tokens.append(Token(STRING, expression[pos + 1:end], pos))
            pos = end + 1
            continue
        if ch.isdigit():
            start = pos
            while pos < length and expression[pos].isdigit():
                pos += 1
            if (
                pos + 1 < length
                and expression[pos] == "."
                and expression[pos + 1].isdigit()
            ):
                pos += 1
                while pos < length and expression[pos].isdigit():
                    pos += 1
            tokens.append(Token(NUMBER, expression[start:pos], pos))
            continue
        if ch == "$":
            start = pos
            pos += 1
            if pos >= length or not _is_name_start(expression[pos]):
                raise XPathSyntaxError("expected name after '$'", expression, start)
            name_start = pos
            while pos < length and _is_name_char(expression[pos]):
                pos += 1
            tokens.append(Token(VARIABLE, expression[name_start:pos], start))
            continue
        if _is_name_start(ch):
            start = pos
            while pos < length and _is_name_char(expression[pos]):
                pos += 1
            tokens.append(Token(NAME, expression[start:pos], start))
            continue
        two = expression[pos:pos + 2]
        if two in _TWO_CHAR_SYMBOLS:
            tokens.append(Token(SYMBOL, two, pos))
            pos += 2
            continue
        if ch in _ONE_CHAR_SYMBOLS:
            tokens.append(Token(SYMBOL, ch, pos))
            pos += 1
            continue
        raise XPathSyntaxError(f"unexpected character {ch!r}", expression, pos)
    tokens.append(Token(EOF, "", length))
    return tokens

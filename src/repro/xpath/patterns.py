"""Match-pattern semantics (Section 2.2.1 of the paper, after [Wadler 1999]).

A pattern like ``metro/hotel/confroom`` matches a document node when the
pattern matches **some suffix** of the incoming path from the document root
to the node. An absolute pattern (leading ``/``) must match the entire
incoming path; the bare pattern ``/`` matches only the document root.

Patterns reuse the location-path AST restricted to the ``child``,
``descendant-or-self`` and ``attribute`` axes, with optional predicates on
each step (Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.errors import XPathSyntaxError
from repro.xpath.ast import Axis, Expr, LocationPath, Step
from repro.xmlcore.nodes import Document, Element, Node

# Callable used to evaluate a predicate against a candidate element. The
# instance evaluator supplies this; pattern matching itself is purely
# structural.
PredicateChecker = Callable[[Expr, Element], bool]


def _always_true(_expr: Expr, _node: Element) -> bool:
    return True


@dataclass(frozen=True)
class Pattern:
    """A parsed match pattern."""

    path: LocationPath
    source: str = ""

    def __post_init__(self) -> None:
        for step in self.path.steps:
            if step.axis not in (Axis.CHILD, Axis.DESCENDANT_OR_SELF, Axis.ATTRIBUTE):
                raise XPathSyntaxError(
                    f"axis {step.axis.value!r} not allowed in a match pattern",
                    self.source,
                )

    @property
    def is_root(self) -> bool:
        """Whether this is the root pattern ``/``."""
        return self.path.absolute and not self.path.steps

    @property
    def step_names(self) -> tuple[str, ...]:
        """The node-test names of the child steps, in order."""
        return tuple(s.node_test for s in self.path.steps if s.axis is Axis.CHILD)

    @property
    def last_name(self) -> Optional[str]:
        """The node-test of the last step, or ``None`` for the root pattern."""
        if not self.path.steps:
            return None
        return self.path.steps[-1].node_test

    def uses_descendant_axis(self) -> bool:
        """Whether any step uses '//'."""
        return self.path.uses_axis(Axis.DESCENDANT_OR_SELF)

    def has_predicates(self) -> bool:
        """Whether any step carries a predicate."""
        return self.path.has_predicates()

    def to_text(self) -> str:
        """Render the pattern as source text."""
        if self.is_root:
            return "/"
        return self.path.to_text()

    def matches(
        self,
        node: Union[Element, Document],
        check_predicate: PredicateChecker = _always_true,
    ) -> bool:
        """Test this pattern against a document node.

        Args:
            node: the candidate context node.
            check_predicate: evaluates a step predicate on an element;
                defaults to ignoring predicates (pure structural match).
        """
        if self.is_root:
            return isinstance(node, Document)
        if not isinstance(node, Element):
            return False
        return _match_steps(list(self.path.steps), node, self.path.absolute, check_predicate)


def _match_steps(
    steps: list[Step],
    node: Node,
    absolute: bool,
    check_predicate: PredicateChecker,
) -> bool:
    """Match ``steps`` ending at ``node``, walking ancestors backwards."""
    index = len(steps) - 1
    return _match_from(steps, index, node, absolute, check_predicate)


def _match_from(
    steps: list[Step],
    index: int,
    node: Node,
    absolute: bool,
    check_predicate: PredicateChecker,
) -> bool:
    if index < 0:
        # All steps consumed. Anchored patterns require the document root here.
        if absolute:
            return isinstance(node, Document) or node is None
        return True
    step = steps[index]
    if step.axis is Axis.DESCENDANT_OR_SELF:
        # '//' matches any number of intervening ancestors (including zero).
        current: Optional[Node] = node
        while current is not None:
            if _match_from(steps, index - 1, current, absolute, check_predicate):
                return True
            current = current.parent
        return _match_from(steps, index - 1, None, absolute, check_predicate)
    if step.axis is Axis.CHILD:
        if not isinstance(node, Element):
            return False
        if step.node_test != "*" and node.tag != step.node_test:
            return False
        for predicate in step.predicates:
            if not check_predicate(predicate, node):
                return False
        return _match_from(steps, index - 1, node.parent, absolute, check_predicate)
    if step.axis is Axis.ATTRIBUTE:
        # Attribute patterns are outside the composable dialect, but the
        # structural semantics are easy: the node must be an element that
        # has the attribute. Only valid as the last step.
        if index != len(steps) - 1 or not isinstance(node, Element):
            return False
        if step.node_test != "*" and step.node_test not in node.attributes:
            return False
        return _match_from(steps, index - 1, node.parent, absolute, check_predicate)
    return False


def default_priority(pattern: Pattern) -> float:
    """XSLT default priority for a pattern (spec section 5.5).

    * a bare name test — priority ``0``;
    * a bare ``*`` — priority ``-0.5``;
    * anything more specific (multiple steps, predicates, ``/``) — ``0.5``.
    """
    if pattern.is_root:
        return 0.5
    steps = pattern.path.steps
    if len(steps) == 1 and not pattern.path.absolute:
        step = steps[0]
        if step.axis is Axis.CHILD and not step.predicates:
            return -0.5 if step.node_test == "*" else 0.0
    return 0.5


def pattern_matches(
    pattern_text: str,
    node: Union[Element, Document],
    check_predicate: PredicateChecker = _always_true,
) -> bool:
    """Convenience: parse ``pattern_text`` and test it against ``node``."""
    from repro.xpath.parser import parse_pattern

    return parse_pattern(pattern_text).matches(node, check_predicate)

"""Recursive-descent parser for the XPath subset.

Three entry points:

* :func:`parse_path` — a location path (select expressions),
* :func:`parse_pattern` — a match pattern (returns a
  :class:`~repro.xpath.patterns.Pattern`),
* :func:`parse_expression` — a standalone expression (``test`` attributes,
  ``with-param`` selects).

The grammar (no positional predicates — the dialect has no document order):

.. code-block:: text

    path      := '/' | ['/'] step (('/' | '//') step)*
    step      := abbreviated | axis '::' nodetest preds* | nodetest preds*
    abbrev    := '.' preds* | '..' preds* | '@' name preds*
    nodetest  := NAME | '*'
    expr      := or_expr
    or_expr   := and_expr ('or' and_expr)*
    and_expr  := cmp_expr (('and') cmp_expr)*
    cmp_expr  := add_expr (cmp_op add_expr)?
    add_expr  := primary (('+'|'-') primary)*
    primary   := STRING | NUMBER | VARIABLE | func '(' args ')' |
                 '(' expr ')' | path
"""

from __future__ import annotations

from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    AttributeRef,
    Axis,
    BinaryOp,
    ContextRef,
    Expr,
    FunctionCall,
    Literal,
    LocationPath,
    NumberLiteral,
    PathExpr,
    Step,
    VariableRef,
)
from repro.xpath.lexer import EOF, NAME, NUMBER, STRING, SYMBOL, VARIABLE, Token, tokenize

_AXIS_NAMES = {
    "child": Axis.CHILD,
    "parent": Axis.PARENT,
    "self": Axis.SELF,
    "attribute": Axis.ATTRIBUTE,
    "descendant-or-self": Axis.DESCENDANT_OR_SELF,
}

_COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


class _Parser:
    def __init__(self, expression: str):
        self.expression = expression
        self.tokens = tokenize(expression)
        self.index = 0

    # -- token helpers ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != EOF:
            self.index += 1
        return token

    def _accept_symbol(self, value: str) -> bool:
        if self.current.is_symbol(value):
            self._advance()
            return True
        return False

    def _expect_symbol(self, value: str) -> None:
        if not self._accept_symbol(value):
            raise self._error(f"expected {value!r}")

    def _error(self, message: str) -> XPathSyntaxError:
        return XPathSyntaxError(message, self.expression, self.current.position)

    # -- paths ---------------------------------------------------------------

    def parse_path(self) -> LocationPath:
        path = self._location_path()
        if self.current.kind != EOF:
            raise self._error(f"unexpected trailing input {self.current.value!r}")
        return path

    def _location_path(self) -> LocationPath:
        steps: list[Step] = []
        absolute = False
        if self.current.is_symbol("//"):
            # A leading // is an absolute descendant path.
            self._advance()
            absolute = True
            steps.append(Step(Axis.DESCENDANT_OR_SELF, "*"))
            steps.append(self._step())
        elif self._accept_symbol("/"):
            absolute = True
            if not self._step_starts_here():
                return LocationPath((), absolute=True)
            steps.append(self._step())
        else:
            steps.append(self._step())
        while True:
            if self._accept_symbol("//"):
                steps.append(Step(Axis.DESCENDANT_OR_SELF, "*"))
                steps.append(self._step())
            elif self._accept_symbol("/"):
                steps.append(self._step())
            else:
                break
        return LocationPath(tuple(steps), absolute=absolute)

    def _step_starts_here(self) -> bool:
        token = self.current
        if token.kind == NAME:
            # A bare name could be an operator keyword in expression context;
            # in path context it always starts a step.
            return True
        return token.kind == SYMBOL and token.value in (".", "..", "@", "*")

    def _step(self) -> Step:
        token = self.current
        if token.is_symbol("."):
            self._advance()
            return Step(Axis.SELF, "*", self._predicates())
        if token.is_symbol(".."):
            self._advance()
            return Step(Axis.PARENT, "*", self._predicates())
        if token.is_symbol("@"):
            self._advance()
            name = self._node_test()
            return Step(Axis.ATTRIBUTE, name, self._predicates())
        if token.kind == NAME and self.tokens[self.index + 1].is_symbol("::"):
            axis_name = token.value
            if axis_name not in _AXIS_NAMES:
                raise self._error(f"unknown axis {axis_name!r}")
            self._advance()
            self._advance()  # '::'
            # The paper writes "self::[@count>50]" — an axis with an omitted
            # node test; treat it as '*'.
            if self.current.is_symbol("["):
                node_test = "*"
            else:
                node_test = self._node_test()
            return Step(_AXIS_NAMES[axis_name], node_test, self._predicates())
        if token.kind == NAME or token.is_symbol("*"):
            name = self._node_test()
            return Step(Axis.CHILD, name, self._predicates())
        raise self._error(f"expected a location step, found {token.value!r}")

    def _node_test(self) -> str:
        token = self.current
        if token.kind == NAME:
            self._advance()
            return token.value
        if token.is_symbol("*"):
            self._advance()
            return "*"
        raise self._error(f"expected a name or '*', found {token.value!r}")

    def _predicates(self) -> tuple[Expr, ...]:
        predicates: list[Expr] = []
        while self._accept_symbol("["):
            predicates.append(self._expr())
            self._expect_symbol("]")
        return tuple(predicates)

    # -- expressions -----------------------------------------------------------

    def parse_expression(self) -> Expr:
        expr = self._expr()
        if self.current.kind != EOF:
            raise self._error(f"unexpected trailing input {self.current.value!r}")
        return expr

    def _expr(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        while self.current.is_name("or"):
            self._advance()
            right = self._and_expr()
            left = BinaryOp("or", left, right)
        return left

    def _and_expr(self) -> Expr:
        left = self._cmp_expr()
        while self.current.is_name("and"):
            self._advance()
            right = self._cmp_expr()
            left = BinaryOp("and", left, right)
        return left

    def _cmp_expr(self) -> Expr:
        left = self._add_expr()
        for op in _COMPARISON_OPS:
            if self.current.is_symbol(op):
                self._advance()
                right = self._add_expr()
                return BinaryOp(op, left, right)
        return left

    def _add_expr(self) -> Expr:
        left = self._primary()
        while self.current.kind == SYMBOL and self.current.value in ("+", "-"):
            op = self._advance().value
            right = self._primary()
            left = BinaryOp(op, left, right)
        return left

    def _primary(self) -> Expr:
        token = self.current
        if token.kind == STRING:
            self._advance()
            return Literal(token.value)
        if token.kind == NUMBER:
            self._advance()
            return NumberLiteral(float(token.value))
        if token.kind == VARIABLE:
            self._advance()
            return VariableRef(token.value)
        if token.is_symbol("("):
            self._advance()
            inner = self._expr()
            self._expect_symbol(")")
            return inner
        if token.kind == NAME and self.tokens[self.index + 1].is_symbol("("):
            name = token.value
            self._advance()
            self._advance()  # '('
            args: list[Expr] = []
            if not self.current.is_symbol(")"):
                args.append(self._expr())
                while self._accept_symbol(","):
                    args.append(self._expr())
            self._expect_symbol(")")
            return FunctionCall(name, tuple(args))
        if token.is_symbol("@"):
            self._advance()
            name = self._node_test()
            if self.current.is_symbol("[") or self.current.is_symbol("/"):
                raise self._error("attribute reference cannot continue as a path")
            return AttributeRef(name)
        if token.is_symbol(".") and not self._continues_as_path():
            self._advance()
            return ContextRef()
        if self._step_starts_here() or token.is_symbol("/") or token.is_symbol("//"):
            return PathExpr(self._location_path())
        raise self._error(f"expected an expression, found {token.value!r}")

    def _continues_as_path(self) -> bool:
        """Whether a '.' token begins a multi-step path like ``./a`` or ``.[p]``."""
        nxt = self.tokens[self.index + 1]
        return nxt.kind == SYMBOL and nxt.value in ("/", "//", "[")


def parse_path(expression: str) -> LocationPath:
    """Parse a location path (e.g. an ``apply-templates`` select)."""
    return _Parser(expression).parse_path()


def parse_expression(expression: str) -> Expr:
    """Parse a standalone expression (e.g. an ``xsl:if`` test)."""
    return _Parser(expression).parse_expression()


def parse_pattern(pattern: str):
    """Parse a match pattern. See :mod:`repro.xpath.patterns`."""
    # Imported here to avoid a circular import at module load.
    from repro.xpath.patterns import Pattern

    text = pattern.strip()
    if text == "/":
        return Pattern(LocationPath((), absolute=True), source=text)
    parser = _Parser(text)
    path = parser.parse_path()
    return Pattern(path, source=text)

"""XPath-subset substrate: parsing and evaluation of paths and patterns.

The dialect covers what the paper's ``XSLT_basic`` and its Section-5
extensions need:

* location paths over the ``child``, ``parent``, ``self``, ``attribute``
  and ``descendant-or-self`` (``//``) axes, with the usual abbreviations
  (``.``, ``..``, ``@name``),
* step predicates: attribute comparisons, path-existence tests, boolean
  connectives, ``not()``, literals, numbers, and variable references,
* match patterns (suffix semantics) with XSLT default priorities.

Instance-level evaluation runs over :mod:`repro.xmlcore` trees. The
schema-level (abstract) evaluation used by the composition algorithm lives
in :mod:`repro.core.abstract_eval` and reuses these ASTs.
"""

from repro.xpath.ast import (
    Axis,
    AttributeRef,
    BinaryOp,
    ContextRef,
    FunctionCall,
    LocationPath,
    Literal,
    NumberLiteral,
    PathExpr,
    Step,
    VariableRef,
)
from repro.xpath.parser import parse_expression, parse_path, parse_pattern
from repro.xpath.evaluator import XPathEvaluator, evaluate_path, evaluate_predicate
from repro.xpath.patterns import Pattern, default_priority, pattern_matches

__all__ = [
    "Axis",
    "AttributeRef",
    "BinaryOp",
    "ContextRef",
    "FunctionCall",
    "LocationPath",
    "Literal",
    "NumberLiteral",
    "PathExpr",
    "Step",
    "VariableRef",
    "parse_expression",
    "parse_path",
    "parse_pattern",
    "XPathEvaluator",
    "evaluate_path",
    "evaluate_predicate",
    "Pattern",
    "default_priority",
    "pattern_matches",
]

"""The publishing application behind the HTTP front end.

The HTTP layer speaks in names — ``POST /publish`` says ``"view":
"figure4"`` — while the serving stack speaks in object graphs
(:class:`~repro.xml.schema_tree.SchemaTreeQuery`, stylesheets,
policies). :class:`PublishingApp` is the binding between the two: a
registry of named (view, stylesheet) pairs over one database, the
backend serving them (a :class:`~repro.serving.server.ViewServer` or a
:class:`~repro.sharding.router.ShardRouter` fleet), and the
:class:`~repro.frontend.facade.AsyncViewServer` facade wrapping it.

:func:`build_hotel_app` assembles the paper's hotel workload —
Figure 1 publishing view, Figure 4/17 stylesheets — with the same
knobs ``serve-bench`` exposes (staleness, maintenance mode, resilience
policy, fault plan, shards), so the HTTP tier serves byte-identical
answers to the in-process paths the differential suite compares
against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ReproError
from repro.frontend.facade import AsyncViewServer
from repro.frontend.hedging import HedgePolicy
from repro.serving.server import PRIORITIES, PublishRequest, ViewServer

#: View registry names the HTTP API accepts (hotel workload).
VIEW_NAMES = ("figure1", "figure4", "figure17")


@dataclass(frozen=True)
class RegisteredView:
    """One named publishing entry: a view, optionally composed."""

    name: str
    view: object
    stylesheet: Optional[object]


class PublishingApp:
    """Named views + a serving backend + the async facade over it.

    The app owns whatever it was built from (database, tracker,
    backend) and tears it all down in :meth:`close`. ``request_for``
    is the only place HTTP parameters become a
    :class:`~repro.serving.server.PublishRequest`, so validation
    errors surface as :class:`~repro.errors.ReproError` (→ HTTP 400)
    before any serving work starts.
    """

    def __init__(
        self,
        registry: dict[str, RegisteredView],
        backend,
        database,
        hedge: Optional[HedgePolicy] = None,
        write_fn=None,
    ):
        if not registry:
            raise ReproError("app needs at least one registered view")
        self.registry = registry
        self.backend = backend
        self.database = database
        self.facade = AsyncViewServer(backend, hedge=hedge, own_backend=True)
        self._write_fn = write_fn
        self._writes_applied = 0
        self._closed = False

    def request_for(
        self,
        name: str,
        strategy: str = "nested-loop",
        priority: str = "interactive",
        bypass_cache: bool = False,
        label: str = "",
    ) -> PublishRequest:
        """Translate HTTP parameters into a validated request."""
        entry = self.registry.get(name)
        if entry is None:
            raise ReproError(
                f"unknown view {name!r}; have {sorted(self.registry)}"
            )
        if priority not in PRIORITIES:
            raise ReproError(
                f"unknown priority {priority!r}; have {list(PRIORITIES)}"
            )
        return PublishRequest(
            entry.view,
            entry.stylesheet,
            strategy=strategy,
            label=label or f"{name}/{strategy}",
            priority=priority,
            bypass_cache=bypass_cache,
        )

    def apply_write(self) -> int:
        """Apply one tracked workload write; returns writes so far.

        Backed by the write mix the app was built with (hotel writes
        for :func:`build_hotel_app`); lets the E19 harness and the
        ``/write`` test hook age cached results while serving.
        """
        if self._write_fn is None:
            raise ReproError("app was built without a write mix")
        self._write_fn(self._writes_applied)
        self._writes_applied += 1
        return self._writes_applied

    @property
    def writes_applied(self) -> int:
        """How many workload writes ``apply_write`` has run so far."""
        return self._writes_applied

    def view_names(self) -> list[str]:
        """The registered view names, sorted (the valid ``view`` values)."""
        return sorted(self.registry)

    async def close(self, drain_timeout: Optional[float] = 5.0) -> bool:
        """Drain the facade, close the backend and the database."""
        if self._closed:
            return True
        self._closed = True
        drained = await self.facade.close(drain_timeout)
        self.database.close()
        return drained


def build_hotel_app(
    scale: int = 1,
    workers: int = 4,
    staleness: Optional[str] = None,
    maintenance: str = "full",
    fragment_policy: str = "all",
    resilience=None,
    faults=None,
    hedge: Optional[HedgePolicy] = None,
    shards: int = 1,
    replicas: int = 0,
    replica_lag_ms: float = 0.0,
    fleet_faults=None,
    backend: Optional[str] = None,
) -> PublishingApp:
    """The paper's hotel workload as a servable application.

    Mirrors ``serve-bench`` construction: tracked writes and a result
    cache when ``staleness`` is set, a sharded fleet when ``shards > 1``
    or ``replicas > 0`` (fault plan armed on shard 0's primary only,
    replicas as the failover path), a single :class:`ViewServer`
    otherwise. ``backend`` picks the storage engine (``"sqlite"`` /
    ``"duckdb"``); on backends without write hooks, tracked writes are
    recorded explicitly instead of through auto capture.
    """
    from repro.maintenance import WriteTracker, hotel_write
    from repro.relational.driver import resolve_driver
    from repro.workloads.hotel import HotelDataSpec, build_hotel_database
    from repro.workloads.paper import (
        figure1_view,
        figure4_stylesheet,
        figure17_stylesheet,
    )

    driver = resolve_driver(backend)
    update_aware = staleness is not None
    sharded = shards > 1 or replicas > 0
    db = build_hotel_database(
        HotelDataSpec().scaled(scale), cross_thread=True, driver=driver
    )
    tracker = None
    auto_capture = driver.supports_auto_capture
    if update_aware and not sharded:
        tracker = WriteTracker()
        db.attach_tracker(tracker, auto=auto_capture)

    if sharded:
        from repro.sharding import ShardRouter
        from repro.workloads.hotel import hotel_partition_scheme

        server = ShardRouter.build(
            db.catalog,
            db,
            hotel_partition_scheme(),
            shards,
            replicas=replicas,
            workers=workers,
            staleness=staleness or "strict",
            maintenance=maintenance,
            fragment_policy=fragment_policy,
            resilience=resilience,
            faults=(
                [faults] + [None] * (shards - 1)
                if faults is not None
                else None
            ),
            fleet_faults=fleet_faults,
            replica_lag_ms=replica_lag_ms,
            keep_xml=True,  # the HTTP layer serves trace.xml
        )

        def write_fn(index: int) -> None:
            server.route_write(
                lambda source, shard_tracker: hotel_write(
                    source, index, tracker=shard_tracker
                )
            )

    else:
        server = ViewServer(
            db.catalog,
            source=db,
            workers=workers,
            keep_xml=True,  # the HTTP layer serves trace.xml
            tracker=tracker,
            staleness=staleness or "strict",
            maintenance=maintenance,
            fragment_policy=fragment_policy,
            resilience=resilience,
            faults=faults,
        )

        def write_fn(index: int) -> None:
            if auto_capture:
                hotel_write(db, index)  # auto capture records it
            else:
                hotel_write(db, index, tracker=tracker)

    view = figure1_view(db.catalog)
    registry = {
        "figure1": RegisteredView("figure1", view, None),
        "figure4": RegisteredView("figure4", view, figure4_stylesheet()),
        "figure17": RegisteredView("figure17", view, figure17_stylesheet()),
    }
    return PublishingApp(
        registry, server, db, hedge=hedge, write_fn=write_fn
    )

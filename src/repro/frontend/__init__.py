"""Async HTTP front end for the composed-view publishing stack.

This package is the network tier of the reproduction: everything
below it (:mod:`repro.serving`, :mod:`repro.sharding`,
:mod:`repro.resilience`) runs on worker threads; everything here runs
on one asyncio event loop and bridges between the two.

* :mod:`repro.frontend.facade` — :class:`AsyncViewServer`, awaitable
  requests over the thread pool with hedged-request racing and
  cooperative loser cancellation.
* :mod:`repro.frontend.hedging` — rolling per-plan p95 estimation,
  the hedge budget, and fire/win accounting.
* :mod:`repro.frontend.http` — the stdlib HTTP/1.1 server
  (``POST /publish``, ``GET /metrics``, ``GET /healthz``) with
  keep-alive and graceful drain.
* :mod:`repro.frontend.app` — the named-view registry binding HTTP
  parameters to publishing requests (:func:`build_hotel_app`).
* :mod:`repro.frontend.loadgen` — the real-socket async load
  generator behind ``python -m repro load-bench`` and experiment E19.
"""

from repro.frontend.app import (
    VIEW_NAMES,
    PublishingApp,
    RegisteredView,
    build_hotel_app,
)
from repro.frontend.facade import USABLE_OUTCOMES, AsyncViewServer
from repro.frontend.hedging import HedgeController, HedgePolicy, RollingLatency
from repro.frontend.http import (
    OUTCOME_STATUS,
    FrontendServer,
    serve_app,
)
from repro.frontend.loadgen import LoadClient, LoadMix, run_load

__all__ = [
    "AsyncViewServer",
    "FrontendServer",
    "HedgeController",
    "HedgePolicy",
    "LoadClient",
    "LoadMix",
    "OUTCOME_STATUS",
    "PublishingApp",
    "RegisteredView",
    "RollingLatency",
    "USABLE_OUTCOMES",
    "VIEW_NAMES",
    "build_hotel_app",
    "run_load",
    "serve_app",
]

"""Async load generator: real sockets against the HTTP front end.

Unlike ``serve-bench`` (which calls the server in-process), this
client exercises the whole front door — TCP connections, HTTP
parsing, keep-alive reuse, priority headers, hedging — the way a real
caller would. ``N`` concurrent connections each run a closed loop:
pick a view/strategy from the mix, pick a priority class by weight,
``POST /publish``, record (priority, outcome, status, latency), repeat
until the shared request budget runs out.

The report groups latency and availability **per priority class**
(the E19 gates: interactive availability under faults, interactive
p95 vs batch p95) using the canonical
:func:`~repro.harness.reporting.latency_summary_ms` shape.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.harness.reporting import latency_summary_ms
from repro.serving.server import PRIORITIES

#: Outcomes counted as "the caller got publishable bytes".
AVAILABLE_OUTCOMES = frozenset({"success", "degraded"})


@dataclass(frozen=True)
class LoadMix:
    """What the generated traffic looks like.

    ``views`` cycles per request (name, strategy); ``priority_weights``
    draws the class per request from a deterministic weighted wheel, so
    two runs with the same mix and budget issue the same sequence.
    """

    views: Sequence[tuple[str, str]] = (
        ("figure4", "nested-loop"),
        ("figure17", "nested-loop"),
    )
    priority_weights: dict = field(
        default_factory=lambda: {
            "interactive": 0.5,
            "batch": 0.3,
            "background": 0.2,
        }
    )
    #: Send ``bypass_cache`` on every publish — each request computes
    #: from live data, which gives latency experiments a real
    #: distribution instead of a wall of result-cache hits.
    bypass_cache: bool = False

    def __post_init__(self) -> None:
        if not self.views:
            raise ReproError("load mix needs at least one view")
        total = sum(self.priority_weights.values())
        if total <= 0:
            raise ReproError("priority weights must sum > 0")
        for priority in self.priority_weights:
            if priority not in PRIORITIES:
                raise ReproError(f"unknown priority {priority!r}")

    def plan(self, requests: int) -> list[tuple[str, str, str]]:
        """The deterministic (view, strategy, priority) schedule.

        Priorities are spread by largest-remainder over the weights, so
        every prefix of the schedule approximates the mix — important
        because overload runs may not finish the whole budget.
        """
        weights = {
            p: w for p, w in self.priority_weights.items() if w > 0
        }
        total = sum(weights.values())
        credits = {p: 0.0 for p in weights}
        schedule = []
        for index in range(requests):
            for p, w in weights.items():
                credits[p] += w / total
            priority = max(credits, key=lambda p: (credits[p], p))
            credits[priority] -= 1.0
            view, strategy = self.views[index % len(self.views)]
            schedule.append((view, strategy, priority))
        return schedule


@dataclass
class LoadSample:
    """One request's observation."""

    priority: str
    outcome: str
    status: int
    latency_ms: float
    body_bytes: int


class LoadClient:
    """One keep-alive connection worker draining a shared schedule."""

    def __init__(self, host: str, port: int, name: str):
        self.host = host
        self.port = port
        self.name = name
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        self.reader, self.writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        """Close the connection, swallowing teardown races."""
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self.reader = self.writer = None

    async def publish(
        self,
        view: str,
        strategy: str,
        priority: str,
        bypass_cache: bool = False,
    ) -> LoadSample:
        """POST /publish once, reconnecting if the connection dropped."""
        if self.writer is None:
            await self._connect()
        body = json.dumps(
            {
                "view": view,
                "strategy": strategy,
                "priority": priority,
                "bypass_cache": bypass_cache,
                "label": f"{self.name}:{view}/{strategy}",
            }
        ).encode("utf-8")
        head = (
            f"POST /publish HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"\r\n"
        ).encode("latin-1")
        started = time.perf_counter()
        self.writer.write(head + body)
        await self.writer.drain()
        status, headers, payload = await self._read_response()
        latency_ms = (time.perf_counter() - started) * 1000.0
        return LoadSample(
            priority=priority,
            outcome=headers.get("x-repro-outcome", f"http-{status}"),
            status=status,
            latency_ms=latency_ms,
            body_bytes=len(payload),
        )

    async def _read_response(self) -> tuple[int, dict[str, str], bytes]:
        head = await self.reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ")[1])
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        payload = await self.reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return status, headers, payload


async def run_load(
    host: str,
    port: int,
    requests: int,
    connections: int,
    mix: Optional[LoadMix] = None,
) -> dict:
    """Drive the front end and report per-priority latency/availability.

    ``connections`` workers share one deterministic schedule (see
    :meth:`LoadMix.plan`); the report carries wall-clock throughput,
    the canonical p50/p95/p99 block overall and per class, outcome
    histograms, and error counts — the raw material of BENCH_e19.
    """
    mix = mix or LoadMix()
    schedule = mix.plan(requests)
    queue: asyncio.Queue = asyncio.Queue()
    for item in schedule:
        queue.put_nowait(item)
    samples: list[LoadSample] = []
    transport_errors = [0]

    async def worker(index: int) -> None:
        client = LoadClient(host, port, f"conn{index}")
        try:
            while True:
                try:
                    view, strategy, priority = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                try:
                    samples.append(
                        await client.publish(
                            view, strategy, priority,
                            bypass_cache=mix.bypass_cache,
                        )
                    )
                except (ConnectionError, asyncio.IncompleteReadError, OSError):
                    transport_errors[0] += 1
                    await client.close()
        finally:
            await client.close()

    started = time.perf_counter()
    await asyncio.gather(*(worker(i) for i in range(max(1, connections))))
    wall_seconds = time.perf_counter() - started

    def summarize(rows: list[LoadSample]) -> dict:
        outcomes: dict[str, int] = {}
        for sample in rows:
            outcomes[sample.outcome] = outcomes.get(sample.outcome, 0) + 1
        got_bytes = sum(
            1 for s in rows if s.outcome in AVAILABLE_OUTCOMES
        )
        return {
            "latency": latency_summary_ms([s.latency_ms for s in rows]),
            "outcomes": outcomes,
            "availability": (
                round(got_bytes / len(rows), 6) if rows else 0.0
            ),
        }

    per_priority = {
        priority: summarize(
            [s for s in samples if s.priority == priority]
        )
        for priority in PRIORITIES
    }
    return {
        "requests": requests,
        "completed": len(samples),
        "connections": connections,
        "wall_seconds": round(wall_seconds, 6),
        "throughput_rps": (
            round(len(samples) / wall_seconds, 4) if wall_seconds > 0 else 0.0
        ),
        "transport_errors": transport_errors[0],
        "overall": summarize(samples),
        "priority": per_priority,
    }

"""Hedged requests: fire a second attempt when the first runs long.

The tail-latency trick from "The Tail at Scale": instead of waiting a
slow attempt out to its deadline, fire one duplicate once the attempt
exceeds the *expected* slow threshold — a rolling per-plan p95 latency
estimate — and serve whichever response lands first, cancelling the
loser through the serving layer's :class:`~repro.resilience.policy.
CancelToken` machinery. Hedging converts the latency tail (an injected
fault, a lock stall, an unlucky scheduling hole) into roughly the
median, at the cost of a bounded amount of duplicate work.

Two safety rails keep hedges from amplifying overload:

* **budget** — :meth:`HedgeController.try_fire` admits a hedge only
  while fired hedges stay under ``budget_fraction`` of observed
  requests
  (a global cap, not per-plan: correlated slowness across plans is
  exactly the overload case hedging must not feed).
* **evidence** — no hedge fires until the plan's rolling window holds
  ``min_samples`` latencies; an estimator with no evidence returns no
  threshold, and the attempt simply runs to completion.

Everything here is thread-safe but loop-agnostic: the asyncio facade
(:mod:`repro.frontend.facade`) owns the timers; this module owns the
numbers.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.errors import ReproError
from repro.harness.reporting import percentile


@dataclass(frozen=True)
class HedgePolicy:
    """Knobs for the hedging layer (immutable).

    ``threshold_percentile`` is the rolling-latency quantile an attempt
    must exceed before its hedge fires; ``delay_floor_ms`` keeps hedges
    from firing on plans whose p95 is microscopic (a result-cache hit
    storm would otherwise hedge every recompute); ``budget_fraction``
    caps fired hedges as a fraction of requests seen.
    """

    threshold_percentile: float = 95.0
    min_samples: int = 16
    window: int = 128
    delay_floor_ms: float = 1.0
    delay_cap_ms: float = 1000.0
    budget_fraction: float = 0.1
    #: Headroom over the rolling percentile before the hedge fires.
    #: At 1.0 roughly the top (100 - q)% of *clean* requests hedge too
    #: — duplicate work bought for nothing; at ~2.0 only genuinely
    #: stalled requests (an injected fault, a lock stall) cross the
    #: line, so the budget is spent where a hedge can actually win.
    delay_multiplier: float = 1.0
    #: Priority classes whose requests may hedge. Restricting to
    #: ``("interactive",)`` spends the whole duplicate-work budget on
    #: the latency-sensitive class — batch/background keep the raw
    #: tail, interactive buys out of it.
    priorities: tuple = ("interactive", "batch", "background")

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold_percentile <= 100.0:
            raise ReproError(
                f"threshold_percentile must be in (0, 100], "
                f"got {self.threshold_percentile}"
            )
        if self.min_samples < 1:
            raise ReproError(
                f"min_samples must be >= 1, got {self.min_samples}"
            )
        if self.window < self.min_samples:
            raise ReproError(
                f"window ({self.window}) must be >= min_samples "
                f"({self.min_samples})"
            )
        if self.delay_floor_ms < 0 or self.delay_cap_ms <= 0:
            raise ReproError("hedge delay bounds must be positive")
        if self.delay_multiplier <= 0:
            raise ReproError(
                f"delay_multiplier must be > 0, got {self.delay_multiplier}"
            )
        if not 0.0 <= self.budget_fraction <= 1.0:
            raise ReproError(
                f"budget_fraction must be in [0, 1], "
                f"got {self.budget_fraction}"
            )
        if not self.priorities:
            raise ReproError("hedging needs at least one priority class")
        for priority in self.priorities:
            if priority not in ("interactive", "batch", "background"):
                raise ReproError(f"unknown hedge priority {priority!r}")

    def describe(self) -> str:
        """Compact text form for metrics and reports."""
        return (
            f"p{self.threshold_percentile:g}/{self.min_samples}s "
            f"floor={self.delay_floor_ms:g}ms "
            f"budget={self.budget_fraction:g}"
        )


class RollingLatency:
    """A bounded window of latency samples with percentile estimates."""

    __slots__ = ("_samples", "_lock")

    def __init__(self, window: int):
        self._samples: deque[float] = deque(maxlen=window)
        self._lock = threading.Lock()

    def record(self, latency_ms: float) -> None:
        """Add one completed-request latency to the window."""
        with self._lock:
            self._samples.append(latency_ms)

    def __len__(self) -> int:
        return len(self._samples)

    def estimate(self, q: float, min_samples: int) -> Optional[float]:
        """The ``q``-th percentile, or ``None`` below ``min_samples``."""
        with self._lock:
            if len(self._samples) < min_samples:
                return None
            return percentile(list(self._samples), q)


class HedgeController:
    """Per-server hedging state: estimators, budget, and counters.

    The facade asks :meth:`delay_ms` how long to wait before hedging a
    request for ``key`` (``None`` = never), then reports what happened
    through :meth:`try_fire` / :meth:`record_won` /
    :meth:`record_latency`, which feed both the budget and the metrics
    the E19 harness gates on (fire rate, win rate).
    """

    def __init__(self, policy: HedgePolicy):
        self.policy = policy
        self._lock = threading.Lock()
        self._estimators: dict[str, RollingLatency] = {}
        self.requests_seen = 0
        self.hedges_fired = 0
        self.hedges_won = 0
        self.hedges_cancelled = 0
        self.hedge_reap_errors = 0
        self.budget_denials = 0
        self.no_estimate = 0

    def _estimator(self, key: str) -> RollingLatency:
        with self._lock:
            estimator = self._estimators.get(key)
            if estimator is None:
                estimator = self._estimators[key] = RollingLatency(
                    self.policy.window
                )
            return estimator

    # -- the facade's request path ------------------------------------------

    def delay_ms(self, key: str) -> Optional[float]:
        """How long to wait on the primary before hedging ``key``.

        ``None`` when the plan's window lacks ``min_samples`` — no
        evidence, no hedge. The estimate is clamped to
        ``[delay_floor_ms, delay_cap_ms]``. Counts the request as seen
        (the budget denominator). The budget itself is *not* checked
        here: most requests finish inside the delay and never consume
        budget, so charging (or denying) them up front would starve the
        stalled requests the budget exists for — :meth:`try_fire`
        settles it atomically at fire time.
        """
        policy = self.policy
        with self._lock:
            self.requests_seen += 1
        estimate = self._estimator(key).estimate(
            policy.threshold_percentile, policy.min_samples
        )
        if estimate is None:
            with self._lock:
                self.no_estimate += 1
            return None
        return min(
            policy.delay_cap_ms,
            max(policy.delay_floor_ms, estimate * policy.delay_multiplier),
        )

    def try_fire(self) -> bool:
        """Atomically claim hedge budget for one attempt.

        True = the hedge may launch (and is counted as fired). The
        check-and-increment is one critical section, so concurrent
        requests cannot both squeeze through the last budget slot.
        """
        policy = self.policy
        with self._lock:
            if (
                self.hedges_fired + 1
                > policy.budget_fraction * self.requests_seen
            ):
                self.budget_denials += 1
                return False
            self.hedges_fired += 1
            return True

    def record_latency(self, key: str, latency_ms: float) -> None:
        """Feed a completed request's latency into ``key``'s window."""
        self._estimator(key).record(latency_ms)

    def record_won(self) -> None:
        """The hedge attempt finished first (and usably)."""
        with self._lock:
            self.hedges_won += 1

    def record_cancelled(self) -> None:
        """A losing attempt was cancelled after the winner returned."""
        with self._lock:
            self.hedges_cancelled += 1

    def record_reap_error(self) -> None:
        """Reaping a cancelled loser raised instead of resolving.

        A healthy loser resolves to a trace with ``outcome="cancelled"``
        — an *exception* out of the reap means the cancellation path
        itself is broken (a leaked future, a backend that raised from
        ``submit``). Surfaced as a counter (asserted 0 by the E19 smoke
        gate) instead of being swallowed silently.
        """
        with self._lock:
            self.hedge_reap_errors += 1

    # -- reporting -----------------------------------------------------------

    def stats(self) -> dict:
        """Counters plus derived fire/win rates for metrics and E19."""
        with self._lock:
            seen = self.requests_seen
            fired = self.hedges_fired
            won = self.hedges_won
            return {
                "policy": self.policy.describe(),
                "requests_seen": seen,
                "fired": fired,
                "won": won,
                "cancelled": self.hedges_cancelled,
                "reap_errors": self.hedge_reap_errors,
                "budget_denials": self.budget_denials,
                "no_estimate": self.no_estimate,
                "fire_rate": round(fired / seen, 6) if seen else 0.0,
                "win_rate": round(won / fired, 6) if fired else 0.0,
                "tracked_plans": len(self._estimators),
            }

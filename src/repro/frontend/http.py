"""Stdlib asyncio HTTP/1.1 server for the publishing front end.

No web framework — a hand-rolled request loop over
:func:`asyncio.start_server` streams, because the protocol surface is
three routes and the interesting parts (hedging, priority admission,
cancellation) live below HTTP anyway:

* ``POST /publish`` — JSON body ``{"view": "figure4", "strategy":
  "nested-loop", "priority": "interactive", "bypass_cache": false}``;
  answers the published XML with the serving verdict in
  ``X-Repro-*`` headers. Outcomes map onto status codes: success and
  degraded are ``200`` (degraded is still bytes — the resilience
  contract — flagged by ``X-Repro-Outcome``), shed admission is
  ``503``, a blown deadline ``504``, cancellation ``499``, everything
  else ``500``.
* ``GET /metrics`` — the facade's merged metrics JSON (backend
  counters + hedging section).
* ``GET /healthz`` — liveness plus drain state.
* ``POST /write`` — test/harness hook applying one workload write.

Connections are keep-alive by default (HTTP/1.1 semantics;
``Connection: close`` honored). :meth:`FrontendServer.drain` makes
shutdown graceful: the listener stops accepting, parked keep-alive
connections are told ``503 draining`` + close on their next request,
and in-flight work is awaited before sockets die.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.errors import ReproError
from repro.frontend.app import PublishingApp

#: Serving outcome -> HTTP status. Degraded stays 200: stale bytes are
#: the resilience contract's answer, not an error (the header tells).
OUTCOME_STATUS = {
    "success": 200,
    "degraded": 200,
    "rejected": 503,
    "deadline": 504,
    "cancelled": 499,
    "error": 500,
}

REASONS = {
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    499: "Client Closed Request",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 1 * 1024 * 1024


class HttpError(Exception):
    """A protocol-level failure answered with its status code."""

    def __init__(self, status: int, detail: str):
        super().__init__(detail)
        self.status = status
        self.detail = detail


class Request:
    """One parsed HTTP request (method, path, headers, body)."""

    __slots__ = ("method", "path", "headers", "body")

    def __init__(
        self, method: str, path: str, headers: dict[str, str], body: bytes
    ):
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body

    @property
    def wants_close(self) -> bool:
        return self.headers.get("connection", "").lower() == "close"

    def json(self) -> dict:
        """The body parsed as a JSON object (400 on anything else)."""
        if not self.body:
            return {}
        try:
            parsed = json.loads(self.body)
        except ValueError as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(parsed, dict):
            raise HttpError(400, "JSON body must be an object")
        return parsed


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean connection close between requests
        raise HttpError(400, "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(413, "request head too large") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "request head too large")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, path, _version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise HttpError(400, "bad Content-Length") from exc
        if length < 0 or length > MAX_BODY_BYTES:
            raise HttpError(413, f"body of {length} bytes refused")
        body = await reader.readexactly(length)
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked bodies not supported")
    return Request(method, path, headers, body)


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra: Optional[dict[str, str]] = None,
    close: bool = False,
) -> bytes:
    """Serialize one HTTP/1.1 response, headers and all."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'close' if close else 'keep-alive'}",
    ]
    for name, value in (extra or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def _json_body(payload: dict) -> bytes:
    return json.dumps(payload).encode("utf-8")


class FrontendServer:
    """The asyncio listener wiring HTTP onto a :class:`PublishingApp`."""

    def __init__(self, app: PublishingApp, host: str = "127.0.0.1", port: int = 0):
        self.app = app
        self.host = host
        self.port = port
        self._server: Optional[asyncio.Server] = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._draining = False
        self.requests_handled = 0
        self.protocol_errors = 0

    async def start(self) -> "FrontendServer":
        """Bind and start accepting; resolves the final port."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=MAX_HEADER_BYTES + MAX_BODY_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def open_connections(self) -> int:
        return len(self._connections)

    # -- connection loop -----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    self.protocol_errors += 1
                    writer.write(
                        render_response(
                            exc.status,
                            _json_body({"error": exc.detail}),
                            close=True,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                if self._draining:
                    # Parked keep-alive connection waking up mid-drain:
                    # refuse and close so the socket count reaches zero.
                    writer.write(
                        render_response(
                            503,
                            _json_body({"error": "server draining"}),
                            close=True,
                        )
                    )
                    await writer.drain()
                    break
                close = request.wants_close
                response = await self._dispatch(request)
                self.requests_handled += 1
                if close:
                    # Honor the client's Connection: close in our headers
                    # (first occurrence is ours, before the body).
                    response = response.replace(
                        b"Connection: keep-alive", b"Connection: close", 1
                    )
                writer.write(response)
                await writer.drain()
                if close:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- routing -------------------------------------------------------------

    async def _dispatch(self, request: Request) -> bytes:
        route = (request.method, request.path)
        try:
            if route == ("POST", "/publish"):
                return await self._publish(request)
            if route == ("GET", "/metrics"):
                return render_response(200, _json_body(self.app.facade.metrics()))
            if route == ("GET", "/healthz"):
                return render_response(
                    200,
                    _json_body(
                        {
                            "status": "draining" if self._draining else "ok",
                            "inflight": self.app.facade.inflight,
                            "connections": len(self._connections),
                        }
                    ),
                )
            if route == ("POST", "/write"):
                return render_response(
                    200, _json_body({"writes_applied": self.app.apply_write()})
                )
            if request.path in ("/publish", "/metrics", "/healthz", "/write"):
                raise HttpError(405, f"{request.method} not allowed here")
            raise HttpError(404, f"no route {request.path}")
        except HttpError as exc:
            return render_response(
                exc.status, _json_body({"error": exc.detail})
            )
        except ReproError as exc:
            return render_response(400, _json_body({"error": str(exc)}))
        except Exception as exc:  # serving bug: answer, don't kill the loop
            return render_response(
                500, _json_body({"error": f"{type(exc).__name__}: {exc}"})
            )

    async def _publish(self, request: Request) -> bytes:
        params = request.json()
        name = params.get("view")
        if not isinstance(name, str):
            raise HttpError(400, 'body must name a "view"')
        publish = self.app.request_for(
            name,
            strategy=params.get("strategy", "nested-loop"),
            priority=params.get("priority", "interactive"),
            bypass_cache=bool(params.get("bypass_cache", False)),
            label=str(params.get("label", "")),
        )
        trace = await self.app.facade.submit(publish)
        status = OUTCOME_STATUS.get(trace.outcome, 500)
        headers = {
            "X-Repro-Outcome": trace.outcome,
            "X-Repro-Freshness": trace.freshness,
            "X-Repro-Priority": getattr(trace, "priority", publish.priority),
            "X-Repro-Version-Lag": str(trace.version_lag),
            "X-Repro-Strategy": trace.strategy,
        }
        if trace.outcome in ("success", "degraded") and trace.xml is not None:
            return render_response(
                status,
                trace.xml.encode("utf-8"),
                content_type="application/xml",
                extra=headers,
            )
        detail = trace.error or f"request ended {trace.outcome}"
        return render_response(
            status, _json_body({"error": detail}), extra=headers
        )

    # -- lifecycle -----------------------------------------------------------

    async def drain(self, timeout: Optional[float] = 5.0) -> bool:
        """Graceful shutdown: stop accepting, finish in-flight, close.

        Returns True when every in-flight request completed inside
        ``timeout``; parked keep-alive sockets are answered ``503`` +
        close if they speak during the drain, and force-closed after
        the in-flight work settles either way.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        drained = await self.app.facade.drain(timeout)
        for writer in list(self._connections):
            writer.close()
        return drained

    async def close(self, timeout: Optional[float] = 5.0) -> bool:
        """Drain, then shut the app (facade, backend, database) down."""
        drained = await self.drain(timeout)
        await self.app.close(timeout)
        return drained


async def serve_app(
    app: PublishingApp, host: str = "127.0.0.1", port: int = 0
) -> FrontendServer:
    """Start a :class:`FrontendServer` for ``app`` and return it."""
    return await FrontendServer(app, host, port).start()

"""Asyncio facade over the thread-pool serving stack.

:class:`AsyncViewServer` adapts a :class:`~repro.serving.server.
ViewServer` (or a :class:`~repro.sharding.router.ShardRouter` — any
backend whose ``submit`` returns a ``concurrent.futures.Future``) to
an event loop: ``await facade.submit(request)`` bridges the worker
pool's future through :func:`asyncio.wrap_future`, so one loop thread
can keep thousands of connections open while the pool does the
publishing work.

The facade is also where **hedging** happens, because only a layer
that sees the whole request lifetime can race two attempts. The flow
per request:

1. Ask the :class:`~repro.frontend.hedging.HedgeController` for this
   plan's hedge delay (rolling percentile; ``None`` while evidence is
   lacking).
2. Launch the primary attempt with a fresh
   :class:`~repro.resilience.policy.CancelToken`.
3. If the primary is still running past the delay, claim hedge budget
   (``try_fire``; an exhausted budget rides the primary out), launch
   one hedge attempt (its own token) and wait ``FIRST_COMPLETED``.
4. First *usable* outcome (``success``/``degraded``) wins; the loser's
   token is cancelled — the serving layer resolves it as
   ``outcome="cancelled"`` (no breaker hit, no degraded fallback) —
   and its task is awaited so nothing leaks.

Cancellation is cooperative end to end: the same token plumbing lets
the HTTP layer abandon work for a vanished client.
"""

from __future__ import annotations

import asyncio
import dataclasses
from typing import Optional, Union

from repro.frontend.hedging import HedgeController, HedgePolicy
from repro.resilience import CancelToken
from repro.serving.server import PublishRequest, RequestTrace, ViewServer
from repro.sharding.router import RouterTrace, ShardRouter

#: Outcomes a hedged race accepts as a win; anything else makes the
#: racer wait for (or fall back to) the other attempt.
USABLE_OUTCOMES = frozenset({"success", "degraded"})


class AsyncViewServer:
    """Event-loop adapter (plus hedging) for a publishing backend.

    ``backend`` is a started :class:`ViewServer` or
    :class:`ShardRouter`; the facade does not own it unless
    ``own_backend=True`` (then :meth:`close` shuts it down). Pass a
    :class:`HedgePolicy` to enable hedged requests; ``hedge=None``
    serves every request as a single attempt.
    """

    def __init__(
        self,
        backend: Union[ViewServer, ShardRouter],
        hedge: Optional[HedgePolicy] = None,
        own_backend: bool = False,
    ):
        self.backend = backend
        self.own_backend = own_backend
        self.hedges = HedgeController(hedge) if hedge is not None else None
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._reapers: set[asyncio.Task] = set()
        self._closed = False

    # -- bookkeeping ---------------------------------------------------------

    def _enter(self) -> None:
        if self._closed:
            raise RuntimeError("async facade is closed")
        self._inflight += 1
        self._idle.clear()

    def _leave(self) -> None:
        self._inflight -= 1
        if self._inflight == 0:
            self._idle.set()

    @property
    def inflight(self) -> int:
        """Facade-level requests currently awaited (hedges excluded)."""
        return self._inflight

    def hedge_key(self, request: PublishRequest) -> str:
        """The rolling-latency bucket for ``request``.

        Single-box backends bucket by compiled-plan key (content
        fingerprint), so latency estimates never mix distinct plans;
        the router lacks a plan cache at its layer, so its requests
        bucket by (label, strategy).
        """
        if isinstance(self.backend, ViewServer):
            return self.backend.plan_key_for(request)
        return f"{request.label}|{request.strategy}"

    # -- the request path ----------------------------------------------------

    async def submit(
        self, request: PublishRequest
    ) -> Union[RequestTrace, RouterTrace]:
        """Serve one request, hedging it if the rolling p95 says to."""
        self._enter()
        try:
            if self.hedges is None:
                return await self._attempt(request)
            if request.priority not in self.hedges.policy.priorities:
                # Not hedge-eligible, but its latency still teaches the
                # rolling estimator about this plan.
                trace = await self._attempt(request)
                self.hedges.record_latency(
                    self.hedge_key(request), trace.total_seconds * 1000.0
                )
                return trace
            return await self._submit_hedged(request)
        finally:
            self._leave()

    async def _attempt(
        self, request: PublishRequest, token: Optional[CancelToken] = None
    ) -> Union[RequestTrace, RouterTrace]:
        if token is not None or request.cancel is None:
            request = dataclasses.replace(
                request, cancel=token if token is not None else CancelToken()
            )
        return await asyncio.wrap_future(self.backend.submit(request))

    async def _submit_hedged(
        self, request: PublishRequest
    ) -> Union[RequestTrace, RouterTrace]:
        controller = self.hedges
        key = self.hedge_key(request)
        delay_ms = controller.delay_ms(key)

        if isinstance(self.backend, ShardRouter) and request.placement is None:
            # Replica anti-affinity: both attempts share one placement
            # group, so if the hedge fires the router can route it to a
            # member the primary attempt did not use.
            from repro.sharding.replica import PlacementGroup

            request = dataclasses.replace(request, placement=PlacementGroup())

        primary_token = CancelToken()
        primary = asyncio.ensure_future(self._attempt(request, primary_token))
        if delay_ms is None:
            trace = await primary
            controller.record_latency(key, trace.total_seconds * 1000.0)
            return trace

        done, _ = await asyncio.wait({primary}, timeout=delay_ms / 1000.0)
        if done:
            trace = primary.result()
            controller.record_latency(key, trace.total_seconds * 1000.0)
            return trace

        if not controller.try_fire():
            # Past the delay but out of budget: ride the primary out.
            trace = await primary
            controller.record_latency(key, trace.total_seconds * 1000.0)
            return trace
        hedge_token = CancelToken()
        hedge = asyncio.ensure_future(self._attempt(request, hedge_token))
        contenders = {primary: primary_token, hedge: hedge_token}

        winner: Optional[asyncio.Task] = None
        pending = set(contenders)
        while pending:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            usable = [
                task
                for task in done
                if task.exception() is None
                and task.result().outcome in USABLE_OUTCOMES
            ]
            if usable:
                # Deterministic preference: the primary, if both landed
                # in the same wait round.
                winner = primary if primary in usable else usable[0]
                break
        if winner is None:
            # Neither attempt produced usable bytes; report the primary
            # attempt's trace (or its exception) as the request's fate.
            return primary.result()

        trace = winner.result()
        controller.record_latency(key, trace.total_seconds * 1000.0)
        if winner is hedge:
            controller.record_won()
        loser = hedge if winner is primary else primary
        if not loser.done():
            contenders[loser].cancel("hedge race lost")
            controller.record_cancelled()
        # Reap the loser in the background: the winner's response must
        # not wait for it (the loser may be mid-stall — exactly why it
        # lost — and only observes its token at the next query
        # boundary). drain()/close() settle outstanding reapers.
        reaper = asyncio.ensure_future(self._reap(loser))
        self._reapers.add(reaper)
        reaper.add_done_callback(self._reapers.discard)
        return trace

    async def _reap(self, loser: asyncio.Task) -> None:
        try:
            await loser
        except asyncio.CancelledError:
            # CancelledError is a BaseException: without this clause an
            # asyncio-level cancel of the loser (event-loop shutdown, an
            # external task.cancel) would escape the reaper uncounted. A
            # healthy loser resolves as a cancelled *trace* through its
            # CancelToken, never this path. The same exception surfaces
            # when the *reaper* is the one being cancelled — re-raise so
            # its own cancellation propagates; otherwise it was the
            # loser, so count it like any other broken cancellation.
            current = asyncio.current_task()
            if current is not None and getattr(
                current, "cancelling", lambda: 0
            )():
                raise
            if self.hedges is not None:
                self.hedges.record_reap_error()
        except Exception:
            # The loser's fate is not the request's fate — but a healthy
            # loser resolves as a cancelled trace, so an exception here
            # means the cancellation path broke. Count it (the E19 gate
            # asserts 0) instead of swallowing it silently.
            if self.hedges is not None:
                self.hedges.record_reap_error()

    # -- lifecycle and reporting ---------------------------------------------

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for in-flight requests (and hedge-loser reapers) to
        finish; False on timeout."""

        async def settle() -> None:
            await self._idle.wait()
            while self._reapers:
                await asyncio.gather(
                    *list(self._reapers), return_exceptions=True
                )

        try:
            await asyncio.wait_for(settle(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    async def close(self, drain_timeout: Optional[float] = 5.0) -> bool:
        """Stop accepting, drain, and (if owned) close the backend."""
        if self._closed:
            return True
        self._closed = True
        drained = await self.drain(drain_timeout)
        if self.own_backend:
            await asyncio.get_running_loop().run_in_executor(
                None, self.backend.close
            )
        return drained

    def metrics(self) -> dict:
        """Backend metrics plus the facade's hedging section."""
        if isinstance(self.backend, ShardRouter):
            report = self.backend.aggregate_metrics()
        else:
            report = self.backend.metrics()
        report["hedging"] = (
            self.hedges.stats() if self.hedges is not None else None
        )
        report["frontend_inflight"] = self._inflight
        return report

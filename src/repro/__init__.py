"""repro — Composing XSL Transformations with XML Publishing Views.

A reproduction of Li, Bohannon, Korth & Narayan (SIGMOD 2003). The
top-level namespace re-exports the objects a typical application needs;
see the package docs (README.md) for the architecture.

Typical use:

.. code-block:: python

    from repro import Catalog, Database, ViewBuilder, compose, parse_stylesheet

    view = ...          # build a publishing view over a Catalog
    x = parse_stylesheet(...)
    v_prime = compose(view, x, catalog)      # the stylesheet view
    doc = materialize(v_prime, db)           # == x(v(I)), straight from SQL
"""

from repro.core.compose import compose, compose_basic
from repro.core.hybrid import HybridExecutor, HybridPlan
from repro.errors import (
    CompositionError,
    ReproError,
    UnsupportedFeatureError,
)
from repro.relational.engine import Database
from repro.relational.schema import Catalog, Column, Table, table
from repro.schema_tree.builder import ViewBuilder
from repro.schema_tree.evaluator import ViewEvaluator, materialize
from repro.schema_tree.model import SchemaNode, SchemaTreeQuery
from repro.xmlcore.canonical import canonical_form, documents_equal
from repro.xmlcore.parser import parse_document
from repro.xmlcore.serializer import serialize, serialize_pretty
from repro.xslt.parser import parse_stylesheet
from repro.xslt.processor import XSLTProcessor, apply_stylesheet

__version__ = "1.0.0"

__all__ = [
    "compose",
    "compose_basic",
    "HybridExecutor",
    "HybridPlan",
    "CompositionError",
    "ReproError",
    "UnsupportedFeatureError",
    "Database",
    "Catalog",
    "Column",
    "Table",
    "table",
    "ViewBuilder",
    "ViewEvaluator",
    "materialize",
    "SchemaNode",
    "SchemaTreeQuery",
    "canonical_form",
    "documents_equal",
    "parse_document",
    "serialize",
    "serialize_pretty",
    "parse_stylesheet",
    "XSLTProcessor",
    "apply_stylesheet",
    "__version__",
]

"""LRU cache of compiled publishing plans.

A *compiled plan* is everything request execution needs that does not
depend on the data: the composed-and-pruned stylesheet view and the
printed parameterized SQL of every tag query. Compiling one (compose +
prune + print) costs orders of magnitude more than executing the view's
handful of queries at serving scale, so the
:class:`~repro.serving.server.ViewServer` keys plans by content
fingerprint (:mod:`repro.serving.fingerprint`) and reuses them across
requests and worker threads.

Concurrency: all bookkeeping happens under one internal lock, and
compilation is **single-flight** — when N threads miss on the same key
simultaneously, exactly one compiles (one recorded miss) while the rest
wait on the in-flight build and are then served the cached plan (N-1
recorded hits). Counters are therefore exact even under contention,
which the 16-thread hammer test relies on.

Plans themselves are shared read-only between threads: evaluators clone
tag queries before rewriting them, so a cached view is never mutated by
execution.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.schema_tree.model import SchemaTreeQuery


@dataclass
class CompiledPlan:
    """One cached compilation result (immutable once published)."""

    #: The content fingerprint the plan is cached under.
    key: str
    #: The composed (and possibly pruned) schema-tree view to execute.
    view: SchemaTreeQuery
    #: Printed parameterized SQL per query-bearing node: ``{node_id: sql}``.
    node_sql: dict[int, str] = field(default_factory=dict)
    #: Wall-clock seconds the compile (compose + prune + print) took.
    compose_seconds: float = 0.0
    #: Dead columns removed by pruning (0 when pruning was off).
    pruned_columns: int = 0
    #: Base tables the view's tag queries read (sorted; subqueries
    #: included — see :func:`repro.serving.fingerprint.view_read_set`).
    #: Drives table-based invalidation and the maintenance layer's
    #: result-freshness checks.
    tables: tuple[str, ...] = ()
    #: Per-schema-node read sets: ``{node_id: (base tables its tag query
    #: references)}`` (see :func:`repro.serving.fingerprint.node_read_sets`).
    #: Their union equals ``tables``; incremental maintenance intersects
    #: each entry with the tracker's dirty tables to re-execute only the
    #: affected schema nodes.
    node_read_sets: dict[int, tuple[str, ...]] = field(default_factory=dict)
    #: Nearest query-bearing ancestor per query-bearing node (``None``
    #: for top-level nodes — see
    #: :func:`repro.serving.fingerprint.node_parents`). The fragment
    #: pinning policy walks this hierarchy: a parent's byte span covers
    #: every descendant span.
    node_parents: dict[int, Optional[int]] = field(default_factory=dict)


class PlanCache:
    """Thread-safe LRU cache from content fingerprints to compiled plans.

    ``capacity`` bounds the number of resident plans; inserting past it
    evicts the least-recently-used entry (both :meth:`get` hits and
    :meth:`put` refresh recency). ``hits`` / ``misses`` / ``evictions``
    count exactly, including under concurrent :meth:`get_or_build` calls
    (single-flight compilation, see the module docstring).
    """

    def __init__(self, capacity: int = 64, breaker=None):
        if capacity < 1:
            raise ValueError(f"PlanCache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        #: Optional per-fingerprint circuit breaker
        #: (:class:`repro.resilience.breaker.CircuitBreaker`). The cache
        #: records compile outcomes into it (a failed ``get_or_build``
        #: build counts one failure, a published plan one success); the
        #: server records eval outcomes and consults
        #: ``breaker.allow(key)`` before touching the pool.
        self.breaker = breaker
        self._entries: "OrderedDict[str, CompiledPlan]" = OrderedDict()
        self._inflight: dict[str, threading.Event] = {}
        self._lock = threading.Lock()

    # -- core operations -----------------------------------------------------

    def get(self, key: str) -> Optional[CompiledPlan]:
        """Look up a plan; counts a hit or a miss and refreshes recency."""
        with self._lock:
            plan = self._entries.get(key)
            if plan is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return plan

    def put(self, key: str, plan: CompiledPlan) -> None:
        """Insert (or replace) a plan, evicting LRU entries past capacity."""
        with self._lock:
            self._store(key, plan)

    def get_or_build(
        self, key: str, build: Callable[[], CompiledPlan]
    ) -> tuple[CompiledPlan, bool]:
        """Return ``(plan, was_hit)``, compiling at most once per key.

        The first thread to miss runs ``build()`` outside the lock;
        concurrent callers for the same key block until it publishes,
        then count as hits. If ``build`` raises, the in-flight marker is
        withdrawn so a later call can retry.
        """
        while True:
            with self._lock:
                plan = self._entries.get(key)
                if plan is not None:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return plan, True
                event = self._inflight.get(key)
                if event is None:
                    event = threading.Event()
                    self._inflight[key] = event
                    self.misses += 1
                    break
            # Another thread is compiling this key: wait and re-check.
            event.wait()
        try:
            plan = build()
        except BaseException:
            with self._lock:
                self._inflight.pop(key, None)
                event.set()
            if self.breaker is not None:
                self.breaker.record_failure(key)
            raise
        with self._lock:
            self._store(key, plan)
            self._inflight.pop(key, None)
            event.set()
        if self.breaker is not None:
            self.breaker.record_success(key)
        return plan, False

    def _store(self, key: str, plan: CompiledPlan) -> None:
        self._entries[key] = plan
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    # -- invalidation --------------------------------------------------------

    def invalidate(self, key: str) -> bool:
        """Drop one plan by key; returns whether it was resident."""
        with self._lock:
            present = self._entries.pop(key, None) is not None
            if present:
                self.invalidations += 1
            return present

    def invalidate_tables(self, names) -> int:
        """Drop every plan whose read set intersects ``names``.

        The table-based counterpart of :meth:`invalidate`: after a
        schema-level change to a base table (new column, changed index),
        every compiled plan reading it is suspect, while plans over
        other tables stay resident. Returns the number dropped. Plans
        compiled without a read set (empty ``tables``) are never dropped
        here — use :meth:`clear` for a full sweep.
        """
        wanted = set(names)
        with self._lock:
            doomed = [
                key
                for key, plan in self._entries.items()
                if wanted.intersection(plan.tables)
            ]
            for key in doomed:
                del self._entries[key]
            self.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> int:
        """Drop every resident plan; returns how many were dropped.

        Counters are left untouched so long-lived servers keep their
        lifetime hit/miss history across invalidation sweeps.
        """
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.invalidations += dropped
            return dropped

    # -- introspection -------------------------------------------------------

    def keys(self) -> list[str]:
        """Resident keys in LRU-to-MRU order."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> dict[str, int]:
        """Counter snapshot: hits, misses, evictions, invalidations, size."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "size": len(self._entries),
                "capacity": self.capacity,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

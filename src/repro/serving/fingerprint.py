"""Content fingerprints for plan-cache keys.

The :class:`~repro.serving.plan_cache.PlanCache` must key compiled plans
by *content*, not object identity: two requests carrying structurally
identical (catalog, view, stylesheet) triples share one compiled plan,
and editing a single stylesheet template yields a different key — an
immediate, correct cache miss with no explicit invalidation needed.

Each input is reduced to a canonical text and hashed with SHA-256:

* **catalog** — its XML serialization
  (:func:`repro.schema_tree.io.catalog_to_xml`), which covers tables,
  columns, types, keys, and indexes;
* **view** — its XML serialization
  (:func:`repro.schema_tree.io.view_to_xml`), which prints every tag
  query deterministically through the SQL printer;
* **stylesheet** — the ``repr`` of the parsed model, a pure dataclass
  tree (no memory addresses), so any change to a match pattern, mode,
  priority, or rule body changes the text.

The composed plan key additionally folds in the composition options and
the optimizer-pass fingerprints
(:data:`repro.core.compose.COMPOSE_PASS_FINGERPRINT`,
:data:`repro.core.optimize.PRUNE_PASS_FINGERPRINT`), so cached plans
self-invalidate when a pass's semantics are revised.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Callable, Optional

from repro.core.compose import COMPOSE_PASS_FINGERPRINT
from repro.core.optimize import PRUNE_PASS_FINGERPRINT
from repro.relational.schema import Catalog
from repro.schema_tree.io import catalog_to_xml, view_to_xml
from repro.schema_tree.model import SchemaTreeQuery
from repro.xslt.model import Stylesheet


#: Identity-keyed memo of view/stylesheet fingerprints. Serializing and
#: hashing a view on every request costs a measurable fraction of a warm
#: cache hit, and servers render the same handful of view/stylesheet
#: *objects* over and over — so fingerprints are cached per object id
#: (with the object kept referenced so ids cannot be recycled), exactly
#: the scheme the engine's SQL-text cache uses. Bounded FIFO; guarded by
#: a lock because requests fingerprint concurrently.
_FINGERPRINT_MEMO: dict[int, tuple[object, str]] = {}
_FINGERPRINT_MEMO_LIMIT = 256
_FINGERPRINT_LOCK = threading.Lock()


def _memoized(obj: object, compute: Callable[[], str]) -> str:
    key = id(obj)
    with _FINGERPRINT_LOCK:
        entry = _FINGERPRINT_MEMO.get(key)
        if entry is not None and entry[0] is obj:
            return entry[1]
    value = compute()
    with _FINGERPRINT_LOCK:
        while len(_FINGERPRINT_MEMO) >= _FINGERPRINT_MEMO_LIMIT:
            _FINGERPRINT_MEMO.pop(next(iter(_FINGERPRINT_MEMO)))
        _FINGERPRINT_MEMO[key] = (obj, value)
    return value


def clear_fingerprint_memo() -> int:
    """Drop every memoized fingerprint; returns how many were dropped.

    Used by cold-cache benchmarking (E13) so a "cold" request pays the
    full serialize-and-hash cost, and by tests that mutate a view or
    stylesheet *in place* (content fingerprints assume the usual
    build-once/never-mutate usage; after an in-place edit the memo would
    be stale).
    """
    with _FINGERPRINT_LOCK:
        dropped = len(_FINGERPRINT_MEMO)
        _FINGERPRINT_MEMO.clear()
        return dropped


def fingerprint_text(*parts: str) -> str:
    """SHA-256 over the given text parts, length-prefixed per part.

    Length prefixes keep the digest injective over the part list —
    ``("ab", "c")`` and ``("a", "bc")`` hash differently.
    """
    digest = hashlib.sha256()
    for part in parts:
        data = part.encode("utf-8")
        digest.update(str(len(data)).encode("ascii"))
        digest.update(b":")
        digest.update(data)
    return digest.hexdigest()


def fingerprint_catalog(catalog: Catalog) -> str:
    """Content fingerprint of a relational catalog."""
    return fingerprint_text("catalog", catalog_to_xml(catalog))


def fingerprint_view(view: SchemaTreeQuery) -> str:
    """Content fingerprint of a schema-tree view (plain or composed).

    Memoized per view object (see :func:`clear_fingerprint_memo`).
    """
    return _memoized(view, lambda: fingerprint_text("view", view_to_xml(view)))


def fingerprint_stylesheet(stylesheet: Optional[Stylesheet]) -> str:
    """Content fingerprint of a parsed stylesheet (``None`` -> identity).

    Memoized per stylesheet object (see :func:`clear_fingerprint_memo`).
    """
    if stylesheet is None:
        return fingerprint_text("stylesheet", "-")
    return _memoized(
        stylesheet,
        lambda: fingerprint_text("stylesheet", repr(stylesheet)),
    )


def node_read_sets(view: SchemaTreeQuery) -> dict[int, tuple[str, ...]]:
    """The base tables each schema node's tag query reads, per node id.

    Computed with :func:`repro.sql.analysis.referenced_tables`, which
    descends into derived tables, EXISTS conditions, scalar subqueries,
    and IN subqueries — so each node's read set is exhaustive over the
    SQL subset. Nodes without a tag query (literal output elements) have
    no entry: they read nothing and can never go stale. The map is what
    incremental maintenance
    (:mod:`repro.maintenance.incremental`) intersects with a
    :class:`~repro.maintenance.tracker.WriteTracker` version vector to
    find exactly the schema nodes a write dirtied.
    """
    from repro.sql.analysis import referenced_tables

    return {
        node.id: tuple(sorted(referenced_tables(node.tag_query)))
        for node in view.nodes(include_root=False)
        if node.tag_query is not None
    }


def node_parents(view: SchemaTreeQuery) -> dict[int, Optional[int]]:
    """Parent schema-node id per query-bearing node id.

    Only query-bearing nodes appear as keys, and the recorded parent is
    the nearest query-bearing *ancestor* (literal wrapper elements are
    skipped over; children of the synthetic root map to ``None``). This
    is the hierarchy the fragment pinning policy walks: a span of the
    parent covers every descendant span, so pinning decisions need the
    ancestor relation among spannable fragments, not the raw tree.
    """
    parents: dict[int, Optional[int]] = {}
    for node in view.nodes(include_root=False):
        if node.tag_query is None:
            continue
        ancestor = node.parent
        while ancestor is not None and (
            ancestor.is_root or ancestor.tag_query is None
        ):
            ancestor = None if ancestor.is_root else ancestor.parent
        parents[node.id] = ancestor.id if ancestor is not None else None
    return parents


def view_read_set(view: SchemaTreeQuery) -> tuple[str, ...]:
    """The base tables a view's tag queries read, sorted and deduplicated.

    The union of :func:`node_read_sets` over every query-bearing node,
    so table-based invalidation
    (:meth:`repro.serving.plan_cache.PlanCache.invalidate_tables`, the
    maintenance layer's freshness checks) never misses a dependency.
    """
    tables: set[str] = set()
    for node_tables in node_read_sets(view).values():
        tables.update(node_tables)
    return tuple(sorted(tables))


def plan_key(
    catalog_fingerprint: str,
    view: SchemaTreeQuery,
    stylesheet: Optional[Stylesheet],
    prune: bool = True,
    paper_mode: bool = False,
) -> str:
    """The cache key for one (catalog, view, stylesheet, options) request.

    ``catalog_fingerprint`` is passed pre-computed because a server
    fingerprints its catalog once at construction, while views and
    stylesheets vary per request.
    """
    return fingerprint_text(
        catalog_fingerprint,
        fingerprint_view(view),
        fingerprint_stylesheet(stylesheet),
        f"prune={int(prune)}" if stylesheet is not None else "prune=0",
        f"paper_mode={int(paper_mode)}",
        COMPOSE_PASS_FINGERPRINT,
        PRUNE_PASS_FINGERPRINT,
    )

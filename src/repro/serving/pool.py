"""Read-only connection pool for concurrent materialization.

Each worker thread of a :class:`~repro.serving.server.ViewServer` needs
its own database session (embedded-engine connections are not safe for
concurrent use) and its own
:class:`~repro.relational.engine.QueryStats` (so per-request counters
are never shared mutable state). :class:`ConnectionPool` provides both:
a fixed set of :class:`~repro.relational.engine.Database` sessions,
every one read-only, handed to one borrower at a time through a queue.

Everything engine-specific — how a snapshot is taken, how a released
session is sanitized, which exceptions mean "replace this connection" —
goes through the pool's :class:`~repro.relational.driver.EngineDriver`.

Two source modes:

* **file** — ``ConnectionPool(catalog, path=...)`` opens ``size``
  independent read-only connections to the database file via
  ``driver.open_read_only``.
* **clone** — ``ConnectionPool(catalog, source=db)`` snapshots an
  existing (typically in-memory) database through
  ``driver.snapshot(source)`` (sqlite: the backup API into a
  shared-cache memory clone; DuckDB: a row copy into a private root
  connection served through cursors), then opens ``size`` sessions onto
  the snapshot with read-only enforcement. Tests and benchmarks use
  this to serve a generated workload without touching disk; the source
  database is left untouched and later writes to it are *not* visible
  to the pool (snapshot semantics) until :meth:`ConnectionPool.refresh`
  re-snapshots it — the update-aware serving path
  (:mod:`repro.maintenance`) does exactly that when a tracked write
  makes the snapshot stale.

All pooled connections allow cross-thread hand-off; the pool's queue
serializes borrowing so each connection is used by one thread at a
time — the contract documented in :mod:`repro.relational.engine`.
"""

from __future__ import annotations

import queue
import threading
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from repro.relational.driver import EngineSnapshot, resolve_driver
from repro.relational.engine import Database, QueryStats
from repro.relational.schema import Catalog


class ConnectionPool:
    """A fixed-size pool of read-only :class:`Database` sessions.

    Exactly one of ``path`` (database file) or ``source`` (live
    :class:`Database` to snapshot) must be given. ``size`` connections
    are opened eagerly so serving never pays connection setup on the
    request path. ``driver`` defaults to the source database's driver
    in clone mode (a pool always speaks its source's backend) and to
    sqlite in file mode.
    """

    def __init__(
        self,
        catalog: Catalog,
        path: Optional[str] = None,
        source: Optional[Database] = None,
        size: int = 4,
        keep_sql: bool = False,
        fault_plan=None,
        driver=None,
        admission: Optional[Callable[[], None]] = None,
    ):
        if (path is None) == (source is None):
            raise ValueError("ConnectionPool needs exactly one of path/source")
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.catalog = catalog
        self.size = size
        self._path = path
        self._keep_sql = keep_sql
        if driver is None and source is not None:
            driver = source.driver
        self.driver = resolve_driver(driver)
        # Optional repro.resilience.FaultPlan: every session is wrapped
        # in a FaultyEngine so evaluators running on pooled connections
        # exercise injected faults transparently.
        self._fault_plan = fault_plan
        # Optional gate consulted before every borrow; raising (e.g.
        # repro.errors.ReplicaUnavailable during an injected crash
        # window) makes the pool refuse new sessions without touching
        # the ones already out.
        self._admission = admission
        self._closed = False
        self._close_lock = threading.Lock()
        self._refresh_lock = threading.Lock()
        self._source = source
        self._snapshot: Optional[EngineSnapshot] = None
        if source is not None:
            self._snapshot = self.driver.snapshot(source)
        self._sessions: list[Database] = [
            self._open_session(path, keep_sql) for _ in range(size)
        ]
        self._idle: "queue.LifoQueue[Database]" = queue.LifoQueue()
        for session in self._sessions:
            self._idle.put(session)

    def _open_session(self, path: Optional[str], keep_sql: bool) -> Database:
        stats = QueryStats(keep_sql=keep_sql)
        if path is not None:
            db = Database.open(self.catalog, path, stats=stats,
                               driver=self.driver)
        else:
            assert self._snapshot is not None
            connection = self._snapshot.connect()
            db = Database.from_connection(
                self.catalog, connection, stats=stats, read_only=True,
                driver=self.driver,
            )
            self.driver.enforce_read_only(db.connection)
        if self._fault_plan is not None:
            from repro.resilience.faults import FaultyEngine

            return FaultyEngine(db, self._fault_plan)
        return db

    # -- borrowing -----------------------------------------------------------

    def acquire(self, timeout: Optional[float] = None) -> Database:
        """Borrow a session; blocks until one is idle.

        Raises :class:`RuntimeError` on a closed pool,
        :class:`queue.Empty` if ``timeout`` elapses, and whatever the
        ``admission`` gate raises when it refuses new sessions.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        if self._admission is not None:
            self._admission()
        return self._idle.get(timeout=timeout)

    def release(self, session: Database) -> None:
        """Return a borrowed session to the idle queue, clean or replaced.

        A borrower may release after an exception mid-evaluation — an
        injected fault, a deadline cancel, a genuine engine error — so
        the session is sanitized before anyone else can borrow it: any
        lingering ``cancel_check`` hook is cleared, and
        ``driver.sanitize`` rolls back whatever transaction state an
        interrupted statement left behind. A session whose connection
        proves unusable is *replaced* by a freshly opened one rather
        than re-queued, so the pool never shrinks and never hands out a
        poisoned connection. Releasing into a closed pool closes the
        session instead of queueing it.
        """
        if self._closed:
            try:
                session.close()
            except self.driver.errors:
                pass
            return
        session.cancel_check = None
        if not self.driver.sanitize(session.connection):
            session = self._replace(session)
        self._idle.put(session)

    def _replace(self, session: Database) -> Database:
        """Swap a broken session for a fresh one (same stats identity)."""
        try:
            session.close()
        except self.driver.errors:
            pass
        replacement = self._open_session(self._path, self._keep_sql)
        # Keep aggregate_stats() seeing exactly ``size`` sessions.
        for index, existing in enumerate(self._sessions):
            if existing is session:
                self._sessions[index] = replacement
                break
        else:
            self._sessions.append(replacement)
        return replacement

    @contextmanager
    def session(self, timeout: Optional[float] = None) -> Iterator[Database]:
        """Borrow a session for the duration of a ``with`` block.

        The ``finally`` release guarantees a mid-evaluation exception —
        evaluator bugs, injected faults, deadline cancels — can never
        leak the connection: it always flows through :meth:`release`'s
        sanitization.
        """
        borrowed = self.acquire(timeout=timeout)
        try:
            yield borrowed
        finally:
            self.release(borrowed)

    def outstanding(self) -> int:
        """Sessions currently borrowed (0 on a quiescent pool).

        The shutdown leak check: after every request future resolves,
        this must be 0 — a positive count means an acquire/release path
        leaked a connection.
        """
        return self.size - self._idle.qsize()

    # -- freshness -----------------------------------------------------------

    def refresh(self) -> bool:
        """Re-snapshot the source database into the clone (clone mode).

        Clone-mode pools serve a point-in-time snapshot; after base-data
        writes land on the source, the maintenance layer calls this to
        bring the snapshot forward. Every session is drained from the
        idle queue first — a barrier that waits for in-flight requests
        to finish and blocks new borrows — then the snapshot is
        refreshed from the source and the sessions are returned.
        Returns ``False`` for file-mode pools, where read-only
        connections already see each committed write at their next
        statement.

        The caller's thread must be allowed to touch the source
        connection (open it with ``cross_thread=True`` when writers and
        server workers are different threads). Concurrent refreshes are
        serialized; callers must not hold a borrowed session, or the
        drain would deadlock.
        """
        if self._source is None or self._snapshot is None:
            return False
        if self._closed:
            raise RuntimeError("pool is closed")
        with self._refresh_lock:
            borrowed = [self._idle.get() for _ in range(self.size)]
            try:
                self._snapshot.refresh(self._source)
            finally:
                for session in borrowed:
                    self._idle.put(session)
        return True

    # -- stats / lifecycle ---------------------------------------------------

    def aggregate_stats(self) -> QueryStats:
        """Merged copy of every session's per-connection counters."""
        total = QueryStats()
        for session in self._sessions:
            total.merge(session.stats)
        return total

    def reset_stats(self) -> None:
        """Zero every session's counters (between measured runs)."""
        for session in self._sessions:
            session.stats.reset()

    def close(self) -> None:
        """Close every pooled session (and the snapshot's anchor)."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        for session in self._sessions:
            session.close()
        if self._snapshot is not None:
            self._snapshot.close()

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

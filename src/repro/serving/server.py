"""Long-lived concurrent publishing server.

:class:`ViewServer` is the serving-path counterpart of the one-shot
``python -m repro materialize`` pipeline: it keeps compiled plans
(composed + pruned stylesheet views with their printed SQL) in a
content-addressed :class:`~repro.serving.plan_cache.PlanCache`, and
executes materialization requests concurrently on a
``ThreadPoolExecutor`` whose workers draw read-only connections — each
with its own :class:`~repro.relational.engine.QueryStats` — from a
:class:`~repro.serving.pool.ConnectionPool`.

Every request produces a :class:`RequestTrace`: where the time went
(plan acquisition vs execution vs serialization), how much engine work
it did (queries, rows), how much output it built (elements,
attributes), which strategy ran, and whether the plan came from cache.
The ``python -m repro serve-bench`` command and harness experiment E13
aggregate these traces into throughput and latency percentiles.

Equivalence guarantee: a served request returns byte-identical XML to a
serial :func:`repro.schema_tree.evaluator.materialize` of the same
composed view on the same data — the property suite in
``tests/serving/test_concurrent_equivalence.py`` checks this for all
three strategies under 8-way concurrency.

Update awareness: constructed with a
:class:`~repro.maintenance.tracker.WriteTracker`, the server also
memoizes serialized responses in a
:class:`~repro.maintenance.result_cache.ResultCache` keyed by plan
fingerprint + strategy and stamped with the plan's base-table version
vector; a :class:`~repro.maintenance.policy.StalenessPolicy` decides
whether cached bytes may be served or must be recomputed over
re-synced live data. Under the ``strict`` policy the equivalence
guarantee extends across interleaved base-data writes (the property
suite in ``tests/maintenance/test_freshness_property.py``).

Resilience: constructed with a
:class:`~repro.resilience.policy.ResiliencePolicy`, the serving path
becomes bounded and self-healing — per-request deadlines (cooperative
``cancel_check`` at query boundaries plus a hard
``sqlite3.Connection.interrupt`` timer), retry-with-backoff for
transient errors (:func:`repro.errors.classify_error`), a
per-fingerprint circuit breaker on the plan cache, admission control
(bounded queue, shed requests trace ``outcome="rejected"``), and a
**degraded-stale** fallback: when computation fails or the breaker is
open, the last-known-good result-cache entry is served with
``freshness="degraded-stale"`` and its true ``version_lag`` — unless
the staleness policy is ``strict``, which never serves stale bytes
silently (the request errors instead). A
:class:`~repro.resilience.faults.FaultPlan` injects deterministic
chaos under all of this for experiment E16. No exception ever
propagates out of a worker: every failure lands in the trace's
``outcome`` / ``error`` fields.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Optional

# Canonical percentile machinery lives in repro.harness.reporting so
# every harness/CLI surface (E13-E19, serve-bench, load-bench) computes
# latency summaries identically; re-exported here for compatibility.
from repro.harness.reporting import percentile  # noqa: F401
from repro.errors import (
    CircuitOpen,
    DeadlineExceeded,
    ReproError,
    RequestCancelled,
    RequestRejected,
    classify_error,
)
from repro.maintenance.fragments import (
    FragmentCache,
    FragmentPolicy,
    FragmentStat,
)
from repro.maintenance.incremental import (
    MAINTENANCE_MODES,
    DeltaEvaluator,
    DeltaUnsupported,
    MaterializedState,
)
from repro.maintenance.policy import StalenessPolicy
from repro.maintenance.result_cache import ResultCache
from repro.maintenance.tracker import WriteTracker
from repro.relational.engine import Database
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import FaultPlan
from repro.resilience.policy import Deadline, ResiliencePolicy
from repro.relational.schema import Catalog
from repro.schema_tree.bulk_evaluator import BulkViewEvaluator
from repro.schema_tree.evaluator import (
    STRATEGIES,
    MaterializeStats,
    ViewEvaluator,
)
from repro.schema_tree.model import SchemaTreeQuery
from repro.serving.fingerprint import (
    fingerprint_catalog,
    node_parents,
    node_read_sets,
    plan_key,
    view_read_set,
)
from repro.serving.plan_cache import CompiledPlan, PlanCache
from repro.serving.pool import ConnectionPool
from repro.sql.printer import print_select
from repro.xmlcore.serializer import serialize
from repro.xslt.model import Stylesheet

#: RequestTrace.freshness values, in the order metrics report them.
#: ``delta-recompute`` is a stale entry refreshed incrementally (dirty
#: schema nodes only) instead of by a full plan re-run — see
#: :mod:`repro.maintenance.incremental`. ``degraded-stale`` is a cached
#: entry served past its policy because computation failed or the plan's
#: circuit breaker is open (resilience fallback, never under ``strict``).
FRESHNESS_STATES = (
    "hit",
    "miss",
    "stale-recompute",
    "delta-recompute",
    "bypass",
    "degraded-stale",
)

#: RequestTrace.outcome values, in the order metrics report them.
#: ``success`` — served a computed or policy-fresh cached response;
#: ``degraded`` — served last-known-good bytes after a failure;
#: ``rejected`` — shed by admission control or breaker with no fallback;
#: ``deadline`` — the request's time budget expired with no fallback;
#: ``cancelled`` — the caller abandoned the attempt (hedged-request
#: loser); intentional, so it feeds neither errors nor the breaker;
#: ``error`` — computation failed with no fallback.
OUTCOMES = ("success", "degraded", "rejected", "deadline", "cancelled", "error")

#: Request priority classes, in admission order. Admission control
#: sheds ``background`` first and ``interactive`` last: with a
#: resilience ``queue_limit`` of L and W workers, interactive requests
#: are admitted until the hard limit (W + L in flight), batch until
#: W + 2L/3, background until W + L/3 — so under overload the
#: best-effort tiers absorb the shedding while interactive traffic
#: keeps its full queue.
PRIORITIES = ("interactive", "batch", "background")

#: Fraction of the queue headroom each priority class may consume.
PRIORITY_ADMISSION_FRACTIONS = {
    "interactive": 1.0,
    "batch": 2.0 / 3.0,
    "background": 1.0 / 3.0,
}

#: Reasons a delta maintenance attempt fell back to full recomputation,
#: in the order metrics report them (see ``delta_fallbacks_by_reason``).
#: ``fragment-miss`` is fragment-mode only: the stale entry carries
#: captured state but no fragment byte cache (mode switch, degraded
#: store), so the request recomputes in full to rebuild both.
DELTA_FALLBACK_REASONS = (
    "no-state",
    "no-change",
    "unsupported",
    "error",
    "stamp-race",
    "fragment-miss",
)


@dataclass
class PublishRequest:
    """One materialization request against the server's database.

    ``stylesheet=None`` serves the publishing view itself; otherwise the
    stylesheet is composed with the view (and pruned, unless ``prune``
    is off) the first time this content triple is seen.
    """

    view: SchemaTreeQuery
    stylesheet: Optional[Stylesheet] = None
    strategy: str = "nested-loop"
    prune: bool = True
    paper_mode: bool = False
    label: str = ""
    #: Skip the result cache entirely (read and write) for this request;
    #: the response is always computed from live data. Traces record it
    #: as ``freshness="bypass"``.
    bypass_cache: bool = False
    #: Admission priority class — one of :data:`PRIORITIES`. Under a
    #: resilience ``queue_limit``, lower classes are shed earlier (see
    #: :data:`PRIORITY_ADMISSION_FRACTIONS`).
    priority: str = "interactive"
    #: Cooperative cancellation handle
    #: (:class:`~repro.resilience.policy.CancelToken`). The async front
    #: end cancels hedged-request losers through it; cancelled requests
    #: resolve with ``outcome="cancelled"``.
    cancel: Optional[object] = None
    #: Replica anti-affinity handle
    #: (:class:`~repro.sharding.replica.PlacementGroup`). Both attempts
    #: of a hedged request share one group; the shard router claims the
    #: member each attempt lands on so the hedge can prefer a replica
    #: the first attempt did not use. ``None`` (the default) routes
    #: without affinity constraints; single-box servers ignore it.
    placement: Optional[object] = None


@dataclass
class RequestTrace:
    """Per-request record of work done and where the time went.

    ``plan_seconds`` is the time this request spent *obtaining* its
    compiled plan — near zero on a cache hit, the full compose cost on
    the miss that compiled it (also recorded on the plan itself as
    ``compose_seconds``).
    """

    request_id: int
    label: str
    strategy: str
    cache_hit: bool
    plan_key: str
    #: Result-cache outcome: ``hit`` (cached bytes served), ``miss`` (no
    #: entry, computed and stored), ``stale-recompute`` (entry too old
    #: for the staleness policy, recomputed), or ``bypass`` (result
    #: caching off for this server/request).
    freshness: str = "bypass"
    #: Write events on the plan's read set since the consulted cache
    #: entry was stamped (0 on miss/bypass). On a ``hit`` this is the
    #: staleness actually served — bounded policies keep it <= max_lag.
    version_lag: int = 0
    #: On a ``delta-recompute``: how many schema nodes the write set
    #: dirtied (the re-executed frontier plus its subsumed descendants).
    #: ``rows_fetched`` then counts only the rows the delta re-fetched.
    dirty_nodes: int = 0
    plan_seconds: float = 0.0
    execute_seconds: float = 0.0
    serialize_seconds: float = 0.0
    #: Seconds inside sqlite (execute + fetch) for this request's
    #: queries — the "query" phase of the profile breakdown; the "merge"
    #: phase is ``execute - query - splice``.
    query_seconds: float = 0.0
    #: Seconds in the delta copy-on-spine splice (document and state
    #: rebuild, no query work) — the profile's "splice" phase.
    splice_seconds: float = 0.0
    total_seconds: float = 0.0
    queries_executed: int = 0
    rows_fetched: int = 0
    #: On a ``delta-recompute``: elements rebuilt at *row* granularity
    #: by key pushdown (subset of the refreshed elements; their kept
    #: subtrees were shared, not rebuilt).
    rows_spliced: int = 0
    #: On a ``delta-recompute``: parent blocks re-evaluated at *block*
    #: granularity (grouped frontiers the row path must decline; sibling
    #: blocks' subtrees were shared, not rebuilt).
    blocks_spliced: int = 0
    #: Fragment byte-cache outcome of this request's serialization
    #: (fragment maintenance only): spans copied without walking their
    #: subtree, fragments walked and (re-)recorded, and bytes spliced.
    fragment_hits: int = 0
    fragment_misses: int = 0
    fragment_spliced_bytes: int = 0
    elements_created: int = 0
    attributes_created: int = 0
    fallback_nodes: int = 0
    #: How the request ended — one of :data:`OUTCOMES`. ``degraded``
    #: means last-known-good cached bytes were served after a failure
    #: (the cause is in ``degraded_cause``, ``error`` stays ``None``).
    outcome: str = "success"
    #: Admission priority class the request carried.
    priority: str = "interactive"
    #: Transient-failure retries this request performed (resilience).
    retries: int = 0
    #: On a ``degraded`` outcome: the failure the fallback absorbed.
    degraded_cause: Optional[str] = None
    worker: str = ""
    error: Optional[str] = None
    xml: Optional[str] = None
    #: The materialized document behind ``xml``, retained only when the
    #: server was built with ``keep_documents=True`` (the shard router's
    #: merge path); never serialized into :meth:`to_dict`. Shared with
    #: result-cache state — callers must treat it as immutable.
    document: Optional[object] = None

    def to_dict(self, include_xml: bool = False) -> dict:
        """JSON-ready form of the trace (XML omitted unless asked)."""
        record = {
            "request_id": self.request_id,
            "label": self.label,
            "strategy": self.strategy,
            "cache_hit": self.cache_hit,
            "freshness": self.freshness,
            "version_lag": self.version_lag,
            "dirty_nodes": self.dirty_nodes,
            "plan_key": self.plan_key[:16],
            "plan_seconds": round(self.plan_seconds, 6),
            "execute_seconds": round(self.execute_seconds, 6),
            "serialize_seconds": round(self.serialize_seconds, 6),
            "query_seconds": round(self.query_seconds, 6),
            "splice_seconds": round(self.splice_seconds, 6),
            "total_seconds": round(self.total_seconds, 6),
            "queries_executed": self.queries_executed,
            "rows_fetched": self.rows_fetched,
            "rows_spliced": self.rows_spliced,
            "blocks_spliced": self.blocks_spliced,
            "fragment_hits": self.fragment_hits,
            "fragment_misses": self.fragment_misses,
            "fragment_spliced_bytes": self.fragment_spliced_bytes,
            "elements_created": self.elements_created,
            "attributes_created": self.attributes_created,
            "fallback_nodes": self.fallback_nodes,
            "outcome": self.outcome,
            "priority": self.priority,
            "retries": self.retries,
            "degraded_cause": self.degraded_cause,
            "worker": self.worker,
            "error": self.error,
        }
        if include_xml:
            record["xml"] = self.xml
        return record


class ViewServer:
    """A concurrent publishing server over one relational database.

    Construct with either ``path`` (a sqlite database file, opened
    read-only ``workers`` times) or ``source`` (a live
    :class:`~repro.relational.engine.Database` snapshotted into a
    shared-cache clone — see :class:`~repro.serving.pool.ConnectionPool`).
    Requests are executed on a ``ThreadPoolExecutor`` with one pooled
    connection per worker; compiled plans are shared through an LRU
    :class:`~repro.serving.plan_cache.PlanCache` keyed by content
    fingerprints of (catalog, view, stylesheet, options).
    """

    def __init__(
        self,
        catalog: Catalog,
        path: Optional[str] = None,
        source: Optional[Database] = None,
        workers: int = 4,
        cache_capacity: int = 64,
        keep_xml: bool = True,
        keep_documents: bool = False,
        tracker: Optional[WriteTracker] = None,
        staleness: "StalenessPolicy | str" = "strict",
        result_cache_capacity: int = 128,
        maintenance: str = "full",
        fragment_policy: "FragmentPolicy | str | None" = None,
        resilience: Optional[ResiliencePolicy] = None,
        faults: Optional[FaultPlan] = None,
        pool_admission=None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if maintenance not in MAINTENANCE_MODES:
            raise ReproError(
                f"unknown maintenance mode {maintenance!r} "
                f"(expected one of {', '.join(MAINTENANCE_MODES)})"
            )
        self.catalog = catalog
        self.workers = workers
        self.keep_xml = keep_xml
        # Retain the materialized Document on each trace alongside the
        # bytes. The shard router merges documents structurally instead
        # of re-parsing XML; everyone else leaves this off.
        self.keep_documents = keep_documents
        # -- resilience (repro.resilience). The policy governs deadlines,
        # retries, circuit breaking, admission control, and the
        # degraded-stale fallback; the fault plan (tests/E16) injects
        # deterministic chaos into every pooled session.
        self.resilience = resilience
        self.faults = faults
        breaker = None
        if resilience is not None and resilience.breaker_threshold > 0:
            breaker = CircuitBreaker(
                resilience.breaker_threshold,
                cooldown_ms=resilience.breaker_cooldown_ms,
                half_open_max=resilience.breaker_half_open_max,
            )
        self.plan_cache = PlanCache(cache_capacity, breaker=breaker)
        self.pool = ConnectionPool(
            catalog, path=path, source=source, size=workers,
            fault_plan=faults, admission=pool_admission,
        )
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="viewserver"
        )
        self._catalog_fingerprint = fingerprint_catalog(catalog)
        self._lock = threading.Lock()
        self._next_request_id = 1
        self.requests_served = 0
        self.errors = 0
        self._inflight = 0
        self._retries_total = 0
        self._deadline_hits = 0
        self._shed_requests = 0
        self._degraded_serves = 0
        self._cancelled_requests = 0
        self._outcome_counts = {outcome: 0 for outcome in OUTCOMES}
        self._priority_outcomes = {
            priority: {outcome: 0 for outcome in OUTCOMES}
            for priority in PRIORITIES
        }
        self._priority_shed = {priority: 0 for priority in PRIORITIES}
        self._closed = False
        # -- update awareness (repro.maintenance). With a tracker the
        # server memoizes serialized responses in a ResultCache and
        # checks their table-version stamps against the tracker before
        # serving; without one the serving path behaves exactly as
        # before (every request computes, freshness="bypass").
        self.tracker = tracker
        self.staleness = (
            StalenessPolicy.parse(staleness)
            if isinstance(staleness, str)
            else staleness
        )
        self.result_cache = (
            ResultCache(result_cache_capacity) if tracker is not None else None
        )
        # How stale entries are recomputed: "full" re-runs the whole
        # compiled plan, "delta" refreshes only the dirty schema nodes
        # (repro.maintenance.incremental) and falls back to full when
        # the splice declines, "fragment" is delta plus the serialized-
        # fragment byte cache (repro.maintenance.fragments). Only
        # meaningful with a tracker.
        self.maintenance = maintenance
        self.fragment_policy = (
            FragmentPolicy.parse(fragment_policy)
            if isinstance(fragment_policy, str)
            else (fragment_policy or FragmentPolicy("all"))
        )
        self._fragment_hits = 0
        self._fragment_misses = 0
        self._fragment_splices = 0
        self._fragment_spliced_bytes = 0
        self._delta_fallback_reasons = {
            reason: 0 for reason in DELTA_FALLBACK_REASONS
        }
        self._freshness_counts = {state: 0 for state in FRESHNESS_STATES}
        self._sync_lock = threading.Lock()
        # Clock at which the pool's data is known current. The pool
        # snapshot (clone mode) was taken just above, so writes recorded
        # up to now are included.
        self._synced_clock = tracker.clock() if tracker is not None else 0

    # -- request API ---------------------------------------------------------

    def admission_limit(self, priority: str) -> Optional[int]:
        """Max in-flight requests before ``priority`` traffic is shed.

        ``None`` means unbounded (no resilience policy or no
        ``queue_limit``). Interactive requests keep the full
        ``workers + queue_limit`` budget — the pre-priority behaviour —
        while batch and background get progressively smaller slices of
        the queue headroom (:data:`PRIORITY_ADMISSION_FRACTIONS`), so
        they are shed first under overload.
        """
        policy = self.resilience
        if policy is None or policy.queue_limit is None:
            return None
        fraction = PRIORITY_ADMISSION_FRACTIONS[priority]
        return self.workers + int(policy.queue_limit * fraction)

    def submit(self, request: PublishRequest) -> "Future[RequestTrace]":
        """Enqueue a request; returns a future resolving to its trace.

        Admission control: with a resilience policy carrying a
        ``queue_limit``, at most ``workers + queue_limit`` requests may
        be in flight (queued or executing). Excess requests are *shed*
        — the future resolves immediately to a trace with
        ``outcome="rejected"`` (the 503 analogue) instead of piling
        onto a saturated executor. Shedding is priority-aware: the
        request's :attr:`~PublishRequest.priority` class picks its
        admission limit (:meth:`admission_limit`), so ``background``
        traffic sheds first and ``interactive`` is never shed before
        the hard limit.
        """
        if self._closed:
            raise RuntimeError("server is closed")
        if request.strategy not in STRATEGIES:
            raise ReproError(
                f"unknown strategy {request.strategy!r} "
                f"(expected one of {', '.join(STRATEGIES)})"
            )
        if request.priority not in PRIORITIES:
            raise ReproError(
                f"unknown priority {request.priority!r} "
                f"(expected one of {', '.join(PRIORITIES)})"
            )
        limit = self.admission_limit(request.priority)
        with self._lock:
            request_id = self._next_request_id
            self._next_request_id += 1
            if limit is not None and self._inflight >= limit:
                self._shed_requests += 1
                self._priority_shed[request.priority] += 1
                self.requests_served += 1
                self._outcome_counts["rejected"] += 1
                self._priority_outcomes[request.priority]["rejected"] += 1
                self._freshness_counts["bypass"] += 1
                trace = RequestTrace(
                    request_id=request_id,
                    label=request.label,
                    strategy=request.strategy,
                    cache_hit=False,
                    plan_key="",
                    priority=request.priority,
                    outcome="rejected",
                    error=str(
                        RequestRejected(
                            f"request shed: {self._inflight} in flight >= "
                            f"limit {limit} for priority "
                            f"{request.priority}"
                        )
                    ),
                )
                rejected: "Future[RequestTrace]" = Future()
                rejected.set_result(trace)
                return rejected
            self._inflight += 1
        try:
            return self._executor.submit(self._serve, request, request_id)
        except BaseException:
            with self._lock:
                self._inflight -= 1
            raise

    def render(
        self,
        view: SchemaTreeQuery,
        stylesheet: Optional[Stylesheet] = None,
        strategy: str = "nested-loop",
        prune: bool = True,
        paper_mode: bool = False,
        label: str = "",
    ) -> RequestTrace:
        """Serve one request synchronously (submit + wait)."""
        return self.submit(
            PublishRequest(
                view=view,
                stylesheet=stylesheet,
                strategy=strategy,
                prune=prune,
                paper_mode=paper_mode,
                label=label,
            )
        ).result()

    def render_many(
        self, requests: Iterable[PublishRequest]
    ) -> list[RequestTrace]:
        """Serve a batch concurrently; traces come back in request order."""
        futures = [self.submit(request) for request in requests]
        return [future.result() for future in futures]

    # -- plan management -----------------------------------------------------

    def plan_key_for(self, request: PublishRequest) -> str:
        """The cache key a request resolves to (content fingerprint)."""
        return plan_key(
            self._catalog_fingerprint,
            request.view,
            request.stylesheet,
            prune=request.prune,
            paper_mode=request.paper_mode,
        )

    def invalidate(self, request: PublishRequest) -> bool:
        """Explicitly drop the compiled plan a request would use."""
        return self.plan_cache.invalidate(self.plan_key_for(request))

    def invalidate_tables(self, names: Iterable[str]) -> dict:
        """Drop every plan and cached result reading any of ``names``.

        The operator-facing invalidation API: under the ``manual``
        staleness policy this is what forces recomputation after writes;
        under any policy it is the right response to a schema-level
        change. Returns ``{"plans": n, "results": m}`` dropped counts.
        """
        names = list(names)
        dropped_results = (
            self.result_cache.invalidate_tables(names)
            if self.result_cache is not None
            else 0
        )
        return {
            "plans": self.plan_cache.invalidate_tables(names),
            "results": dropped_results,
        }

    def _compile(self, key: str, request: PublishRequest) -> CompiledPlan:
        from repro.core.compose import compose
        from repro.core.optimize import prune_stylesheet_view

        if self.faults is not None:
            # Compile-site fault injection (tests/E16): raises a
            # transient OperationalError that get_or_build's in-flight
            # cleanup and the circuit breaker both observe.
            self.faults.check_compile(key)
        started = time.perf_counter()
        pruned_columns = 0
        if request.stylesheet is None:
            view = request.view
        else:
            view = compose(
                request.view,
                request.stylesheet,
                self.catalog,
                paper_mode=request.paper_mode,
            )
            if request.prune:
                pruned_columns = prune_stylesheet_view(
                    view, self.catalog
                ).columns_removed
        node_sql = {
            node.id: print_select(node.tag_query, placeholders=True)
            for node in view.nodes(include_root=False)
            if node.tag_query is not None
        }
        return CompiledPlan(
            key=key,
            view=view,
            node_sql=node_sql,
            compose_seconds=time.perf_counter() - started,
            pruned_columns=pruned_columns,
            tables=view_read_set(view),
            node_read_sets=node_read_sets(view),
            node_parents=node_parents(view),
        )

    # -- freshness -----------------------------------------------------------

    def _sync(self) -> None:
        """Bring the pool's data current with every tracked write so far.

        Cheap when nothing changed (one clock read, no lock). When the
        pool is behind, exactly one thread re-snapshots the source
        (:meth:`~repro.serving.pool.ConnectionPool.refresh`) while
        others wait on the sync lock; the synced clock is stamped with a
        value read *before* the snapshot, so it can only understate
        freshness — a conservative error that costs an extra refresh,
        never a stale strict response. Callers must not hold a pool
        session (the refresh drains the pool).
        """
        if self.tracker is None:
            return
        if self._synced_clock >= self.tracker.clock():
            return
        with self._sync_lock:
            observed = self.tracker.clock()
            if self._synced_clock >= observed:
                return
            self.pool.refresh()
            self._synced_clock = observed

    def _record_delta_fallback(self, reason: str) -> None:
        """Count one delta attempt that fell back to full recomputation.

        ``reason`` is one of :data:`DELTA_FALLBACK_REASONS`, so the
        metrics can say *why* deltas degrade: no captured state to
        splice against (``no-state``), a stale classification with no
        actually-newer table (``no-change``), a clean
        :class:`DeltaUnsupported` decline (``unsupported``), a
        mid-splice failure (``error``), or a write racing the splice
        (``stamp-race``).
        """
        with self._lock:
            self._delta_fallback_reasons[reason] += 1

    def _serve_delta(
        self,
        request: PublishRequest,
        plan: CompiledPlan,
        trace: RequestTrace,
        result_key: str,
        current_versions: dict[str, int],
        deadline: Optional[Deadline] = None,
    ) -> Optional[str]:
        """One incremental refresh attempt; ``None`` means fall back to full.

        Snapshot discipline (the read-then-stamp race): dirty-node
        selection, the delta queries, and the published version stamp
        must all agree on one version vector. The vector is read before
        syncing the pool (so the pool can only be *at or ahead of* it),
        and re-read after the splice: if any tracked table advanced in
        between, the pool snapshot may contain writes the dirty-node
        selection never saw — the splice is discarded and the request
        recomputes in full (which is point-consistent with the pool
        snapshot regardless). On success the entry is stamped with
        exactly the selection vector. The stale entry itself is never
        mutated: the splice builds a new document sharing untouched
        subtrees, so a failure mid-way leaves the cache untouched.
        """
        stale = self.result_cache.peek(result_key)
        if stale is None or not isinstance(stale.state, MaterializedState):
            self._record_delta_fallback("no-state")
            return None
        if self.maintenance == "fragment" and not isinstance(
            stale.fragments, FragmentCache
        ):
            # The entry predates fragment mode (or was stored by a path
            # that bypasses capture): recompute in full so the new entry
            # carries both state and a byte cache.
            self._record_delta_fallback("fragment-miss")
            return None
        versions = dict(current_versions)
        self._sync()
        live = self.tracker.versions(plan.tables)
        if live != versions:
            # Writes landed since classification: adopt the newer vector
            # as the selection snapshot and re-sync once.
            versions = live
            self._sync()
        changed = [
            t
            for t in plan.tables
            if versions.get(t, 0) > stale.versions.get(t, 0)
        ]
        if not changed:
            self._record_delta_fallback("no-change")
            return None
        # Row-level change detail (changed keys + columns) for the key
        # pushdown path. Computed against the live log, which may run
        # ahead of the selection vector — harmless, because any advance
        # past it is caught by the stamp-race check below.
        changes = self.tracker.changes_since(stale.versions, plan.tables)
        if deadline is None:
            deadline = Deadline.start(None)
        try:
            with self.pool.session() as db:
                with self._deadline_guard(db, deadline):
                    before = db.stats.snapshot()
                    stats = MaterializeStats()
                    execute_started = time.perf_counter()
                    result = DeltaEvaluator(db, stats=stats).evaluate(
                        plan.view,
                        stale.state,
                        plan.node_read_sets,
                        changed,
                        changes=changes,
                    )
                    trace.execute_seconds = (
                        time.perf_counter() - execute_started
                    )
                    after = db.stats.snapshot()
        except DeltaUnsupported:
            self._record_delta_fallback("unsupported")
            return None
        except DeadlineExceeded:
            # The time budget is gone: a full recompute cannot succeed
            # either, so let the resilience layer degrade or error.
            raise
        except Exception:
            # If the failure was really the deadline (e.g. an interrupt
            # surfacing as a wrapped OperationalError), re-raise it as
            # such — a full recompute cannot beat an expired budget.
            deadline.check()
            # A mid-splice failure of any kind must not surface as a
            # request error: the old entry is untouched (the splice
            # never mutates it), so falling back to a full recompute is
            # always safe — and what the fault-injection tests assert.
            self._record_delta_fallback("error")
            return None
        if self.tracker.versions(plan.tables) != versions:
            # A write raced the splice; the pool may be ahead of the
            # dirty-node selection. Discard the (possibly torn) result.
            self._record_delta_fallback("stamp-race")
            return None
        trace.queries_executed = (
            after["queries_executed"] - before["queries_executed"]
        )
        trace.rows_fetched = after["rows_fetched"] - before["rows_fetched"]
        trace.query_seconds = after["query_seconds"] - before["query_seconds"]
        trace.splice_seconds = result.splice_seconds
        trace.rows_spliced = result.rows_spliced
        trace.blocks_spliced = result.blocks_spliced
        trace.elements_created = stats.elements_created
        trace.attributes_created = stats.attributes_created
        trace.dirty_nodes = len(result.dirty_nodes)
        xml, fragments = self._serialize_response(
            trace, result.document, plan, result.state, stale
        )
        if self.keep_documents:
            trace.document = result.document
        self.result_cache.store(
            result_key,
            xml,
            versions,
            plan.tables,
            strategy=request.strategy,
            state=result.state,
            fragments=fragments,
        )
        return xml

    # -- execution -----------------------------------------------------------

    @contextmanager
    def _deadline_guard(self, db, deadline: Deadline):
        """Enforce ``deadline`` on one borrowed session.

        Cooperative: the engine's ``cancel_check`` hook raises
        :class:`DeadlineExceeded` (or
        :class:`~repro.errors.RequestCancelled` when the deadline
        carries a cancelled token) at the next query boundary. Hard: a
        timer calls the engine driver's ``cancel`` when the budget
        expires mid-statement — and a cancel-token callback does the
        same the moment the token fires — surfacing as a
        (transient-classified) interrupt error that the retry loop
        converts back into the real failure via the expired-budget /
        cancelled-token check. Timer and callback are disarmed before
        the session returns to the pool so they can never interrupt the
        next borrower.
        """
        token = deadline.token
        if deadline.budget_ms is None and token is None:
            yield
            return
        db.cancel_check = deadline.check
        # FaultyEngine wrappers delegate .driver/.connection through.
        armed: dict = {"connection": db.connection}
        driver = db.driver

        def hard_cutoff() -> None:
            target = armed.get("connection")
            if target is not None:
                driver.cancel(target)

        timer = None
        if deadline.budget_ms is not None:
            timer = threading.Timer(
                (deadline.remaining_ms() or 0.0) / 1000.0, hard_cutoff
            )
            timer.daemon = True
            timer.start()
        if token is not None:
            token.on_cancel(hard_cutoff)
        try:
            yield
        finally:
            armed.pop("connection", None)
            if timer is not None:
                timer.cancel()
            if token is not None:
                token.remove_callback(hard_cutoff)
            db.cancel_check = None

    def _serialize_response(
        self,
        trace: RequestTrace,
        document,
        plan: CompiledPlan,
        state: Optional[MaterializedState],
        prior,
    ) -> tuple[str, Optional[FragmentCache]]:
        """Serialize a response, timing it into the trace.

        The single serialization site for both the full and the delta
        path. Under fragment maintenance with captured ``state``, the
        ``prior`` entry's byte cache (when it has one) splices cached
        spans around re-walked fragments, the pinning policy picks the
        fragments the successor cache keeps, and that successor is
        returned to store with the new entry. Every other configuration
        is a plain timed :func:`serialize` returning ``None``. Either
        way the bytes are identical to ``serialize(document)``.

        ``serialize_seconds`` covers producing the bytes (walk, splice,
        and successor-span upkeep); the pinning-policy decision runs
        before the timer — it is cache management, priced into total
        latency but not into the serialization comparison.
        """
        if self.maintenance != "fragment" or state is None:
            started = time.perf_counter()
            xml = serialize(document)
            trace.serialize_seconds = time.perf_counter() - started
            return xml, None
        cache = (
            prior.fragments
            if prior is not None and isinstance(prior.fragments, FragmentCache)
            else FragmentCache()
        )
        pinned = self.fragment_policy.select(
            self._fragment_stats(plan, state, cache, prior)
        )
        started = time.perf_counter()
        xml, outcome, successor = cache.serialize_state(state, pinned)
        trace.serialize_seconds = time.perf_counter() - started
        trace.fragment_hits = outcome.hits
        trace.fragment_misses = outcome.misses
        trace.fragment_spliced_bytes = outcome.spliced_bytes
        with self._lock:
            self._fragment_hits += outcome.hits
            self._fragment_misses += outcome.misses
            self._fragment_spliced_bytes += outcome.spliced_bytes
            if outcome.hits:
                self._fragment_splices += 1
        return xml, successor

    def _fragment_stats(
        self,
        plan: CompiledPlan,
        state: MaterializedState,
        cache: FragmentCache,
        prior,
    ) -> list[FragmentStat]:
        """Per-node pinning signals for the fragment policy.

        ``reads`` is how often the prior entry was served (each serve
        would have copied the node's spans); ``writes`` is the tracker's
        version lag on the node's read set since the prior entry was
        stamped (the writes that invalidated spans); ``size`` and
        ``survival`` come from the prior cache's recorded bytes and
        measured span-reuse fractions. A fresh entry scores ``reads=1,
        writes=0, size=0, survival=None`` — optimistically pinnable
        until real numbers exist.
        """
        reads = float(prior.hits + 1) if prior is not None else 1.0
        stamped = prior.versions if prior is not None else {}
        stats: list[FragmentStat] = []
        for node_id in state.instances:
            tables = plan.node_read_sets.get(node_id)
            if tables is None:
                # Literal nodes and the synthetic root have no read set
                # (and the root's Document is not a spannable Element).
                continue
            writes = (
                float(self.tracker.lag(stamped, tables))
                if self.tracker is not None
                else 0.0
            )
            stats.append(
                FragmentStat(
                    node_id=node_id,
                    size=cache.bytes_by_node.get(node_id, 0),
                    reads=reads,
                    writes=writes,
                    survival=cache.survival(node_id),
                    parent_id=plan.node_parents.get(node_id),
                )
            )
        return stats

    def _serve(self, request: PublishRequest, request_id: int) -> RequestTrace:
        started = time.perf_counter()
        trace = RequestTrace(
            request_id=request_id,
            label=request.label,
            strategy=request.strategy,
            cache_hit=False,
            plan_key="",
            priority=request.priority,
            worker=threading.current_thread().name,
        )
        policy = self.resilience
        deadline = Deadline.start(
            policy.deadline_ms if policy is not None else None,
            token=request.cancel,
        )
        result_key = ""
        try:
            key = self.plan_key_for(request)
            trace.plan_key = key
            result_key = f"{key}:{request.strategy}"
            self._serve_inner(
                request, trace, key, result_key, started, deadline
            )
        except Exception as exc:
            # No exception leaves a worker: classify, try the
            # degraded-stale fallback, and record the outcome.
            self._handle_failure(request, trace, result_key, exc)
        trace.total_seconds = time.perf_counter() - started
        with self._lock:
            self.requests_served += 1
            self._freshness_counts[trace.freshness] += 1
            self._outcome_counts[trace.outcome] += 1
            self._priority_outcomes[trace.priority][trace.outcome] += 1
            self._inflight -= 1
        return trace

    def _serve_inner(
        self,
        request: PublishRequest,
        trace: RequestTrace,
        key: str,
        result_key: str,
        started: float,
        deadline: Deadline,
    ) -> None:
        if request.cancel is not None:
            # A request cancelled while still queued (a hedged loser
            # whose sibling already answered) must not burn a worker
            # on plan or cache work it will throw away.
            request.cancel.check()
        breaker = self.plan_cache.breaker
        # Gate compilation: an open breaker must not trigger a compile
        # storm for a plan that keeps failing. Resident plans skip this
        # (a plain cache read costs nothing worth protecting).
        if (
            breaker is not None
            and key not in self.plan_cache
            and not breaker.allow(key)
        ):
            raise CircuitOpen(key, breaker.retry_after_ms(key))
        plan, hit = self.plan_cache.get_or_build(
            key, lambda: self._compile(key, request)
        )
        trace.cache_hit = hit
        trace.plan_seconds = time.perf_counter() - started
        # -- result cache: consult before touching the pool. The
        # entry's version stamp is compared against the tracker's
        # live vector over the plan's read set; the staleness policy
        # decides whether cached bytes may be served.
        use_result_cache = (
            self.result_cache is not None and not request.bypass_cache
        )
        cached = None
        current_versions: dict[str, int] = {}
        if use_result_cache:
            current_versions = self.tracker.versions(plan.tables)
            cached, lag = self.result_cache.lookup(
                result_key, current_versions, self.staleness
            )
            trace.version_lag = lag
            trace.freshness = (
                "hit"
                if cached is not None
                else ("stale-recompute" if lag > 0 else "miss")
            )
        if cached is not None:
            # Policy-fresh cached bytes serve even under an open
            # breaker — the breaker guards computation, not reads.
            if self.keep_xml:
                trace.xml = cached.xml
            if self.keep_documents and isinstance(
                cached.state, MaterializedState
            ):
                trace.document = cached.state.document
            return
        # Gate computation (the breaker may have opened since the
        # compile gate, or the plan was resident and unguarded so far).
        if breaker is not None and not breaker.allow(key):
            raise CircuitOpen(key, breaker.retry_after_ms(key))
        delta_xml = None
        if (
            use_result_cache
            and self.maintenance in ("delta", "fragment")
            and trace.freshness == "stale-recompute"
        ):
            delta_xml = self._serve_delta(
                request, plan, trace, result_key, current_versions, deadline
            )
        if delta_xml is not None:
            trace.freshness = "delta-recompute"
            if self.keep_xml:
                trace.xml = delta_xml
            if breaker is not None:
                breaker.record_success(key)
            return
        self._compute_with_retries(
            request,
            plan,
            trace,
            key,
            result_key,
            use_result_cache,
            current_versions,
            deadline,
        )

    def _compute_with_retries(
        self,
        request: PublishRequest,
        plan: CompiledPlan,
        trace: RequestTrace,
        key: str,
        result_key: str,
        use_result_cache: bool,
        current_versions: dict[str, int],
        deadline: Deadline,
    ) -> None:
        """Full computation under the retry/backoff/breaker policy.

        Transient failures (busy/locked/disk-I/O, per
        :func:`repro.errors.classify_error`) are retried up to the
        policy's budget with exponential backoff + full jitter, capped
        by the request deadline; every failed attempt feeds the plan's
        circuit breaker, every success resets it. Permanent failures
        and expired deadlines raise immediately.
        """
        policy = self.resilience
        breaker = self.plan_cache.breaker
        attempt = 0
        while True:
            try:
                deadline.check()
                self._execute_full(
                    request,
                    plan,
                    trace,
                    use_result_cache,
                    current_versions,
                    result_key,
                    deadline,
                )
            except Exception as exc:
                if breaker is not None and not isinstance(
                    exc, (CircuitOpen, RequestCancelled)
                ):
                    breaker.record_failure(key)
                # An interrupt fired by the deadline timer (or a cancel
                # token) surfaces as a transient 'interrupted' error;
                # the expired budget / cancellation is the real
                # failure, so re-raise it as such.
                if not isinstance(exc, (DeadlineExceeded, RequestCancelled)):
                    deadline.check()
                kind = classify_error(exc)
                budget = policy.retries if policy is not None else 0
                if kind != "transient" or attempt >= budget:
                    raise
                attempt += 1
                trace.retries = attempt
                with self._lock:
                    self._retries_total += 1
                delay_ms = policy.backoff_ms(attempt)
                remaining = deadline.remaining_ms()
                if remaining is not None:
                    delay_ms = min(delay_ms, remaining)
                if delay_ms > 0:
                    time.sleep(delay_ms / 1000.0)
                continue
            if breaker is not None:
                breaker.record_success(key)
            return

    def _execute_full(
        self,
        request: PublishRequest,
        plan: CompiledPlan,
        trace: RequestTrace,
        use_result_cache: bool,
        current_versions: dict[str, int],
        result_key: str,
        deadline: Deadline,
    ) -> None:
        """One full-plan evaluation attempt (the pre-resilience path)."""
        # Recomputation must read data at least as fresh as the version
        # stamp it publishes — and a bypass_cache request promises live
        # data outright, so the pool syncs on every full execution (a
        # clock comparison when nothing changed).
        self._sync()
        capture: Optional[dict] = (
            {}
            if use_result_cache and self.maintenance in ("delta", "fragment")
            else None
        )
        with self.pool.session() as db:
            with self._deadline_guard(db, deadline):
                before = db.stats.snapshot()
                stats = MaterializeStats()
                if request.strategy == "bulk":
                    evaluator = BulkViewEvaluator(
                        db, stats=stats, capture_instances=capture
                    )
                else:
                    evaluator = ViewEvaluator(
                        db,
                        memoize=request.strategy == "memoized",
                        stats=stats,
                        capture_instances=capture,
                    )
                execute_started = time.perf_counter()
                document = evaluator.materialize(plan.view)
                trace.execute_seconds = time.perf_counter() - execute_started
                after = db.stats.snapshot()
        trace.queries_executed = (
            after["queries_executed"] - before["queries_executed"]
        )
        trace.rows_fetched = after["rows_fetched"] - before["rows_fetched"]
        trace.query_seconds = after["query_seconds"] - before["query_seconds"]
        trace.elements_created = stats.elements_created
        trace.attributes_created = stats.attributes_created
        trace.fallback_nodes = len(getattr(evaluator, "fallback_nodes", []))
        state = (
            MaterializedState(document, capture)
            if capture is not None
            else None
        )
        # A full recompute builds an all-new tree, so a prior entry's
        # spans cannot hit — but its serve/stamp history still feeds the
        # pinning policy, and the fresh walk records the new spans.
        prior = self.result_cache.peek(result_key) if use_result_cache else None
        xml, fragments = self._serialize_response(
            trace, document, plan, state, prior
        )
        if self.keep_xml:
            trace.xml = xml
        if self.keep_documents:
            trace.document = document
        if use_result_cache:
            self.result_cache.store(
                result_key,
                xml,
                current_versions,
                plan.tables,
                strategy=request.strategy,
                state=state,
                fragments=fragments,
            )

    # -- failure handling ----------------------------------------------------

    def _can_degrade(self, request: PublishRequest) -> bool:
        """Whether a failed request may serve last-known-good bytes.

        Requires an active resilience policy with ``degraded`` on, a
        result cache to fall back to, and — crucially — a staleness
        policy other than ``strict``: strict means *served bytes are
        never stale*, and a degraded serve would silently break that
        contract, so strict servers error instead.
        """
        policy = self.resilience
        return (
            policy is not None
            and policy.degraded
            and self.result_cache is not None
            and not request.bypass_cache
            and self.staleness.kind != "strict"
        )

    def _handle_failure(
        self,
        request: PublishRequest,
        trace: RequestTrace,
        result_key: str,
        exc: Exception,
    ) -> None:
        """Classify a request failure and degrade or record the error."""
        kind = classify_error(exc)
        if kind == "cancelled":
            # Intentional abandonment (hedged loser): no degraded
            # fallback — the winning attempt serves the response — and
            # no error count; the trace records why it stopped.
            trace.outcome = "cancelled"
            trace.error = str(exc)
            with self._lock:
                self._cancelled_requests += 1
            return
        if kind == "deadline":
            trace.outcome = "deadline"
            with self._lock:
                self._deadline_hits += 1
        elif kind == "rejected":
            trace.outcome = "rejected"
        else:
            trace.outcome = "error"
        if result_key and self._can_degrade(request):
            entry = self.result_cache.peek(result_key)
            if entry is not None:
                trace.freshness = "degraded-stale"
                trace.version_lag = (
                    self.tracker.lag(entry.versions, entry.tables)
                    if self.tracker is not None
                    else 0
                )
                trace.outcome = "degraded"
                trace.degraded_cause = f"{type(exc).__name__}: {exc}"
                trace.error = None
                if self.keep_xml:
                    trace.xml = entry.xml
                if self.keep_documents and isinstance(
                    entry.state, MaterializedState
                ):
                    trace.document = entry.state.document
                with self._lock:
                    self._degraded_serves += 1
                return
        trace.error = str(exc)
        with self._lock:
            self.errors += 1

    # -- metrics / lifecycle -------------------------------------------------

    def metrics(self) -> dict:
        """Server-lifetime counters: requests, caches, and engine work.

        The request counters and freshness histogram are read under the
        server lock (one consistent snapshot, matching the cache
        ``stats()`` discipline); tracked servers additionally report the
        result cache, the staleness policy, and the tracker's state.
        """
        aggregate = self.pool.aggregate_stats()
        with self._lock:
            requests_served = self.requests_served
            errors = self.errors
            freshness = dict(self._freshness_counts)
            outcomes = dict(self._outcome_counts)
            fallback_reasons = dict(self._delta_fallback_reasons)
            fragment_hits = self._fragment_hits
            fragment_misses = self._fragment_misses
            fragment_splices = self._fragment_splices
            fragment_spliced_bytes = self._fragment_spliced_bytes
            retries_total = self._retries_total
            deadline_hits = self._deadline_hits
            shed_requests = self._shed_requests
            degraded_serves = self._degraded_serves
            cancelled_requests = self._cancelled_requests
            priority_outcomes = {
                priority: dict(counts)
                for priority, counts in self._priority_outcomes.items()
            }
            priority_shed = dict(self._priority_shed)
        metrics = {
            "requests_served": requests_served,
            "errors": errors,
            "workers": self.workers,
            "cache": self.plan_cache.stats(),
            "freshness": freshness,
            "outcomes": outcomes,
            "cancelled": cancelled_requests,
            "priority": {
                priority: {
                    "outcomes": priority_outcomes[priority],
                    "shed": priority_shed[priority],
                    "admission_limit": self.admission_limit(priority),
                }
                for priority in PRIORITIES
            },
            "queries_executed": aggregate.queries_executed,
            "rows_fetched": aggregate.rows_fetched,
        }
        if self.result_cache is not None:
            metrics["result_cache"] = self.result_cache.stats()
            metrics["staleness_policy"] = self.staleness.describe()
            metrics["maintenance"] = self.maintenance
            # Total kept as a plain int for existing consumers; the
            # by-reason breakdown says why each delta degraded to full.
            metrics["delta_fallbacks"] = sum(fallback_reasons.values())
            metrics["delta_fallbacks_by_reason"] = fallback_reasons
            metrics["tracker"] = {
                "total_writes": self.tracker.clock(),
                "versions": self.tracker.snapshot(),
            }
            if self.maintenance == "fragment":
                # hits/misses count fragments spliced vs walked across
                # all serializations; splices counts serializations that
                # reused at least one cached span.
                metrics["fragments"] = {
                    "policy": self.fragment_policy.describe(),
                    "hits": fragment_hits,
                    "misses": fragment_misses,
                    "splices": fragment_splices,
                    "spliced_bytes": fragment_spliced_bytes,
                }
        if self.resilience is not None:
            breaker = self.plan_cache.breaker
            metrics["resilience"] = {
                "policy": self.resilience.describe(),
                "retries": retries_total,
                "deadline_hits": deadline_hits,
                "shed_requests": shed_requests,
                "degraded_serves": degraded_serves,
                "breaker": breaker.stats() if breaker is not None else None,
            }
        if self.faults is not None:
            metrics["faults"] = self.faults.stats()
        return metrics

    def close(self) -> None:
        """Shut the executor down and close every pooled connection."""
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=True)
        self.pool.close()

    def __enter__(self) -> "ViewServer":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

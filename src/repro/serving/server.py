"""Long-lived concurrent publishing server.

:class:`ViewServer` is the serving-path counterpart of the one-shot
``python -m repro materialize`` pipeline: it keeps compiled plans
(composed + pruned stylesheet views with their printed SQL) in a
content-addressed :class:`~repro.serving.plan_cache.PlanCache`, and
executes materialization requests concurrently on a
``ThreadPoolExecutor`` whose workers draw read-only connections — each
with its own :class:`~repro.relational.engine.QueryStats` — from a
:class:`~repro.serving.pool.ConnectionPool`.

Every request produces a :class:`RequestTrace`: where the time went
(plan acquisition vs execution vs serialization), how much engine work
it did (queries, rows), how much output it built (elements,
attributes), which strategy ran, and whether the plan came from cache.
The ``python -m repro serve-bench`` command and harness experiment E13
aggregate these traces into throughput and latency percentiles.

Equivalence guarantee: a served request returns byte-identical XML to a
serial :func:`repro.schema_tree.evaluator.materialize` of the same
composed view on the same data — the property suite in
``tests/serving/test_concurrent_equivalence.py`` checks this for all
three strategies under 8-way concurrency.

Update awareness: constructed with a
:class:`~repro.maintenance.tracker.WriteTracker`, the server also
memoizes serialized responses in a
:class:`~repro.maintenance.result_cache.ResultCache` keyed by plan
fingerprint + strategy and stamped with the plan's base-table version
vector; a :class:`~repro.maintenance.policy.StalenessPolicy` decides
whether cached bytes may be served or must be recomputed over
re-synced live data. Under the ``strict`` policy the equivalence
guarantee extends across interleaved base-data writes (the property
suite in ``tests/maintenance/test_freshness_property.py``).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.errors import ReproError
from repro.maintenance.incremental import (
    MAINTENANCE_MODES,
    DeltaEvaluator,
    DeltaUnsupported,
    MaterializedState,
)
from repro.maintenance.policy import StalenessPolicy
from repro.maintenance.result_cache import ResultCache
from repro.maintenance.tracker import WriteTracker
from repro.relational.engine import Database
from repro.relational.schema import Catalog
from repro.schema_tree.bulk_evaluator import BulkViewEvaluator
from repro.schema_tree.evaluator import (
    STRATEGIES,
    MaterializeStats,
    ViewEvaluator,
)
from repro.schema_tree.model import SchemaTreeQuery
from repro.serving.fingerprint import (
    fingerprint_catalog,
    node_read_sets,
    plan_key,
    view_read_set,
)
from repro.serving.plan_cache import CompiledPlan, PlanCache
from repro.serving.pool import ConnectionPool
from repro.sql.printer import print_select
from repro.xmlcore.serializer import serialize
from repro.xslt.model import Stylesheet

#: RequestTrace.freshness values, in the order metrics report them.
#: ``delta-recompute`` is a stale entry refreshed incrementally (dirty
#: schema nodes only) instead of by a full plan re-run — see
#: :mod:`repro.maintenance.incremental`.
FRESHNESS_STATES = ("hit", "miss", "stale-recompute", "delta-recompute", "bypass")


@dataclass
class PublishRequest:
    """One materialization request against the server's database.

    ``stylesheet=None`` serves the publishing view itself; otherwise the
    stylesheet is composed with the view (and pruned, unless ``prune``
    is off) the first time this content triple is seen.
    """

    view: SchemaTreeQuery
    stylesheet: Optional[Stylesheet] = None
    strategy: str = "nested-loop"
    prune: bool = True
    paper_mode: bool = False
    label: str = ""
    #: Skip the result cache entirely (read and write) for this request;
    #: the response is always computed from live data. Traces record it
    #: as ``freshness="bypass"``.
    bypass_cache: bool = False


@dataclass
class RequestTrace:
    """Per-request record of work done and where the time went.

    ``plan_seconds`` is the time this request spent *obtaining* its
    compiled plan — near zero on a cache hit, the full compose cost on
    the miss that compiled it (also recorded on the plan itself as
    ``compose_seconds``).
    """

    request_id: int
    label: str
    strategy: str
    cache_hit: bool
    plan_key: str
    #: Result-cache outcome: ``hit`` (cached bytes served), ``miss`` (no
    #: entry, computed and stored), ``stale-recompute`` (entry too old
    #: for the staleness policy, recomputed), or ``bypass`` (result
    #: caching off for this server/request).
    freshness: str = "bypass"
    #: Write events on the plan's read set since the consulted cache
    #: entry was stamped (0 on miss/bypass). On a ``hit`` this is the
    #: staleness actually served — bounded policies keep it <= max_lag.
    version_lag: int = 0
    #: On a ``delta-recompute``: how many schema nodes the write set
    #: dirtied (the re-executed frontier plus its subsumed descendants).
    #: ``rows_fetched`` then counts only the rows the delta re-fetched.
    dirty_nodes: int = 0
    plan_seconds: float = 0.0
    execute_seconds: float = 0.0
    serialize_seconds: float = 0.0
    total_seconds: float = 0.0
    queries_executed: int = 0
    rows_fetched: int = 0
    elements_created: int = 0
    attributes_created: int = 0
    fallback_nodes: int = 0
    worker: str = ""
    error: Optional[str] = None
    xml: Optional[str] = None

    def to_dict(self, include_xml: bool = False) -> dict:
        """JSON-ready form of the trace (XML omitted unless asked)."""
        record = {
            "request_id": self.request_id,
            "label": self.label,
            "strategy": self.strategy,
            "cache_hit": self.cache_hit,
            "freshness": self.freshness,
            "version_lag": self.version_lag,
            "dirty_nodes": self.dirty_nodes,
            "plan_key": self.plan_key[:16],
            "plan_seconds": round(self.plan_seconds, 6),
            "execute_seconds": round(self.execute_seconds, 6),
            "serialize_seconds": round(self.serialize_seconds, 6),
            "total_seconds": round(self.total_seconds, 6),
            "queries_executed": self.queries_executed,
            "rows_fetched": self.rows_fetched,
            "elements_created": self.elements_created,
            "attributes_created": self.attributes_created,
            "fallback_nodes": self.fallback_nodes,
            "worker": self.worker,
            "error": self.error,
        }
        if include_xml:
            record["xml"] = self.xml
        return record


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    Small helper shared by ``serve-bench`` and experiment E13 so latency
    percentiles are computed identically everywhere; returns 0.0 for an
    empty sequence.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (q / 100.0)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


class ViewServer:
    """A concurrent publishing server over one relational database.

    Construct with either ``path`` (a sqlite database file, opened
    read-only ``workers`` times) or ``source`` (a live
    :class:`~repro.relational.engine.Database` snapshotted into a
    shared-cache clone — see :class:`~repro.serving.pool.ConnectionPool`).
    Requests are executed on a ``ThreadPoolExecutor`` with one pooled
    connection per worker; compiled plans are shared through an LRU
    :class:`~repro.serving.plan_cache.PlanCache` keyed by content
    fingerprints of (catalog, view, stylesheet, options).
    """

    def __init__(
        self,
        catalog: Catalog,
        path: Optional[str] = None,
        source: Optional[Database] = None,
        workers: int = 4,
        cache_capacity: int = 64,
        keep_xml: bool = True,
        tracker: Optional[WriteTracker] = None,
        staleness: "StalenessPolicy | str" = "strict",
        result_cache_capacity: int = 128,
        maintenance: str = "full",
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if maintenance not in MAINTENANCE_MODES:
            raise ReproError(
                f"unknown maintenance mode {maintenance!r} "
                f"(expected one of {', '.join(MAINTENANCE_MODES)})"
            )
        self.catalog = catalog
        self.workers = workers
        self.keep_xml = keep_xml
        self.plan_cache = PlanCache(cache_capacity)
        self.pool = ConnectionPool(catalog, path=path, source=source, size=workers)
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="viewserver"
        )
        self._catalog_fingerprint = fingerprint_catalog(catalog)
        self._lock = threading.Lock()
        self._next_request_id = 1
        self.requests_served = 0
        self.errors = 0
        self._closed = False
        # -- update awareness (repro.maintenance). With a tracker the
        # server memoizes serialized responses in a ResultCache and
        # checks their table-version stamps against the tracker before
        # serving; without one the serving path behaves exactly as
        # before (every request computes, freshness="bypass").
        self.tracker = tracker
        self.staleness = (
            StalenessPolicy.parse(staleness)
            if isinstance(staleness, str)
            else staleness
        )
        self.result_cache = (
            ResultCache(result_cache_capacity) if tracker is not None else None
        )
        # How stale entries are recomputed: "full" re-runs the whole
        # compiled plan, "delta" refreshes only the dirty schema nodes
        # (repro.maintenance.incremental) and falls back to full when
        # the splice declines. Only meaningful with a tracker.
        self.maintenance = maintenance
        self._delta_fallbacks = 0
        self._freshness_counts = {state: 0 for state in FRESHNESS_STATES}
        self._sync_lock = threading.Lock()
        # Clock at which the pool's data is known current. The pool
        # snapshot (clone mode) was taken just above, so writes recorded
        # up to now are included.
        self._synced_clock = tracker.clock() if tracker is not None else 0

    # -- request API ---------------------------------------------------------

    def submit(self, request: PublishRequest) -> "Future[RequestTrace]":
        """Enqueue a request; returns a future resolving to its trace."""
        if self._closed:
            raise RuntimeError("server is closed")
        if request.strategy not in STRATEGIES:
            raise ReproError(
                f"unknown strategy {request.strategy!r} "
                f"(expected one of {', '.join(STRATEGIES)})"
            )
        with self._lock:
            request_id = self._next_request_id
            self._next_request_id += 1
        return self._executor.submit(self._serve, request, request_id)

    def render(
        self,
        view: SchemaTreeQuery,
        stylesheet: Optional[Stylesheet] = None,
        strategy: str = "nested-loop",
        prune: bool = True,
        paper_mode: bool = False,
        label: str = "",
    ) -> RequestTrace:
        """Serve one request synchronously (submit + wait)."""
        return self.submit(
            PublishRequest(
                view=view,
                stylesheet=stylesheet,
                strategy=strategy,
                prune=prune,
                paper_mode=paper_mode,
                label=label,
            )
        ).result()

    def render_many(
        self, requests: Iterable[PublishRequest]
    ) -> list[RequestTrace]:
        """Serve a batch concurrently; traces come back in request order."""
        futures = [self.submit(request) for request in requests]
        return [future.result() for future in futures]

    # -- plan management -----------------------------------------------------

    def plan_key_for(self, request: PublishRequest) -> str:
        """The cache key a request resolves to (content fingerprint)."""
        return plan_key(
            self._catalog_fingerprint,
            request.view,
            request.stylesheet,
            prune=request.prune,
            paper_mode=request.paper_mode,
        )

    def invalidate(self, request: PublishRequest) -> bool:
        """Explicitly drop the compiled plan a request would use."""
        return self.plan_cache.invalidate(self.plan_key_for(request))

    def invalidate_tables(self, names: Iterable[str]) -> dict:
        """Drop every plan and cached result reading any of ``names``.

        The operator-facing invalidation API: under the ``manual``
        staleness policy this is what forces recomputation after writes;
        under any policy it is the right response to a schema-level
        change. Returns ``{"plans": n, "results": m}`` dropped counts.
        """
        names = list(names)
        dropped_results = (
            self.result_cache.invalidate_tables(names)
            if self.result_cache is not None
            else 0
        )
        return {
            "plans": self.plan_cache.invalidate_tables(names),
            "results": dropped_results,
        }

    def _compile(self, key: str, request: PublishRequest) -> CompiledPlan:
        from repro.core.compose import compose
        from repro.core.optimize import prune_stylesheet_view

        started = time.perf_counter()
        pruned_columns = 0
        if request.stylesheet is None:
            view = request.view
        else:
            view = compose(
                request.view,
                request.stylesheet,
                self.catalog,
                paper_mode=request.paper_mode,
            )
            if request.prune:
                pruned_columns = prune_stylesheet_view(
                    view, self.catalog
                ).columns_removed
        node_sql = {
            node.id: print_select(node.tag_query, placeholders=True)
            for node in view.nodes(include_root=False)
            if node.tag_query is not None
        }
        return CompiledPlan(
            key=key,
            view=view,
            node_sql=node_sql,
            compose_seconds=time.perf_counter() - started,
            pruned_columns=pruned_columns,
            tables=view_read_set(view),
            node_read_sets=node_read_sets(view),
        )

    # -- freshness -----------------------------------------------------------

    def _sync(self) -> None:
        """Bring the pool's data current with every tracked write so far.

        Cheap when nothing changed (one clock read, no lock). When the
        pool is behind, exactly one thread re-snapshots the source
        (:meth:`~repro.serving.pool.ConnectionPool.refresh`) while
        others wait on the sync lock; the synced clock is stamped with a
        value read *before* the snapshot, so it can only understate
        freshness — a conservative error that costs an extra refresh,
        never a stale strict response. Callers must not hold a pool
        session (the refresh drains the pool).
        """
        if self.tracker is None:
            return
        if self._synced_clock >= self.tracker.clock():
            return
        with self._sync_lock:
            observed = self.tracker.clock()
            if self._synced_clock >= observed:
                return
            self.pool.refresh()
            self._synced_clock = observed

    def _record_delta_fallback(self) -> None:
        """Count one delta attempt that fell back to full recomputation."""
        with self._lock:
            self._delta_fallbacks += 1

    def _serve_delta(
        self,
        request: PublishRequest,
        plan: CompiledPlan,
        trace: RequestTrace,
        result_key: str,
        current_versions: dict[str, int],
    ) -> Optional[str]:
        """One incremental refresh attempt; ``None`` means fall back to full.

        Snapshot discipline (the read-then-stamp race): dirty-node
        selection, the delta queries, and the published version stamp
        must all agree on one version vector. The vector is read before
        syncing the pool (so the pool can only be *at or ahead of* it),
        and re-read after the splice: if any tracked table advanced in
        between, the pool snapshot may contain writes the dirty-node
        selection never saw — the splice is discarded and the request
        recomputes in full (which is point-consistent with the pool
        snapshot regardless). On success the entry is stamped with
        exactly the selection vector. The stale entry itself is never
        mutated: the splice builds a new document sharing untouched
        subtrees, so a failure mid-way leaves the cache untouched.
        """
        stale = self.result_cache.peek(result_key)
        if stale is None or not isinstance(stale.state, MaterializedState):
            self._record_delta_fallback()
            return None
        versions = dict(current_versions)
        self._sync()
        live = self.tracker.versions(plan.tables)
        if live != versions:
            # Writes landed since classification: adopt the newer vector
            # as the selection snapshot and re-sync once.
            versions = live
            self._sync()
        changed = [
            t
            for t in plan.tables
            if versions.get(t, 0) > stale.versions.get(t, 0)
        ]
        if not changed:
            self._record_delta_fallback()
            return None
        try:
            with self.pool.session() as db:
                before = db.stats.snapshot()
                stats = MaterializeStats()
                execute_started = time.perf_counter()
                result = DeltaEvaluator(db, stats=stats).evaluate(
                    plan.view, stale.state, plan.node_read_sets, changed
                )
                trace.execute_seconds = time.perf_counter() - execute_started
                after = db.stats.snapshot()
        except DeltaUnsupported:
            self._record_delta_fallback()
            return None
        except Exception:
            # A mid-splice failure of any kind must not surface as a
            # request error: the old entry is untouched (the splice
            # never mutates it), so falling back to a full recompute is
            # always safe — and what the fault-injection tests assert.
            self._record_delta_fallback()
            return None
        if self.tracker.versions(plan.tables) != versions:
            # A write raced the splice; the pool may be ahead of the
            # dirty-node selection. Discard the (possibly torn) result.
            self._record_delta_fallback()
            return None
        trace.queries_executed = (
            after["queries_executed"] - before["queries_executed"]
        )
        trace.rows_fetched = after["rows_fetched"] - before["rows_fetched"]
        trace.elements_created = stats.elements_created
        trace.attributes_created = stats.attributes_created
        trace.dirty_nodes = len(result.dirty_nodes)
        serialize_started = time.perf_counter()
        xml = serialize(result.document)
        trace.serialize_seconds = time.perf_counter() - serialize_started
        self.result_cache.store(
            result_key,
            xml,
            versions,
            plan.tables,
            strategy=request.strategy,
            state=result.state,
        )
        return xml

    # -- execution -----------------------------------------------------------

    def _serve(self, request: PublishRequest, request_id: int) -> RequestTrace:
        started = time.perf_counter()
        key = self.plan_key_for(request)
        trace = RequestTrace(
            request_id=request_id,
            label=request.label,
            strategy=request.strategy,
            cache_hit=False,
            plan_key=key,
            worker=threading.current_thread().name,
        )
        try:
            plan, hit = self.plan_cache.get_or_build(
                key, lambda: self._compile(key, request)
            )
            trace.cache_hit = hit
            trace.plan_seconds = time.perf_counter() - started
            # -- result cache: consult before touching the pool. The
            # entry's version stamp is compared against the tracker's
            # live vector over the plan's read set; the staleness policy
            # decides whether cached bytes may be served.
            use_result_cache = (
                self.result_cache is not None and not request.bypass_cache
            )
            cached = None
            current_versions: dict[str, int] = {}
            result_key = f"{key}:{request.strategy}"
            if use_result_cache:
                current_versions = self.tracker.versions(plan.tables)
                cached, lag = self.result_cache.lookup(
                    result_key, current_versions, self.staleness
                )
                trace.version_lag = lag
                trace.freshness = (
                    "hit"
                    if cached is not None
                    else ("stale-recompute" if lag > 0 else "miss")
                )
            if cached is not None:
                if self.keep_xml:
                    trace.xml = cached.xml
            else:
                delta_xml = None
                if (
                    use_result_cache
                    and self.maintenance == "delta"
                    and trace.freshness == "stale-recompute"
                ):
                    delta_xml = self._serve_delta(
                        request, plan, trace, result_key, current_versions
                    )
                if delta_xml is not None:
                    trace.freshness = "delta-recompute"
                    if self.keep_xml:
                        trace.xml = delta_xml
                else:
                    if use_result_cache:
                        # Recomputation must read data at least as fresh
                        # as the version stamp it publishes.
                        self._sync()
                    capture: Optional[dict] = (
                        {}
                        if use_result_cache and self.maintenance == "delta"
                        else None
                    )
                    with self.pool.session() as db:
                        before = db.stats.snapshot()
                        stats = MaterializeStats()
                        if request.strategy == "bulk":
                            evaluator = BulkViewEvaluator(
                                db, stats=stats, capture_instances=capture
                            )
                        else:
                            evaluator = ViewEvaluator(
                                db,
                                memoize=request.strategy == "memoized",
                                stats=stats,
                                capture_instances=capture,
                            )
                        execute_started = time.perf_counter()
                        document = evaluator.materialize(plan.view)
                        trace.execute_seconds = (
                            time.perf_counter() - execute_started
                        )
                        after = db.stats.snapshot()
                    trace.queries_executed = (
                        after["queries_executed"] - before["queries_executed"]
                    )
                    trace.rows_fetched = (
                        after["rows_fetched"] - before["rows_fetched"]
                    )
                    trace.elements_created = stats.elements_created
                    trace.attributes_created = stats.attributes_created
                    trace.fallback_nodes = len(
                        getattr(evaluator, "fallback_nodes", [])
                    )
                    serialize_started = time.perf_counter()
                    xml = serialize(document)
                    trace.serialize_seconds = (
                        time.perf_counter() - serialize_started
                    )
                    if self.keep_xml:
                        trace.xml = xml
                    if use_result_cache:
                        self.result_cache.store(
                            result_key,
                            xml,
                            current_versions,
                            plan.tables,
                            strategy=request.strategy,
                            state=(
                                MaterializedState(document, capture)
                                if capture is not None
                                else None
                            ),
                        )
        except ReproError as exc:
            trace.error = str(exc)
            with self._lock:
                self.errors += 1
        trace.total_seconds = time.perf_counter() - started
        with self._lock:
            self.requests_served += 1
            self._freshness_counts[trace.freshness] += 1
        return trace

    # -- metrics / lifecycle -------------------------------------------------

    def metrics(self) -> dict:
        """Server-lifetime counters: requests, caches, and engine work.

        The request counters and freshness histogram are read under the
        server lock (one consistent snapshot, matching the cache
        ``stats()`` discipline); tracked servers additionally report the
        result cache, the staleness policy, and the tracker's state.
        """
        aggregate = self.pool.aggregate_stats()
        with self._lock:
            requests_served = self.requests_served
            errors = self.errors
            freshness = dict(self._freshness_counts)
        metrics = {
            "requests_served": requests_served,
            "errors": errors,
            "workers": self.workers,
            "cache": self.plan_cache.stats(),
            "freshness": freshness,
            "queries_executed": aggregate.queries_executed,
            "rows_fetched": aggregate.rows_fetched,
        }
        if self.result_cache is not None:
            with self._lock:
                delta_fallbacks = self._delta_fallbacks
            metrics["result_cache"] = self.result_cache.stats()
            metrics["staleness_policy"] = self.staleness.describe()
            metrics["maintenance"] = self.maintenance
            metrics["delta_fallbacks"] = delta_fallbacks
            metrics["tracker"] = {
                "total_writes": self.tracker.clock(),
                "versions": self.tracker.snapshot(),
            }
        return metrics

    def close(self) -> None:
        """Shut the executor down and close every pooled connection."""
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=True)
        self.pool.close()

    def __enter__(self) -> "ViewServer":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

"""Concurrent publishing server: compiled-plan cache + connection pool.

The paper's thesis is that composing a stylesheet with a publishing
view turns XSLT processing into parameterized SQL a relational engine
serves efficiently. This package supplies the serving half of that
claim: a long-lived :class:`ViewServer` that compiles each distinct
(catalog, view, stylesheet) triple **once** — caching the composed,
pruned view and its printed SQL in a content-addressed LRU
:class:`PlanCache` — and materializes requests concurrently on worker
threads, each holding its own read-only sqlite connection and its own
work counters (:class:`ConnectionPool`). Every request yields a
:class:`RequestTrace` for throughput/latency accounting (experiment
E13, ``python -m repro serve-bench``).
"""

from repro.serving.fingerprint import (
    clear_fingerprint_memo,
    fingerprint_catalog,
    fingerprint_stylesheet,
    fingerprint_text,
    fingerprint_view,
    node_read_sets,
    plan_key,
    view_read_set,
)
from repro.serving.plan_cache import CompiledPlan, PlanCache
from repro.serving.pool import ConnectionPool
from repro.serving.server import (
    DELTA_FALLBACK_REASONS,
    FRESHNESS_STATES,
    OUTCOMES,
    PRIORITIES,
    PublishRequest,
    RequestTrace,
    ViewServer,
    percentile,
)

__all__ = [
    "CompiledPlan",
    "ConnectionPool",
    "DELTA_FALLBACK_REASONS",
    "FRESHNESS_STATES",
    "OUTCOMES",
    "PRIORITIES",
    "PlanCache",
    "PublishRequest",
    "RequestTrace",
    "ViewServer",
    "clear_fingerprint_memo",
    "fingerprint_catalog",
    "fingerprint_stylesheet",
    "fingerprint_text",
    "fingerprint_view",
    "node_read_sets",
    "percentile",
    "plan_key",
    "view_read_set",
]

"""Parse stylesheet XML into the :mod:`repro.xslt.model` structures.

Accepts either a full ``<xsl:stylesheet>``/``<xsl:transform>`` document or
a bare sequence of ``<xsl:template>`` elements (the form the paper's
figures use). Namespace handling is prefix-literal: instruction elements
are recognized by the ``xsl:`` prefix, matching the figures.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import StylesheetParseError
from repro.xmlcore.nodes import Comment, Document, Element, Node, Text
from repro.xmlcore.parser import parse_document, parse_fragment
from repro.xpath.ast import ContextRef, Expr
from repro.xpath.parser import parse_expression, parse_path, parse_pattern
from repro.xslt.model import (
    ApplyTemplates,
    SortKey,
    Choose,
    ChooseWhen,
    CopyOf,
    DEFAULT_MODE,
    ForEach,
    IfInstruction,
    LiteralElement,
    OutputNode,
    Stylesheet,
    TemplateRule,
    TextOutput,
    ValueOf,
    WithParam,
    XslParam,
)

_XSL_PREFIX = "xsl:"


def parse_stylesheet(source: Union[str, Document]) -> Stylesheet:
    """Parse stylesheet text (or a pre-parsed document) into a model.

    Raises:
        StylesheetParseError: on structural problems (unknown instruction,
            missing required attribute, misplaced xsl:when, ...).
    """
    if isinstance(source, Document):
        top_nodes: list[Node] = list(source.children)
    else:
        text = source.strip()
        if text.startswith("<?xml") or text.startswith("<xsl:stylesheet") or text.startswith(
            "<xsl:transform"
        ):
            top_nodes = list(parse_document(text).children)
        else:
            top_nodes = parse_fragment(text)

    templates: list[Element] = []
    for node in top_nodes:
        if isinstance(node, Element):
            if node.tag in ("xsl:stylesheet", "xsl:transform"):
                templates.extend(
                    child
                    for child in node.child_elements()
                    if child.tag == "xsl:template"
                )
            elif node.tag == "xsl:template":
                templates.append(node)
            else:
                raise StylesheetParseError(
                    f"unexpected top-level element <{node.tag}>"
                )
    if not templates:
        raise StylesheetParseError("stylesheet contains no template rules")
    stylesheet = Stylesheet()
    for template in templates:
        stylesheet.add(_parse_template(template))
    return stylesheet


def _parse_template(element: Element) -> TemplateRule:
    match_text = element.get("match")
    if match_text is None:
        raise StylesheetParseError("xsl:template requires a match attribute")
    mode = element.get("mode", DEFAULT_MODE) or DEFAULT_MODE
    priority: Optional[float] = None
    priority_text = element.get("priority")
    if priority_text is not None:
        try:
            priority = float(priority_text)
        except ValueError:
            raise StylesheetParseError(
                f"bad priority {priority_text!r} on template {match_text!r}"
            )
    params: list[XslParam] = []
    body_nodes: list[Node] = []
    leading = True
    for child in element.children:
        if (
            leading
            and isinstance(child, Element)
            and child.tag == "xsl:param"
        ):
            params.append(_parse_param(child))
            continue
        if isinstance(child, Text) and not child.value.strip():
            continue
        leading = False
        body_nodes.append(child)
    output = _parse_body(body_nodes, match_text)
    return TemplateRule(
        match=parse_pattern(match_text),
        mode=mode,
        priority=priority,
        output=output,
        params=params,
    )


def _parse_param(element: Element) -> XslParam:
    name = element.get("name")
    if not name:
        raise StylesheetParseError("xsl:param requires a name attribute")
    select = element.get("select")
    default = parse_expression(select) if select is not None else None
    return XslParam(name, default)


def _parse_body(nodes: list[Node], context: str) -> list[OutputNode]:
    output: list[OutputNode] = []
    for node in nodes:
        parsed = _parse_output_node(node, context)
        if parsed is not None:
            output.append(parsed)
    return output


def _parse_output_node(node: Node, context: str) -> Optional[OutputNode]:
    if isinstance(node, Text):
        if node.value.strip():
            return TextOutput(node.value)
        return None
    if isinstance(node, Comment):
        return None
    if not isinstance(node, Element):
        raise StylesheetParseError(f"unexpected node {node!r} in template {context!r}")
    if node.tag.startswith(_XSL_PREFIX):
        return _parse_instruction(node, context)
    literal = LiteralElement(node.tag)
    for name, value in node.attributes.items():
        if "{" in value or "}" in value:
            literal.avt_attributes[name] = _parse_avt(value, context)
        else:
            literal.attributes[name] = value
    literal.children = _parse_body(list(node.children), context)
    return literal


def _parse_avt(value: str, context: str):
    """Parse an attribute value template (``{{``/``}}`` escape braces)."""
    from repro.xslt.model import AttributeValueTemplate

    segments: list = []
    buffer: list[str] = []
    position = 0
    length = len(value)
    while position < length:
        ch = value[position]
        if ch == "{":
            if value.startswith("{{", position):
                buffer.append("{")
                position += 2
                continue
            end = value.find("}", position)
            if end < 0:
                raise StylesheetParseError(
                    f"unterminated '{{' in attribute value template {value!r} "
                    f"(in template {context!r})"
                )
            if buffer:
                segments.append("".join(buffer))
                buffer.clear()
            segments.append(parse_expression(value[position + 1:end]))
            position = end + 1
            continue
        if ch == "}":
            if value.startswith("}}", position):
                buffer.append("}")
                position += 2
                continue
            raise StylesheetParseError(
                f"unmatched '}}' in attribute value template {value!r} "
                f"(in template {context!r})"
            )
        buffer.append(ch)
        position += 1
    if buffer:
        segments.append("".join(buffer))
    return AttributeValueTemplate(segments)


def _require(element: Element, attribute: str, context: str) -> str:
    value = element.get(attribute)
    if value is None:
        raise StylesheetParseError(
            f"<{element.tag}> requires a {attribute} attribute "
            f"(in template {context!r})"
        )
    return value


def _parse_instruction(element: Element, context: str) -> Optional[OutputNode]:
    name = element.tag[len(_XSL_PREFIX):]
    if name == "apply-templates":
        select_text = element.get("select", "*")
        mode = element.get("mode", DEFAULT_MODE) or DEFAULT_MODE
        with_params = []
        sorts = []
        for child in element.child_elements():
            if child.tag == "xsl:with-param":
                pname = _require(child, "name", context)
                pselect = _require(child, "select", context)
                with_params.append(WithParam(pname, parse_expression(pselect)))
            elif child.tag == "xsl:sort":
                order = child.get("order", "ascending")
                if order not in ("ascending", "descending"):
                    raise StylesheetParseError(
                        f"bad xsl:sort order {order!r} (in template {context!r})"
                    )
                data_type = child.get("data-type", "text")
                if data_type not in ("text", "number"):
                    raise StylesheetParseError(
                        f"bad xsl:sort data-type {data_type!r} "
                        f"(in template {context!r})"
                    )
                sorts.append(
                    SortKey(
                        _parse_value_select(child.get("select", ".")),
                        ascending=order == "ascending",
                        data_type=data_type,
                    )
                )
            else:
                raise StylesheetParseError(
                    f"unexpected <{child.tag}> under apply-templates"
                )
        return ApplyTemplates(parse_path(select_text), mode, with_params, sorts)
    if name == "value-of":
        select = _require(element, "select", context)
        return ValueOf(_parse_value_select(select))
    if name == "copy-of":
        select = _require(element, "select", context)
        return CopyOf(_parse_value_select(select))
    if name == "if":
        test = _require(element, "test", context)
        instruction = IfInstruction(parse_expression(test))
        instruction.children = _parse_body(list(element.children), context)
        return instruction
    if name == "choose":
        choose = Choose()
        for child in element.child_elements():
            if child.tag == "xsl:when":
                test = _require(child, "test", context)
                when = ChooseWhen(parse_expression(test))
                when.children = _parse_body(list(child.children), context)
                choose.whens.append(when)
            elif child.tag == "xsl:otherwise":
                choose.otherwise = _parse_body(list(child.children), context)
            else:
                raise StylesheetParseError(f"unexpected <{child.tag}> under xsl:choose")
        if not choose.whens:
            raise StylesheetParseError("xsl:choose requires at least one xsl:when")
        return choose
    if name == "for-each":
        select = _require(element, "select", context)
        for_each = ForEach(parse_path(select))
        body: list[Node] = []
        for child in element.children:
            if isinstance(child, Element) and child.tag == "xsl:sort":
                order = child.get("order", "ascending")
                data_type = child.get("data-type", "text")
                if order not in ("ascending", "descending") or data_type not in (
                    "text", "number",
                ):
                    raise StylesheetParseError(
                        f"bad xsl:sort attributes (in template {context!r})"
                    )
                for_each.sorts.append(
                    SortKey(
                        _parse_value_select(child.get("select", ".")),
                        ascending=order == "ascending",
                        data_type=data_type,
                    )
                )
                continue
            body.append(child)
        for_each.children = _parse_body(body, context)
        return for_each
    if name == "text":
        return TextOutput(
            "".join(c.value for c in element.children if isinstance(c, Text))
        )
    if name == "param":
        raise StylesheetParseError(
            "xsl:param is only allowed at the start of a template body"
        )
    raise StylesheetParseError(f"unsupported instruction <xsl:{name}>")


def _parse_value_select(select: str) -> Expr:
    """Parse a value-of/copy-of select; '.' stays a ContextRef."""
    text = select.strip()
    if text == ".":
        return ContextRef()
    return parse_expression(text)

"""XSLT substrate: stylesheet model, parser, and the PROCESS interpreter.

Implements Definitions 2-3 and Figure 5 of the paper: template rules with
match patterns, modes and priorities; output-tree fragments containing
``apply-templates``, ``value-of``/``copy-of``, flow control (``if``,
``choose``, ``for-each``) and parameters.

Output formatting follows the paper's publishing model (DESIGN.md,
semantics decision 1): ``<xsl:value-of select="."/>`` emits the context
*element* (tag and attributes), ``select="@a"`` emits the attribute value
as text. Standard string-value semantics are available via
``XSLTProcessor(string_value_mode=True)``.
"""

from repro.xslt.model import (
    ApplyTemplates,
    Choose,
    CopyOf,
    ForEach,
    IfInstruction,
    LiteralElement,
    OutputNode,
    Stylesheet,
    TemplateRule,
    TextOutput,
    ValueOf,
    WithParam,
    XslParam,
)
from repro.xslt.parser import parse_stylesheet
from repro.xslt.processor import ProcessStats, XSLTProcessor, apply_stylesheet

__all__ = [
    "ApplyTemplates",
    "Choose",
    "CopyOf",
    "ForEach",
    "IfInstruction",
    "LiteralElement",
    "OutputNode",
    "Stylesheet",
    "TemplateRule",
    "TextOutput",
    "ValueOf",
    "WithParam",
    "XslParam",
    "parse_stylesheet",
    "ProcessStats",
    "XSLTProcessor",
    "apply_stylesheet",
]

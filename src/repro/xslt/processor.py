"""The XSLT interpreter: function PROCESS of Figure 5.

Processing starts at the document root in the default mode and recursively
performs context transitions: find the highest-priority matching rule for
the context node and mode, instantiate its output fragment, and replace
each ``apply-templates`` with the concatenated results of processing the
selected nodes.

Semantics knobs:

* ``string_value_mode`` — ``False`` (default) uses the paper's publishing
  model for ``value-of`` (see DESIGN.md decision 1); ``True`` uses
  standard XPath string values.
* ``builtin_rules`` — what happens when no rule matches: ``"empty"``
  (default; the paper assumes built-ins are overridden, i.e. produce
  nothing) or ``"standard"`` (XSLT 1.0 built-ins: recurse into children,
  copy text).
* ``conflict_policy`` — ``"latest"`` (XSLT's recoverable behaviour: pick
  the last highest-priority rule) or ``"error"`` (raise
  :class:`~repro.errors.ConflictError`; ``XSLT_basic`` restriction 6
  forbids conflicts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import ConflictError, XSLTRuntimeError
from repro.xmlcore.nodes import Document, Element, Node, Text
from repro.xpath.ast import AttributeRef, ContextRef, Expr, PathExpr
from repro.xpath.evaluator import Value, XPathEvaluator
from repro.xslt.model import (
    ApplyTemplates,
    Choose,
    CopyOf,
    DEFAULT_MODE,
    ForEach,
    IfInstruction,
    LiteralElement,
    OutputNode,
    Stylesheet,
    TemplateRule,
    TextOutput,
    ValueOf,
)


@dataclass
class ProcessStats:
    """Work counters for one stylesheet run."""

    contexts_processed: int = 0
    rules_fired: int = 0
    elements_output: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.contexts_processed = 0
        self.rules_fired = 0
        self.elements_output = 0


class XSLTProcessor:
    """Evaluates a stylesheet over xmlcore documents."""

    def __init__(
        self,
        stylesheet: Stylesheet,
        string_value_mode: bool = False,
        builtin_rules: str = "empty",
        conflict_policy: str = "latest",
        max_depth: int = 500,
    ):
        if builtin_rules not in ("empty", "standard"):
            raise ValueError(f"unknown builtin_rules {builtin_rules!r}")
        if conflict_policy not in ("latest", "error"):
            raise ValueError(f"unknown conflict_policy {conflict_policy!r}")
        self.stylesheet = stylesheet
        self.string_value_mode = string_value_mode
        self.builtin_rules = builtin_rules
        self.conflict_policy = conflict_policy
        self.max_depth = max_depth
        self.stats = ProcessStats()

    # -- public API -----------------------------------------------------------

    def process_document(self, document: Document) -> Document:
        """Run the stylesheet; PROCESS(x, root, default-mode) of Figure 5."""
        result = Document()
        fragments = self._process(document, DEFAULT_MODE, {}, depth=0)
        result.extend(fragments)
        return result

    # -- PROCESS ---------------------------------------------------------------

    def _process(
        self,
        context: Union[Document, Element],
        mode: str,
        params: dict[str, Value],
        depth: int,
    ) -> list[Node]:
        if depth > self.max_depth:
            raise XSLTRuntimeError(
                f"maximum template recursion depth ({self.max_depth}) exceeded"
            )
        self.stats.contexts_processed += 1
        rule = self._find_rule(context, mode, params)
        if rule is None:
            return self._builtin(context, mode, depth)
        self.stats.rules_fired += 1
        env = dict(params)
        evaluator = XPathEvaluator(env)
        for param in rule.params:
            if param.name not in env:
                if param.default is not None:
                    env[param.name] = evaluator.evaluate(param.default, context)
                else:
                    env[param.name] = ""
        return self._instantiate(rule.output, context, env, depth)

    def _find_rule(
        self,
        context: Union[Document, Element],
        mode: str,
        params: dict[str, Value],
    ) -> Optional[TemplateRule]:
        evaluator = XPathEvaluator(params)

        def check(expr: Expr, node: Element) -> bool:
            return evaluator.check_predicate(expr, node)

        candidates = [
            rule
            for rule in self.stylesheet.rules_for_mode(mode)
            if rule.match.matches(context, check)
        ]
        if not candidates:
            return None
        best = max(r.effective_priority() for r in candidates)
        top = [r for r in candidates if r.effective_priority() == best]
        if len(top) > 1 and self.conflict_policy == "error":
            patterns = ", ".join(r.match.to_text() for r in top)
            raise ConflictError(
                f"conflicting template rules at priority {best}: {patterns}"
            )
        return max(top, key=lambda r: r.position)

    def _builtin(
        self, context: Union[Document, Element], mode: str, depth: int
    ) -> list[Node]:
        if self.builtin_rules == "empty":
            return []
        # Standard built-ins: recurse into element children in the same
        # mode; text nodes copy through.
        results: list[Node] = []
        for child in context.children:
            if isinstance(child, Element):
                results.extend(self._process(child, mode, {}, depth + 1))
            elif isinstance(child, Text):
                results.append(Text(child.value))
        return results

    # -- output instantiation ------------------------------------------------------

    def _instantiate(
        self,
        nodes: list[OutputNode],
        context: Union[Document, Element],
        env: dict[str, Value],
        depth: int,
    ) -> list[Node]:
        results: list[Node] = []
        for node in nodes:
            results.extend(self._instantiate_one(node, context, env, depth))
        return results

    def _instantiate_one(
        self,
        node: OutputNode,
        context: Union[Document, Element],
        env: dict[str, Value],
        depth: int,
    ) -> list[Node]:
        evaluator = XPathEvaluator(env)
        if isinstance(node, TextOutput):
            return [Text(node.text)]
        if isinstance(node, LiteralElement):
            element = Element(node.tag, dict(node.attributes))
            for name, template in node.avt_attributes.items():
                value = self._evaluate_avt(template, context, evaluator)
                if value is not None:
                    element.set(name, value)
            self.stats.elements_output += 1
            for child in node.children:
                if (
                    not self.string_value_mode
                    and isinstance(child, ValueOf)
                    and isinstance(child.select, AttributeRef)
                ):
                    # Publishing model (Section 4.3.1): value-of @a as a
                    # direct child attaches an attribute to this element.
                    if isinstance(context, Element):
                        value = context.attributes.get(child.select.name)
                        if value is not None:
                            element.set(child.select.name, value)
                    continue
                for produced in self._instantiate_one(child, context, env, depth):
                    element.append(produced)
            return [element]
        if isinstance(node, ApplyTemplates):
            selected = evaluator.select(node.select, context)
            if node.sorts:
                selected = _sort_selected(selected, node.sorts, evaluator)
            child_params: dict[str, Value] = {}
            for with_param in node.with_params:
                child_params[with_param.name] = evaluator.evaluate(
                    with_param.select, context
                )
            results: list[Node] = []
            for new_context in selected:
                if isinstance(new_context, (Element, Document)):
                    results.extend(
                        self._process(new_context, node.mode, child_params, depth + 1)
                    )
            return results
        if isinstance(node, (ValueOf, CopyOf)):
            return self._value_of(node, context, evaluator)
        if isinstance(node, IfInstruction):
            if evaluator.truth(evaluator.evaluate(node.test, context)):
                return self._instantiate(node.children, context, env, depth)
            return []
        if isinstance(node, Choose):
            for when in node.whens:
                if evaluator.truth(evaluator.evaluate(when.test, context)):
                    return self._instantiate(when.children, context, env, depth)
            return self._instantiate(node.otherwise, context, env, depth)
        if isinstance(node, ForEach):
            results = []
            targets = evaluator.select(node.select, context)
            if node.sorts:
                targets = _sort_selected(targets, node.sorts, evaluator)
            for selected in targets:
                if isinstance(selected, (Element, Document)):
                    results.extend(
                        self._instantiate(node.children, selected, env, depth)
                    )
            return results
        raise XSLTRuntimeError(f"cannot instantiate {type(node).__name__}")

    def _evaluate_avt(
        self, template, context, evaluator: XPathEvaluator
    ) -> Optional[str]:
        """Evaluate an attribute value template.

        Publishing model: a pure ``{@attr}`` template mirrors the data
        model — the attribute is *omitted* when the source attribute is
        absent (matching how the composed view omits NULL columns).
        Standard semantics (and any mixed template) always produce a
        string, with absent values contributing "".
        """
        from repro.xpath.ast import AttributeRef
        from repro.xslt.model import AttributeValueTemplate

        assert isinstance(template, AttributeValueTemplate)
        single = template.single_expression
        if (
            not self.string_value_mode
            and isinstance(single, AttributeRef)
        ):
            if isinstance(context, Element):
                return context.attributes.get(single.name)
            return None
        parts: list[str] = []
        for segment in template.segments:
            if isinstance(segment, str):
                parts.append(segment)
            else:
                parts.append(
                    evaluator.to_string(evaluator.evaluate(segment, context))
                )
        return "".join(parts)

    def _value_of(
        self,
        node: Union[ValueOf, CopyOf],
        context: Union[Document, Element],
        evaluator: XPathEvaluator,
    ) -> list[Node]:
        select = node.select
        if isinstance(select, ContextRef):
            if not isinstance(context, Element):
                return []
            if self.string_value_mode:
                return [Text(context.text_content())]
            # Publishing model: emit the context element itself. value-of
            # is shallow (tag + attributes); copy-of is deep.
            if isinstance(node, CopyOf):
                copy: Element = context.deep_copy()
            else:
                copy = context.shallow_copy()
            self.stats.elements_output += 1
            return [copy]
        if isinstance(select, AttributeRef):
            if isinstance(context, Element):
                value = context.attributes.get(select.name)
                if value is not None:
                    return [Text(value)]
            return []
        if isinstance(select, PathExpr):
            targets = evaluator.select_values(select.path, context)
            out: list[Node] = []
            for target in targets:
                if isinstance(target, Element):
                    if self.string_value_mode:
                        out.append(Text(target.text_content()))
                    elif isinstance(node, CopyOf):
                        out.append(target.deep_copy())
                        self.stats.elements_output += 1
                    else:
                        out.append(target.shallow_copy())
                        self.stats.elements_output += 1
                elif isinstance(target, str):
                    out.append(Text(target))
                if self.string_value_mode and out:
                    # Standard XSLT: value-of takes the first node only.
                    # The publishing model emits every selected element,
                    # matching the Figure 23 rewrite.
                    return out[:1]
            return out
        value = evaluator.evaluate(select, context)
        text = evaluator.to_string(value)
        return [Text(text)] if text else []


def _sort_selected(selected, sorts, evaluator: XPathEvaluator):
    """Apply xsl:sort keys to a selected node set (stable, multi-key)."""
    result = list(selected)
    # Later keys are minor: apply in reverse, relying on sort stability.
    for sort in reversed(sorts):
        def key(node, _sort=sort):
            value = evaluator.evaluate(_sort.select, node)
            if _sort.data_type == "number":
                number = evaluator.to_number(
                    evaluator.to_string(value)
                    if isinstance(value, list)
                    else value
                )
                # NaN/absent sorts first, per XSLT.
                return (0, 0.0) if number is None else (1, number)
            return evaluator.to_string(value)

        result.sort(key=key, reverse=not sort.ascending)
    return result


def apply_stylesheet(
    stylesheet: Stylesheet,
    document: Document,
    string_value_mode: bool = False,
    builtin_rules: str = "empty",
) -> Document:
    """One-shot convenience wrapper around :class:`XSLTProcessor`."""
    processor = XSLTProcessor(
        stylesheet,
        string_value_mode=string_value_mode,
        builtin_rules=builtin_rules,
    )
    return processor.process_document(document)

"""Stylesheet model: Definitions 2 and 3 of the paper.

A :class:`Stylesheet` is a list of :class:`TemplateRule`; each rule is the
4-tuple *(match, mode, priority, output)* where *output* is a tree of
:class:`OutputNode` values mirroring the rule body:

* :class:`LiteralElement` — a literal result element,
* :class:`TextOutput` — literal text,
* :class:`ApplyTemplates` — the 2-tuple *(select, mode)* of Definition 3,
  optionally carrying ``with-param`` bindings,
* :class:`ValueOf` / :class:`CopyOf` — value extraction,
* :class:`IfInstruction` / :class:`Choose` / :class:`ForEach` — flow
  control (outside ``XSLT_basic``; Section 5.2 rewrites lower them),
* :class:`XslParam` — an ``xsl:param`` declaration at the top of a rule.

The model is deliberately close to the paper's formalization so the
composition code reads like the pseudo-code in Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.xpath.ast import Expr, LocationPath
from repro.xpath.patterns import Pattern, default_priority

#: The mode value used when a rule or apply-templates has no mode attribute.
DEFAULT_MODE = ""


OutputNode = Union[
    "LiteralElement",
    "TextOutput",
    "ApplyTemplates",
    "ValueOf",
    "CopyOf",
    "IfInstruction",
    "Choose",
    "ForEach",
]


@dataclass
class AttributeValueTemplate:
    """An attribute value template: literal text with ``{expr}`` holes.

    ``segments`` interleaves plain strings and parsed expressions. The
    composable form is a single expression segment (``attr="{@col}"``);
    mixed templates are interpreter-only.
    """

    segments: list = field(default_factory=list)

    @property
    def single_expression(self):
        """The sole expression when the template is exactly ``{expr}``."""
        if len(self.segments) == 1 and not isinstance(self.segments[0], str):
            return self.segments[0]
        return None


@dataclass
class LiteralElement:
    """A literal result element in a rule body.

    ``attributes`` holds static values; ``avt_attributes`` holds
    attribute value templates (values containing ``{...}``) — the
    output-formatting extension Section 4.4 of the paper anticipates.
    """

    tag: str
    attributes: dict[str, str] = field(default_factory=dict)
    children: list[OutputNode] = field(default_factory=list)
    avt_attributes: dict[str, AttributeValueTemplate] = field(default_factory=dict)


@dataclass
class TextOutput:
    """Literal text in a rule body."""

    text: str


@dataclass
class WithParam:
    """An ``xsl:with-param`` under an ``apply-templates``."""

    name: str
    select: Expr


@dataclass
class SortKey:
    """An ``xsl:sort`` key under an apply-templates.

    ``data_type`` follows XSLT: "text" (default) or "number".
    """

    select: Expr
    ascending: bool = True
    data_type: str = "text"


@dataclass
class ApplyTemplates:
    """``<xsl:apply-templates select=... mode=...>`` (Definition 3),
    optionally carrying ``with-param`` bindings and ``xsl:sort`` keys."""

    select: LocationPath
    mode: str = DEFAULT_MODE
    with_params: list[WithParam] = field(default_factory=list)
    sorts: list[SortKey] = field(default_factory=list)


@dataclass
class ValueOf:
    """``<xsl:value-of select=...>``.

    In ``XSLT_basic`` the select is restricted to ``.`` or ``@attribute``
    (restriction 10); the general form is lowered by the Section 5.2.2
    rewrite before composition.
    """

    select: Expr


@dataclass
class CopyOf:
    """``<xsl:copy-of select=...>`` — same restriction as ValueOf."""

    select: Expr


@dataclass
class IfInstruction:
    """``<xsl:if test=...>`` with its body."""

    test: Expr
    children: list[OutputNode] = field(default_factory=list)


@dataclass
class ChooseWhen:
    """One ``<xsl:when>`` branch."""

    test: Expr
    children: list[OutputNode] = field(default_factory=list)


@dataclass
class Choose:
    """``<xsl:choose>`` with its when branches and optional otherwise."""

    whens: list[ChooseWhen] = field(default_factory=list)
    otherwise: list[OutputNode] = field(default_factory=list)


@dataclass
class ForEach:
    """``<xsl:for-each select=...>`` with its body and optional sorts."""

    select: LocationPath
    children: list[OutputNode] = field(default_factory=list)
    sorts: list["SortKey"] = field(default_factory=list)


@dataclass
class XslParam:
    """``<xsl:param name=... select=...>`` at the top of a rule body."""

    name: str
    default: Optional[Expr] = None


@dataclass
class TemplateRule:
    """One template rule (Definition 2)."""

    match: Pattern
    mode: str = DEFAULT_MODE
    priority: Optional[float] = None
    output: list[OutputNode] = field(default_factory=list)
    params: list[XslParam] = field(default_factory=list)
    #: position in the stylesheet; breaks priority ties (later wins).
    position: int = 0

    def effective_priority(self) -> float:
        """The explicit priority, or the XSLT default for the pattern."""
        if self.priority is not None:
            return self.priority
        return default_priority(self.match)

    def apply_templates_nodes(self) -> list[ApplyTemplates]:
        """All apply-templates nodes in the body, in document order
        (``apply(r)`` in the paper), descending through flow control."""
        found: list[ApplyTemplates] = []

        def visit(nodes: list[OutputNode]) -> None:
            for node in nodes:
                if isinstance(node, ApplyTemplates):
                    found.append(node)
                elif isinstance(node, LiteralElement):
                    visit(node.children)
                elif isinstance(node, IfInstruction):
                    visit(node.children)
                elif isinstance(node, Choose):
                    for when in node.whens:
                        visit(when.children)
                    visit(node.otherwise)
                elif isinstance(node, ForEach):
                    visit(node.children)

        visit(self.output)
        return found


@dataclass
class Stylesheet:
    """A stylesheet: the ordered set of template rules."""

    rules: list[TemplateRule] = field(default_factory=list)

    def __post_init__(self) -> None:
        for position, rule in enumerate(self.rules):
            rule.position = position

    def add(self, rule: TemplateRule) -> TemplateRule:
        """Append a rule, assigning its position; returns it."""
        rule.position = len(self.rules)
        self.rules.append(rule)
        return rule

    def size(self) -> int:
        """Number of rules (|x| in Section 4.5)."""
        return len(self.rules)

    def modes(self) -> list[str]:
        """The distinct modes used by rules, in first-use order."""
        seen: list[str] = []
        for rule in self.rules:
            if rule.mode not in seen:
                seen.append(rule.mode)
        return seen

    def rules_for_mode(self, mode: str) -> list[TemplateRule]:
        """The rules whose mode equals ``mode``, in order."""
        return [r for r in self.rules if r.mode == mode]

    def max_apply_templates(self) -> int:
        """``max_a`` of Section 4.5: most apply-templates in any one rule."""
        if not self.rules:
            return 0
        return max(len(r.apply_templates_nodes()) for r in self.rules)

"""Measured execution of the three strategies, with work counters."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.baseline.materialize import NaivePipeline
from repro.baseline.qtree import QTreeTranslator
from repro.core.compose import compose
from repro.core.hybrid import HybridExecutor
from repro.relational.engine import Database
from repro.relational.schema import Catalog
from repro.schema_tree.evaluator import ViewEvaluator
from repro.schema_tree.model import SchemaTreeQuery
from repro.xmlcore.canonical import canonical_form
from repro.xmlcore.nodes import Document
from repro.xslt.model import Stylesheet


@dataclass
class StrategyRun:
    """One measured execution."""

    strategy: str
    seconds: float
    queries: int
    elements_materialized: int
    document: Document
    compose_seconds: float = 0.0
    notes: list[str] = field(default_factory=list)

    def matches(self, other: "StrategyRun") -> bool:
        """Unordered structural equality of the two outputs."""
        return canonical_form(self.document, ordered=False) == canonical_form(
            other.document, ordered=False
        )


def run_naive(
    view: SchemaTreeQuery,
    stylesheet: Stylesheet,
    db: Database,
    builtin_rules: str = "empty",
) -> StrategyRun:
    """Materialize the full view, then interpret the stylesheet."""
    pipeline = NaivePipeline(view, stylesheet, builtin_rules=builtin_rules)
    start = time.perf_counter()
    result = pipeline.run(db)
    elapsed = time.perf_counter() - start
    return StrategyRun(
        strategy="naive",
        seconds=elapsed,
        queries=result.queries_executed,
        elements_materialized=result.elements_materialized,
        document=result.document,
    )


def run_composed(
    view: SchemaTreeQuery,
    stylesheet: Stylesheet,
    catalog: Catalog,
    db: Database,
    precomposed: Optional[SchemaTreeQuery] = None,
) -> StrategyRun:
    """Compose, then evaluate the stylesheet view.

    Composition time is reported separately (it is a one-time cost per
    view/stylesheet pair, amortized over every database instance).
    """
    compose_start = time.perf_counter()
    composed = precomposed or compose(view, stylesheet, catalog)
    compose_seconds = time.perf_counter() - compose_start
    queries_before = db.stats.queries_executed
    evaluator = ViewEvaluator(db)
    start = time.perf_counter()
    document = evaluator.materialize(composed)
    elapsed = time.perf_counter() - start
    return StrategyRun(
        strategy="composed",
        seconds=elapsed,
        queries=db.stats.queries_executed - queries_before,
        elements_materialized=evaluator.stats.elements_created,
        document=document,
        compose_seconds=compose_seconds,
    )


def run_qtree(
    view: SchemaTreeQuery,
    stylesheet: Stylesheet,
    catalog: Catalog,
    db: Database,
) -> StrategyRun:
    """The [7]-style path-translation baseline."""
    compose_start = time.perf_counter()
    translator = QTreeTranslator(view, stylesheet, catalog)
    compose_seconds = time.perf_counter() - compose_start
    start = time.perf_counter()
    result = translator.run(db)
    elapsed = time.perf_counter() - start
    return StrategyRun(
        strategy="qtree",
        seconds=elapsed,
        queries=result.queries_executed,
        elements_materialized=result.elements_materialized,
        document=result.document,
        compose_seconds=compose_seconds,
        notes=[f"{result.paths} path queries"],
    )


def run_hybrid(
    view: SchemaTreeQuery,
    stylesheet: Stylesheet,
    catalog: Catalog,
    db: Database,
    fallback_builtin_rules: str = "standard",
) -> StrategyRun:
    """The hybrid executor (used for recursive stylesheets)."""
    compose_start = time.perf_counter()
    executor = HybridExecutor(
        view, stylesheet, catalog,
        fallback_builtin_rules=fallback_builtin_rules,
    )
    compose_seconds = time.perf_counter() - compose_start
    queries_before = db.stats.queries_executed
    start = time.perf_counter()
    document = executor.execute(db)
    elapsed = time.perf_counter() - start
    return StrategyRun(
        strategy=f"hybrid/{executor.plan.kind}",
        seconds=elapsed,
        queries=db.stats.queries_executed - queries_before,
        elements_materialized=0,
        document=document,
        compose_seconds=compose_seconds,
        notes=list(executor.plan.notes),
    )

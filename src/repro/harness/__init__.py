"""Experiment harness: the evaluation the paper promised but never ran.

``repro.harness.experiments`` defines experiments E1-E8 (see DESIGN.md
for the index); each returns an :class:`~repro.harness.reporting.ExperimentResult`
that renders to the tables recorded in EXPERIMENTS.md. Run everything
with ``python -m repro.harness``.
"""

from repro.harness.runners import (
    StrategyRun,
    run_composed,
    run_hybrid,
    run_naive,
    run_qtree,
)
from repro.harness.reporting import ExperimentResult, render_markdown

__all__ = [
    "StrategyRun",
    "run_composed",
    "run_hybrid",
    "run_naive",
    "run_qtree",
    "ExperimentResult",
    "render_markdown",
]

"""Result tables, markdown rendering, and shared latency statistics.

Besides the :class:`ExperimentResult` tables recorded in
EXPERIMENTS.md, this module is the single home of the percentile
machinery every harness and CLI surface uses: :func:`percentile` (one
quantile), :func:`percentiles` (several at once), and
:func:`latency_summary_ms` (the canonical ``p50/p95/p99/max``
milliseconds dict that every ``--*-json`` report emits, E13 through
E19). Keeping one implementation here means latency numbers are
comparable across experiments by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

#: The quantiles every latency summary reports, in order.
SUMMARY_QUANTILES = (50.0, 95.0, 99.0)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    Shared by ``serve-bench``, ``load-bench``, and experiments E13-E19
    so latency percentiles are computed identically everywhere;
    returns 0.0 for an empty sequence.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (q / 100.0)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


def percentiles(
    values: Sequence[float], qs: Sequence[float] = SUMMARY_QUANTILES
) -> dict[float, float]:
    """Several percentiles over one sort of ``values`` (``{q: value}``)."""
    if not values:
        return {q: 0.0 for q in qs}
    ordered = sorted(values)
    out: dict[float, float] = {}
    for q in qs:
        if len(ordered) == 1:
            out[q] = ordered[0]
            continue
        rank = (len(ordered) - 1) * (q / 100.0)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        fraction = rank - low
        out[q] = ordered[low] + (ordered[high] - ordered[low]) * fraction
    return out


def latency_summary_ms(
    latencies_ms: Sequence[float], digits: int = 4
) -> dict[str, float]:
    """The canonical latency block of every harness JSON report.

    ``{"p50_ms", "p95_ms", "p99_ms", "max_ms", "count"}`` over
    millisecond samples — one shape for E13-E19 and the CLI benches so
    downstream tooling never guesses which percentiles exist.
    """
    values = percentiles(latencies_ms, SUMMARY_QUANTILES)
    return {
        "p50_ms": round(values[50.0], digits),
        "p95_ms": round(values[95.0], digits),
        "p99_ms": round(values[99.0], digits),
        "max_ms": round(max(latencies_ms), digits) if latencies_ms else 0.0,
        "count": len(latencies_ms),
    }


@dataclass
class ExperimentResult:
    """One experiment's table."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        """Append a row, formatting each value."""
        self.rows.append([_fmt(v) for v in values])

    def to_markdown(self) -> str:
        """Render the table as GitHub-flavored markdown."""
        lines = [f"### {self.experiment_id}: {self.title}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        for note in self.notes:
            lines.append("")
            lines.append(f"*{note}*")
        return "\n".join(lines)

    def to_console(self) -> str:
        """Render the table with aligned columns for terminals."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells))

        out = [f"== {self.experiment_id}: {self.title}", line(self.headers)]
        out.append(line(["-" * w for w in widths]))
        out.extend(line(row) for row in self.rows)
        out.extend(f"   note: {n}" for n in self.notes)
        return "\n".join(out)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.0f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def render_markdown(results: list[ExperimentResult], preamble: str = "") -> str:
    """Join experiment tables into one markdown document."""
    parts = []
    if preamble:
        parts.append(preamble)
    parts.extend(result.to_markdown() for result in results)
    return "\n\n".join(parts) + "\n"

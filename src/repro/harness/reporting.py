"""Result tables and markdown rendering for EXPERIMENTS.md."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class ExperimentResult:
    """One experiment's table."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        """Append a row, formatting each value."""
        self.rows.append([_fmt(v) for v in values])

    def to_markdown(self) -> str:
        """Render the table as GitHub-flavored markdown."""
        lines = [f"### {self.experiment_id}: {self.title}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        for note in self.notes:
            lines.append("")
            lines.append(f"*{note}*")
        return "\n".join(lines)

    def to_console(self) -> str:
        """Render the table with aligned columns for terminals."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells))

        out = [f"== {self.experiment_id}: {self.title}", line(self.headers)]
        out.append(line(["-" * w for w in widths]))
        out.extend(line(row) for row in self.rows)
        out.extend(f"   note: {n}" for n in self.notes)
        return "\n".join(out)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.0f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def render_markdown(results: list[ExperimentResult], preamble: str = "") -> str:
    """Join experiment tables into one markdown document."""
    parts = []
    if preamble:
        parts.append(preamble)
    parts.extend(result.to_markdown() for result in results)
    return "\n\n".join(parts) + "\n"

"""Experiments E1-E13 (the per-experiment index lives in DESIGN.md §5).

The paper has no evaluation section — these experiments measure exactly
the quantities its qualitative claims are about: end-to-end latency,
nodes materialized, selectivity behaviour, composition-time scaling (the
Section 4.5 complexity analysis), the multi-incoming-edge blowup, the
predicate pushdown of Section 5.1, and the recursion pushdown of
Section 5.3.

Every experiment takes a ``scale`` knob so the benchmark suite can run
them small while ``python -m repro.harness`` runs them at full size.
"""

from __future__ import annotations

import time

from repro.core.compose import compose
from repro.core.ctg import build_ctg
from repro.core.tvq import build_tvq
from repro.harness.reporting import ExperimentResult, latency_summary_ms
from repro.harness.runners import run_composed, run_hybrid, run_naive, run_qtree
from repro.relational.engine import Database
from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.workloads.paper import (
    figure1_view,
    figure4_stylesheet,
    figure17_stylesheet,
    qtree_compatible_stylesheet,
)
from repro.workloads.synthetic import (
    blowup_stylesheet,
    chain_catalog,
    chain_stylesheet,
    chain_view,
    fanout_catalog,
    fanout_stylesheet,
    fanout_view,
    populate_chain,
    populate_fanout,
)
from repro.xslt.parser import parse_stylesheet


def _hotel_db(factor: int) -> Database:
    return build_hotel_database(HotelDataSpec().scaled(factor))


def e1_end_to_end(scale_factors: list[int] | None = None) -> ExperimentResult:
    """E1: end-to-end latency, Composed vs Naive vs QTree."""
    result = ExperimentResult(
        "E1",
        "End-to-end latency on the Figure 1 view (QTree-compatible "
        "stylesheet), seconds",
        ["scale", "rows", "naive", "composed", "qtree",
         "composed==naive", "qtree==naive"],
        notes=[
            "The stylesheet avoids parent axes so the QTree baseline can "
            "run; its output is still wrong (leaf-only), which the last "
            "column records — exactly the deficiency Section 6 describes.",
        ],
    )
    stylesheet = qtree_compatible_stylesheet()
    for factor in scale_factors or [1, 2, 4, 8]:
        db = _hotel_db(factor)
        view = figure1_view(db.catalog)
        naive = run_naive(view, stylesheet, db)
        composed = run_composed(view, stylesheet, db.catalog, db)
        qtree = run_qtree(view, stylesheet, db.catalog, db)
        result.add_row(
            factor,
            HotelDataSpec().scaled(factor).approximate_rows(),
            naive.seconds,
            composed.seconds,
            qtree.seconds,
            composed.matches(naive),
            qtree.matches(naive),
        )
        db.close()
    return result


def e2_materialization(scale_factors: list[int] | None = None) -> ExperimentResult:
    """E2: nodes materialized — the paper's central qualitative claim."""
    result = ExperimentResult(
        "E2",
        "Elements materialized and queries executed (Figure 1 view + "
        "Figure 4 stylesheet)",
        ["scale", "naive elems", "composed elems", "ratio",
         "naive queries", "composed queries", "equal output"],
    )
    stylesheet = figure4_stylesheet()
    for factor in scale_factors or [1, 2, 4, 8]:
        db = _hotel_db(factor)
        view = figure1_view(db.catalog)
        naive = run_naive(view, stylesheet, db)
        composed = run_composed(view, stylesheet, db.catalog, db)
        ratio = (
            naive.elements_materialized / composed.elements_materialized
            if composed.elements_materialized
            else float("inf")
        )
        result.add_row(
            factor,
            naive.elements_materialized,
            composed.elements_materialized,
            f"{ratio:.1f}x",
            naive.queries,
            composed.queries,
            composed.matches(naive),
        )
        db.close()
    return result


def e3_selectivity(
    branches: int = 20, touched_values: list[int] | None = None
) -> ExperimentResult:
    """E3: stylesheet touching p of b branches of a fanout view."""
    result = ExperimentResult(
        "E3",
        f"Selectivity sweep over a {branches}-branch fanout view",
        ["branches touched", "naive s", "composed s",
         "naive elems", "composed elems", "equal output"],
        notes=[
            "The naive pipeline materializes every branch regardless; the "
            "composed view only runs queries for touched branches.",
        ],
    )
    catalog = fanout_catalog(branches)
    db = Database(catalog)
    populate_fanout(db, branches, roots=5, rows_per_branch=40)
    view = fanout_view(branches, catalog)
    for touched in touched_values or [1, 5, 10, branches]:
        stylesheet = fanout_stylesheet(branches, touched)
        naive = run_naive(view, stylesheet, db)
        composed = run_composed(view, stylesheet, catalog, db)
        result.add_row(
            touched,
            naive.seconds,
            composed.seconds,
            naive.elements_materialized,
            composed.elements_materialized,
            composed.matches(naive),
        )
    db.close()
    return result


def e4_compose_scaling_view(levels_values: list[int] | None = None) -> ExperimentResult:
    """E4: composition time vs view size (polynomial claim, Section 4.5)."""
    result = ExperimentResult(
        "E4",
        "Composition time vs view size (chain views, full-depth stylesheet)",
        ["view nodes |v|", "stylesheet rules |x|", "compose s", "TVQ nodes"],
    )
    for levels in levels_values or [2, 4, 8, 16, 32]:
        catalog = chain_catalog(levels)
        view = chain_view(levels, catalog)
        stylesheet = chain_stylesheet(levels)
        start = time.perf_counter()
        ctg = build_ctg(view, stylesheet)
        tvq = build_tvq(ctg, catalog)
        compose(view, stylesheet, catalog)
        elapsed = time.perf_counter() - start
        result.add_row(view.size(), stylesheet.size(), elapsed, tvq.size())
    return result


def e5_compose_scaling_stylesheet(
    levels: int = 24, depths: list[int] | None = None
) -> ExperimentResult:
    """E5: composition time vs stylesheet size on a fixed view."""
    result = ExperimentResult(
        "E5",
        f"Composition time vs stylesheet size (fixed {levels}-level chain view)",
        ["stylesheet rules |x|", "compose s", "TVQ nodes"],
    )
    catalog = chain_catalog(levels)
    view = chain_view(levels, catalog)
    for depth in depths or [2, 6, 12, 18, 24]:
        stylesheet = chain_stylesheet(levels, selected_levels=depth)
        start = time.perf_counter()
        ctg = build_ctg(view, stylesheet)
        tvq = build_tvq(ctg, catalog)
        compose(view, stylesheet, catalog)
        elapsed = time.perf_counter() - start
        result.add_row(stylesheet.size(), elapsed, tvq.size())
    return result


def e6_tvq_blowup(levels_values: list[int] | None = None) -> ExperimentResult:
    """E6: multi-incoming-edge blowup (worst case of Section 4.2.2/4.5)."""
    result = ExperimentResult(
        "E6",
        "TVQ blowup: every rule applies templates twice to the next level",
        ["chain levels k", "CTG nodes", "TVQ nodes (expect ~2^k)", "compose s"],
        notes=[
            "The CTG stays linear in k while the unfolded TVQ doubles per "
            "level — the exponential duplication of Section 4.2.2.",
        ],
    )
    for levels in levels_values or [2, 4, 6, 8, 10, 12]:
        catalog = chain_catalog(levels)
        view = chain_view(levels, catalog)
        stylesheet = blowup_stylesheet(levels)
        start = time.perf_counter()
        ctg = build_ctg(view, stylesheet)
        tvq = build_tvq(ctg, catalog, max_nodes=100_000)
        compose(view, stylesheet, catalog, max_nodes=100_000)
        elapsed = time.perf_counter() - start
        result.add_row(levels, len(ctg.nodes), tvq.size(), elapsed)
    return result


def e7_predicates(scale_factors: list[int] | None = None) -> ExperimentResult:
    """E7: predicate pushdown (Section 5.1, the Figure 17 stylesheet)."""
    result = ExperimentResult(
        "E7",
        "Predicate pushdown: Figure 17 stylesheet (selective predicates)",
        ["scale", "naive s", "composed s", "naive elems", "composed elems",
         "equal output"],
        notes=[
            "Predicates compose into WHERE/HAVING clauses, so the engine "
            "filters rows the naive pipeline materializes and discards.",
        ],
    )
    stylesheet = figure17_stylesheet()
    for factor in scale_factors or [1, 2, 4, 8]:
        db = _hotel_db(factor)
        view = figure1_view(db.catalog)
        naive = run_naive(view, stylesheet, db)
        composed = run_composed(view, stylesheet, db.catalog, db)
        result.add_row(
            factor,
            naive.seconds,
            composed.seconds,
            naive.elements_materialized,
            composed.elements_materialized,
            composed.matches(naive),
        )
        db.close()
    return result


_E8_TEMPLATE = """
<xsl:template match="/metro">
  <xsl:param name="idx" select="{depth}"/>
  <result_metro>
    <xsl:apply-templates select="hotel/hotel_available[@COUNT_a_id&gt;10]/metro_available[@COUNT_a_id&gt;$idx]">
      <xsl:with-param name="idx" select="$idx"/>
    </xsl:apply-templates>
  </result_metro>
</xsl:template>

<xsl:template match="metro_available">
  <xsl:param name="idx"/>
  <xsl:choose>
    <xsl:when test="$idx&lt;=1">
      <xsl:value-of select="."/>
    </xsl:when>
    <xsl:otherwise>
      <result_metroavail>
        <xsl:apply-templates select="self::[@COUNT_a_id&gt;50]/../../..">
          <xsl:with-param name="idx" select="$idx - 1"/>
        </xsl:apply-templates>
      </result_metroavail>
    </xsl:otherwise>
  </xsl:choose>
</xsl:template>
"""


def e8_recursion(depths: list[int] | None = None) -> ExperimentResult:
    """E8: recursion partial pushdown (Section 5.3) vs interpretation."""
    result = ExperimentResult(
        "E8",
        "Recursive stylesheet (Figure 25 shape): hybrid pushdown vs naive",
        ["recursion depth", "naive s", "hybrid s", "hybrid plan",
         "naive rounds", "hybrid rounds"],
        notes=[
            "The hybrid plan evaluates the two pushed-down sibling queries "
            "of Figure 26 and recurses between them (Figure 27); 'rounds' "
            "counts <result_metroavail> wrappers. Outputs differ in the "
            "wrapper structure exactly as the paper's example does — the "
            "round counts agree.",
        ],
    )
    spec = HotelDataSpec(
        metros=1, hotels_per_metro=4, guestrooms_per_hotel=10,
        availability_per_room=6,
    )
    for depth in depths or [2, 4, 6, 8]:
        db = build_hotel_database(spec)
        view = figure1_view(db.catalog)
        stylesheet = parse_stylesheet(_E8_TEMPLATE.format(depth=depth))
        naive = run_naive(view, stylesheet, db, builtin_rules="standard")
        hybrid = run_hybrid(view, stylesheet, db.catalog, db)
        from repro.xmlcore.serializer import serialize

        naive_rounds = serialize(naive.document).count("<result_metroavail")
        hybrid_rounds = serialize(hybrid.document).count("<result_metroavail")
        result.add_row(
            depth, naive.seconds, hybrid.seconds, hybrid.strategy,
            naive_rounds, hybrid_rounds,
        )
        db.close()
    return result


def e9_optimizer_ablation(scale_factors: list[int] | None = None) -> ExperimentResult:
    """E9 (ablation): dead-column elimination on composed views."""
    from repro.core.optimize import prune_stylesheet_view
    from repro.schema_tree.evaluator import ViewEvaluator

    result = ExperimentResult(
        "E9",
        "Ablation: dead-column elimination (Figure 4 composed view)",
        ["scale", "raw s", "pruned s", "columns removed", "equal output"],
        notes=[
            "Unbinding carries every ancestor column (the TEMP.* shape); "
            "pruning keeps only attribute and parameter columns.",
        ],
    )
    stylesheet = figure4_stylesheet()
    for factor in scale_factors or [1, 4, 8]:
        db = _hotel_db(factor)
        view = figure1_view(db.catalog)
        raw = compose(view, stylesheet, db.catalog)
        pruned = compose(view, stylesheet, db.catalog)
        report = prune_stylesheet_view(pruned, db.catalog)
        start = time.perf_counter()
        raw_doc = ViewEvaluator(db).materialize(raw)
        raw_seconds = time.perf_counter() - start
        start = time.perf_counter()
        pruned_doc = ViewEvaluator(db).materialize(pruned)
        pruned_seconds = time.perf_counter() - start
        from repro.xmlcore.canonical import canonical_form

        equal = canonical_form(raw_doc, ordered=False) == canonical_form(
            pruned_doc, ordered=False
        )
        result.add_row(
            factor, raw_seconds, pruned_seconds, report.columns_removed, equal
        )
        db.close()
    return result


def e10_memoization(scale_factors: list[int] | None = None) -> ExperimentResult:
    """E10 (ablation): memoized vs nested-loop view evaluation."""
    from repro.schema_tree.evaluator import ViewEvaluator
    from repro.xmlcore.canonical import canonical_form

    result = ExperimentResult(
        "E10",
        "Ablation: tag-query memoization during materialization (Figure 1)",
        ["scale", "plain s", "memoized s", "plain queries",
         "memoized queries", "cache hits", "equal output"],
    )
    for factor in scale_factors or [1, 4, 8]:
        db = _hotel_db(factor)
        view = figure1_view(db.catalog)
        db.stats.reset()
        start = time.perf_counter()
        plain_doc = ViewEvaluator(db).materialize(view)
        plain_seconds = time.perf_counter() - start
        plain_queries = db.stats.queries_executed
        db.stats.reset()
        memoized = ViewEvaluator(db, memoize=True)
        start = time.perf_counter()
        memo_doc = memoized.materialize(view)
        memo_seconds = time.perf_counter() - start
        memo_queries = db.stats.queries_executed
        equal = canonical_form(plain_doc) == canonical_form(memo_doc)
        result.add_row(
            factor, plain_seconds, memo_seconds, plain_queries,
            memo_queries, memoized.stats.cache_hits, equal,
        )
        db.close()
    return result


def e11_document_order(scale_factors: list[int] | None = None) -> ExperimentResult:
    """E11 (ablation): the cost of deterministic document order.

    The same workload with and without ORDER BY keys on every tag query;
    ordered runs are compared with *ordered* equality against the
    interpreter (the paper's future-work item, implemented here).
    """
    from repro.schema_tree.builder import ViewBuilder
    from repro.schema_tree.evaluator import ViewEvaluator
    from repro.xmlcore.canonical import canonical_form
    from repro.xslt.processor import apply_stylesheet
    from repro.schema_tree.evaluator import materialize as _materialize

    result = ExperimentResult(
        "E11",
        "Ablation: ORDER BY keys on every tag query (ordered equivalence)",
        ["scale", "unordered s", "ordered s", "overhead",
         "ordered==naive (ordered compare)"],
    )

    def ordered_view(catalog):
        builder = ViewBuilder(catalog)
        metro = builder.node(
            "metro", "SELECT metroid, metroname FROM metroarea ORDER BY metroid",
            bv="m",
        )
        hotel = metro.child(
            "hotel",
            "SELECT * FROM hotel WHERE metro_id = $m.metroid "
            "AND starrating > 4 ORDER BY hotelid",
            bv="h",
        )
        hotel.child(
            "confroom",
            "SELECT * FROM confroom WHERE chotel_id = $h.hotelid ORDER BY c_id",
            bv="c",
        )
        return builder.build()

    def unordered_view(catalog):
        builder = ViewBuilder(catalog)
        metro = builder.node(
            "metro", "SELECT metroid, metroname FROM metroarea", bv="m"
        )
        hotel = metro.child(
            "hotel",
            "SELECT * FROM hotel WHERE metro_id = $m.metroid AND starrating > 4",
            bv="h",
        )
        hotel.child(
            "confroom",
            "SELECT * FROM confroom WHERE chotel_id = $h.hotelid",
            bv="c",
        )
        return builder.build()

    stylesheet = parse_stylesheet(
        '<xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>'
        '<xsl:template match="metro"><m><xsl:apply-templates select="hotel/confroom"/></m></xsl:template>'
        '<xsl:template match="confroom"><xsl:value-of select="."/></xsl:template>'
    )
    for factor in scale_factors or [1, 4, 8]:
        db = _hotel_db(factor)
        plain = compose(unordered_view(db.catalog), stylesheet, db.catalog)
        ordered = compose(ordered_view(db.catalog), stylesheet, db.catalog)
        start = time.perf_counter()
        ViewEvaluator(db).materialize(plain)
        plain_seconds = time.perf_counter() - start
        start = time.perf_counter()
        ordered_doc = ViewEvaluator(db).materialize(ordered)
        ordered_seconds = time.perf_counter() - start
        naive = apply_stylesheet(
            stylesheet, _materialize(ordered_view(db.catalog), db)
        )
        equal = canonical_form(naive, ordered=True) == canonical_form(
            ordered_doc, ordered=True
        )
        overhead = (
            f"{(ordered_seconds / plain_seconds - 1) * 100:+.0f}%"
            if plain_seconds > 0
            else "n/a"
        )
        result.add_row(factor, plain_seconds, ordered_seconds, overhead, equal)
        db.close()
    return result


def e12_bulk_eval(
    scale_factors: list[int] | None = None,
    json_path: str | None = None,
    repeats: int = 5,
) -> ExperimentResult:
    """E12: bulk decorrelated evaluation vs nested-loop vs memoized.

    The bulk strategy runs one decorrelated query per schema node (plus
    one correlated query per binding for fallback nodes) instead of one
    query per parent binding; sweeps the Figure 1 view and the Figure 4
    composed stylesheet view. Each strategy is timed ``repeats`` times
    and the best run is reported (standard practice to suppress scheduler
    noise; query/row counts are identical across repeats). With
    ``json_path`` the raw numbers are also written as
    ``{scale: {view: {strategy: {queries, rows, seconds}}}}``.
    """
    import json

    from repro.schema_tree.bulk_evaluator import BulkViewEvaluator
    from repro.schema_tree.evaluator import ViewEvaluator
    from repro.xmlcore.canonical import canonical_form

    result = ExperimentResult(
        "E12",
        "Bulk decorrelated evaluation: queries executed and seconds "
        "(Figure 1 view and Figure 4 composed view)",
        ["scale", "view", "strategy", "queries", "rows", "seconds",
         "speedup", "fallbacks", "equal output"],
        notes=[
            "'speedup' is nested-loop seconds over this strategy's "
            "seconds on the same view and scale; equality is canonical "
            "(unordered) against the nested-loop output.",
        ],
    )
    records: dict[int, dict[str, dict[str, dict[str, float]]]] = {}
    for factor in scale_factors or [1, 2, 4, 8, 16]:
        db = _hotel_db(factor)
        figure1 = figure1_view(db.catalog)
        composed = compose(figure1, figure4_stylesheet(), db.catalog)
        records[factor] = {}
        for view_name, view in [("figure1", figure1), ("composed", composed)]:
            records[factor][view_name] = {}
            baseline_doc = None
            baseline_seconds = None
            for strategy in ["nested-loop", "memoized", "bulk"]:
                seconds = None
                for _ in range(max(1, repeats)):
                    if strategy == "bulk":
                        evaluator = BulkViewEvaluator(db)
                    else:
                        evaluator = ViewEvaluator(
                            db, memoize=strategy == "memoized"
                        )
                    db.stats.reset()
                    start = time.perf_counter()
                    document = evaluator.materialize(view)
                    elapsed = time.perf_counter() - start
                    if seconds is None or elapsed < seconds:
                        seconds = elapsed
                    queries = db.stats.queries_executed
                    rows = db.stats.rows_fetched
                    fallbacks = len(getattr(evaluator, "fallback_nodes", []))
                if baseline_doc is None:
                    baseline_doc = canonical_form(document, ordered=False)
                    baseline_seconds = seconds
                    equal = True
                else:
                    equal = (
                        canonical_form(document, ordered=False)
                        == baseline_doc
                    )
                speedup = (
                    f"{baseline_seconds / seconds:.1f}x" if seconds else "inf"
                )
                result.add_row(
                    factor, view_name, strategy, queries, rows, seconds,
                    speedup, fallbacks, equal,
                )
                records[factor][view_name][strategy] = {
                    "queries": queries,
                    "rows": rows,
                    "seconds": round(seconds, 6),
                    "fallbacks": fallbacks,
                    "equal": equal,
                }
        db.close()
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(records, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return result


def e13_serving(
    scale: int = 8,
    workers_values: list[int] | None = None,
    requests: int = 40,
    json_path: str | None = None,
) -> ExperimentResult:
    """E13: concurrent serving with the compiled-plan cache.

    Sweeps worker count x execution strategy on a fixed-scale hotel
    database served by a :class:`~repro.serving.server.ViewServer`.
    Two phases per combination:

    * **cold** (workers=1 only) — the plan cache is cleared before every
      request, so each one pays the full compose + prune + print cost;
      this is the per-request pipeline a server without a plan cache
      would run, and the baseline the acceptance criterion compares
      against.
    * **warm** — the distinct plans are primed once, then all requests
      are issued concurrently; requests only execute SQL and build XML.

    With ``json_path`` the raw numbers land in ``BENCH_e13.json`` as
    ``{"runs": [...], "speedups": {strategy: warm_max_workers/cold_1}}``.
    """
    import json

    from repro.schema_tree.evaluator import STRATEGIES
    from repro.serving import (
        PublishRequest,
        ViewServer,
        clear_fingerprint_memo,
        percentile,
    )
    from repro.workloads.paper import figure17_stylesheet

    workers_values = workers_values or [1, 2, 4, 8]
    result = ExperimentResult(
        "E13",
        f"Concurrent serving (scale-{scale} hotel, Figure 1 view x "
        "Figure 4/17 stylesheets): throughput and latency",
        ["workers", "strategy", "phase", "requests", "seconds", "req/s",
         "p50 ms", "p95 ms", "hit rate"],
        notes=[
            "cold = plan cache cleared before every request (workers=1): "
            "each request pays compose+prune+print; warm = plans primed, "
            "requests issued concurrently.",
        ],
    )
    db = _hotel_db(scale)
    view = figure1_view(db.catalog)
    stylesheets = [figure4_stylesheet(), figure17_stylesheet()]
    runs: list[dict] = []
    cold_rps: dict[str, float] = {}
    warm_best_rps: dict[str, float] = {}
    for workers in workers_values:
        for strategy in STRATEGIES:
            phases = ("cold", "warm") if workers == 1 else ("warm",)
            for phase in phases:
                server = ViewServer(
                    db.catalog, source=db, workers=workers, keep_xml=False
                )
                try:
                    batch = [
                        PublishRequest(
                            view,
                            stylesheets[index % len(stylesheets)],
                            strategy=strategy,
                            label=phase,
                        )
                        for index in range(requests)
                    ]
                    if phase == "cold":
                        latencies = []
                        started = time.perf_counter()
                        for request in batch:
                            server.plan_cache.clear()
                            clear_fingerprint_memo()
                            latencies.append(
                                server.submit(request).result().total_seconds
                            )
                        seconds = time.perf_counter() - started
                    else:
                        for stylesheet in stylesheets:
                            server.render(view, stylesheet, strategy=strategy)
                        started = time.perf_counter()
                        traces = server.render_many(batch)
                        seconds = time.perf_counter() - started
                        latencies = [t.total_seconds for t in traces]
                    cache = server.metrics()["cache"]
                finally:
                    server.close()
                lookups = cache["hits"] + cache["misses"]
                hit_rate = cache["hits"] / lookups if lookups else 0.0
                rps = requests / seconds if seconds else 0.0
                p50 = percentile(latencies, 50) * 1000
                p95 = percentile(latencies, 95) * 1000
                if phase == "cold" and workers == 1:
                    cold_rps[strategy] = rps
                if phase == "warm":
                    warm_best_rps[strategy] = max(
                        warm_best_rps.get(strategy, 0.0), rps
                    )
                result.add_row(
                    workers, strategy, phase, requests, seconds, rps,
                    p50, p95, f"{hit_rate:.2f}",
                )
                runs.append(
                    {
                        "workers": workers,
                        "strategy": strategy,
                        "phase": phase,
                        "requests": requests,
                        "seconds": round(seconds, 6),
                        "throughput_rps": round(rps, 2),
                        **latency_summary_ms([v * 1000 for v in latencies]),
                        "hit_rate": round(hit_rate, 4),
                    }
                )
    db.close()
    speedups = {
        strategy: round(warm_best_rps[strategy] / cold_rps[strategy], 2)
        for strategy in cold_rps
        if cold_rps[strategy]
    }
    result.notes.append(
        "warm concurrent vs single-worker cold-cache speedup: "
        + ", ".join(f"{k} {v}x" for k, v in speedups.items())
    )
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(
                {
                    "scale": scale,
                    "requests_per_run": requests,
                    "workers_values": workers_values,
                    "runs": runs,
                    "speedup_warm_concurrent_over_cold_single": speedups,
                },
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
    return result


def e14_maintenance(
    scale: int = 4,
    rounds: int = 6,
    repeats: int = 3,
    write_rates: list[int] | None = None,
    bounded_lag: int = 8,
    json_path: str | None = None,
) -> ExperimentResult:
    """E14: update-aware serving under interleaved base-table writes.

    Sweeps staleness policy (strict / bounded:N / manual) x write rate
    (writes applied between request batches). Each run serves ``rounds``
    rounds; a round applies ``rate`` writes of the standard hotel mix
    (explicitly recorded on the server's
    :class:`~repro.maintenance.tracker.WriteTracker`), then issues one
    concurrent batch of ``2 stylesheets x 3 strategies x repeats``
    requests. Writes land *between* batches, so the live database is
    well-defined at every serve point and strict responses can be
    verified byte-identical to an uncached serial materialization —
    verification runs outside the timed window and its failures are
    counted in the ``mismatches`` column (the acceptance criterion is
    zero).

    With ``json_path`` the raw numbers land in ``BENCH_e14.json``,
    including ``bounded_over_strict_at_max_rate`` — the throughput
    ratio the result cache buys when bounded staleness is acceptable.
    """
    import json

    from repro.core.optimize import prune_stylesheet_view
    from repro.maintenance import StalenessPolicy, WriteTracker, hotel_write
    from repro.schema_tree.evaluator import STRATEGIES, materialize
    from repro.serving import PublishRequest, ViewServer, percentile
    from repro.workloads.paper import figure17_stylesheet
    from repro.xmlcore.serializer import serialize

    write_rates = write_rates if write_rates is not None else [0, 2, 8]
    policies = ["strict", f"bounded:{bounded_lag}", "manual"]
    result = ExperimentResult(
        "E14",
        f"Update-aware serving (scale-{scale} hotel): staleness policy x "
        "write rate, result-cache freshness and strict equivalence",
        ["policy", "writes/round", "requests", "req/s", "p50 ms", "p95 ms",
         "hit", "miss", "stale", "max hit lag", "mismatches"],
        notes=[
            f"Each run: {rounds} rounds of (apply writes, serve one "
            f"concurrent batch of 2 stylesheets x {len(STRATEGIES)} "
            f"strategies x {repeats}). Strict responses are verified "
            "byte-identical to uncached serial materialization of the "
            "live data (outside the timed window); mismatches must be 0.",
        ],
    )
    runs: list[dict] = []
    throughput: dict[tuple[str, int], float] = {}
    for policy_text in policies:
        policy = StalenessPolicy.parse(policy_text)
        for rate in write_rates:
            db = build_hotel_database(
                HotelDataSpec().scaled(scale), cross_thread=True
            )
            view = figure1_view(db.catalog)
            stylesheets = [figure4_stylesheet(), figure17_stylesheet()]
            # Serial references evaluate the composed-and-pruned views
            # directly on the live source, outside the server.
            targets = []
            for stylesheet in stylesheets:
                target = compose(view, stylesheet, db.catalog)
                prune_stylesheet_view(target, db.catalog)
                targets.append(target)
            tracker = WriteTracker()
            db.attach_tracker(tracker)
            server = ViewServer(
                db.catalog,
                source=db,
                workers=4,
                tracker=tracker,
                staleness=policy,
            )
            try:
                batch = [
                    PublishRequest(
                        view,
                        stylesheets[sheet],
                        strategy=strategy,
                        label=f"s{sheet}/{strategy}",
                    )
                    for _ in range(repeats)
                    for sheet in range(len(stylesheets))
                    for strategy in STRATEGIES
                ]
                latencies: list[float] = []
                traces = []
                mismatches = 0
                write_step = 0
                timed = 0.0
                for _ in range(rounds):
                    for _ in range(rate):
                        hotel_write(db, write_step, tracker)
                        write_step += 1
                    started = time.perf_counter()
                    served = server.render_many(batch)
                    timed += time.perf_counter() - started
                    traces.extend(served)
                    latencies.extend(t.total_seconds for t in served)
                    if policy.kind == "strict":
                        references = [
                            serialize(materialize(target, db))
                            for target in targets
                        ]
                        for request, trace in zip(batch, served):
                            sheet = stylesheets.index(request.stylesheet)
                            if trace.xml != references[sheet]:
                                mismatches += 1
                metrics = server.metrics()
            finally:
                server.close()
                db.close()
            freshness = metrics["freshness"]
            max_hit_lag = max(
                (t.version_lag for t in traces if t.freshness == "hit"),
                default=0,
            )
            total = len(traces)
            rps = total / timed if timed else 0.0
            p50 = percentile(latencies, 50) * 1000
            p95 = percentile(latencies, 95) * 1000
            throughput[(policy_text, rate)] = rps
            result.add_row(
                policy_text, rate, total, rps, p50, p95,
                freshness["hit"], freshness["miss"],
                freshness["stale-recompute"], max_hit_lag, mismatches,
            )
            runs.append(
                {
                    "policy": policy_text,
                    "writes_per_round": rate,
                    "rounds": rounds,
                    "requests": total,
                    "seconds": round(timed, 6),
                    "throughput_rps": round(rps, 2),
                    **latency_summary_ms([v * 1000 for v in latencies]),
                    "freshness": freshness,
                    "max_hit_lag": max_hit_lag,
                    "mismatches": mismatches,
                    "writes_applied": write_step,
                }
            )
    max_rate = max(write_rates)
    strict_at_max = throughput.get(("strict", max_rate), 0.0)
    bounded_at_max = throughput.get((f"bounded:{bounded_lag}", max_rate), 0.0)
    ratio = bounded_at_max / strict_at_max if strict_at_max else 0.0
    result.notes.append(
        f"bounded:{bounded_lag} over strict throughput at {max_rate} "
        f"writes/round: {ratio:.2f}x"
    )
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(
                {
                    "scale": scale,
                    "rounds": rounds,
                    "batch_requests": 2 * len(STRATEGIES) * repeats,
                    "write_rates": write_rates,
                    "bounded_lag": bounded_lag,
                    "runs": runs,
                    "bounded_over_strict_at_max_rate": round(ratio, 3),
                },
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
    return result


def e15_incremental(
    scale: int = 4,
    rounds: int = 6,
    repeats: int = 3,
    write_rates: list[int] | None = None,
    json_path: str | None = None,
) -> ExperimentResult:
    """E15: incremental delta maintenance vs full recomputation.

    Sweeps maintenance mode (full / delta) x write rate under the
    *strict* staleness policy — the regime E14 showed loses ~2x
    throughput because every write forces a whole-plan re-run. The
    swept stream writes only ``availability`` (a leaf table), the
    workload incremental maintenance targets: the dirty frontier is a
    single leaf schema node, so the delta path re-executes one
    decorrelated query and splices the fresh subtree instead of
    re-running every tag query. Two supplementary (ungated) rows rerun
    the top rate with a mixed 3:1 availability/``hotel`` stream:
    ``hotel`` writes dirty an interior node whose subtree is most of
    the document, so delta degrades gracefully to ~full cost there —
    the honest boundary of the technique.

    Methodology matches E14 — writes land *between* concurrent request
    batches (2 stylesheets x 3 strategies x ``repeats``), and every
    response — full or spliced — is verified byte-identical to an
    uncached serial materialization of the live data outside the timed
    window; ``mismatches`` must be 0 — with one refinement: each run
    serves an untimed warmup batch first (cold compiles and cache
    priming are not the thing under test), and throughput is the batch
    size over the *median* round time, which a couple of
    scheduler-noise outliers cannot move the way a wall-clock total
    can. With ``json_path`` the raw numbers land in
    ``BENCH_e15.json``, including ``delta_over_full_at_max_rate`` —
    the acceptance criterion is that this ratio exceeds 1 at the
    highest write rate.
    """
    import json
    import statistics

    from repro.core.optimize import prune_stylesheet_view
    from repro.maintenance import WriteTracker, hotel_write
    from repro.schema_tree.evaluator import STRATEGIES, materialize
    from repro.serving import PublishRequest, ViewServer, percentile
    from repro.workloads.paper import figure17_stylesheet
    from repro.xmlcore.serializer import serialize

    write_rates = write_rates if write_rates is not None else [0, 2, 8]
    leaf_mix = ("availability",)
    mixed_mix = ("availability", "availability", "availability", "hotel")
    modes = ["full", "delta"]
    result = ExperimentResult(
        "E15",
        f"Incremental maintenance (scale-{scale} hotel): strict serving, "
        "full-plan recomputation vs dirty-node delta splicing",
        ["maintenance", "writes/round", "requests", "req/s", "p50 ms",
         "p95 ms", "hit", "stale", "delta", "fallbacks", "mismatches"],
        notes=[
            f"Each run: {rounds} rounds of (apply writes, serve one "
            f"concurrent batch of 2 stylesheets x {len(STRATEGIES)} "
            f"strategies x {repeats}) under the strict policy, after one "
            "untimed warmup batch (included in the freshness counts). "
            "Swept rows write the availability leaf table only; "
            "'(mixed)' rows interleave hotel writes 3:1. req/s = batch "
            "size over the median round time. Every response is "
            "verified byte-identical to uncached serial materialization "
            "of the live data (outside the timed window); mismatches "
            "must be 0.",
        ],
    )
    runs: list[dict] = []
    throughput: dict[tuple[str, int], float] = {}

    def run_pair(rate: int, mix: tuple[str, ...], suffix: str = ""):
        """One paired run: both maintenance modes share the database and
        the write stream, and their batches are timed back-to-back each
        round (alternating order) so machine-state drift hits both
        equally — the throughput ratio comes from paired medians."""
        db = build_hotel_database(
            HotelDataSpec().scaled(scale), cross_thread=True
        )
        view = figure1_view(db.catalog)
        stylesheets = [figure4_stylesheet(), figure17_stylesheet()]
        targets = []
        for stylesheet in stylesheets:
            target = compose(view, stylesheet, db.catalog)
            prune_stylesheet_view(target, db.catalog)
            targets.append(target)
        tracker = WriteTracker()
        db.attach_tracker(tracker)
        servers = {
            mode: ViewServer(
                db.catalog,
                source=db,
                workers=4,
                tracker=tracker,
                staleness="strict",
                maintenance=mode,
            )
            for mode in modes
        }
        batch = [
            PublishRequest(
                view,
                stylesheets[sheet],
                strategy=strategy,
                label=f"s{sheet}/{strategy}",
            )
            for _ in range(repeats)
            for sheet in range(len(stylesheets))
            for strategy in STRATEGIES
        ]
        per_mode = {
            mode: {
                "latencies": [], "traces": [], "mismatches": 0,
                "round_times": [],
            }
            for mode in modes
        }
        try:
            for server in servers.values():
                server.render_many(batch)  # untimed warmup: compile + prime
            write_step = 0
            for rnd in range(rounds):
                for _ in range(rate):
                    hotel_write(db, write_step, tracker, mix=mix)
                    write_step += 1
                order = modes if rnd % 2 == 0 else modes[::-1]
                served_by = {}
                for mode in order:
                    started = time.perf_counter()
                    served = servers[mode].render_many(batch)
                    per_mode[mode]["round_times"].append(
                        time.perf_counter() - started
                    )
                    served_by[mode] = served
                references = [
                    serialize(materialize(target, db))
                    for target in targets
                ]
                for mode in modes:
                    record = per_mode[mode]
                    record["traces"].extend(served_by[mode])
                    record["latencies"].extend(
                        t.total_seconds for t in served_by[mode]
                    )
                    for request, trace in zip(batch, served_by[mode]):
                        sheet = stylesheets.index(request.stylesheet)
                        if trace.xml != references[sheet]:
                            record["mismatches"] += 1
            metrics = {
                mode: servers[mode].metrics() for mode in modes
            }
        finally:
            for server in servers.values():
                server.close()
            db.close()
        rps_by_mode = {}
        for mode in modes:
            record = per_mode[mode]
            freshness = metrics[mode]["freshness"]
            total = len(record["traces"])
            median_round = statistics.median(record["round_times"])
            rps = len(batch) / median_round if median_round else 0.0
            rps_by_mode[mode] = rps
            p50 = percentile(record["latencies"], 50) * 1000
            p95 = percentile(record["latencies"], 95) * 1000
            dirty_counts = [
                t.dirty_nodes for t in record["traces"]
                if t.freshness == "delta-recompute"
            ]
            result.add_row(
                mode + suffix, rate, total, rps, p50, p95,
                freshness["hit"], freshness["stale-recompute"],
                freshness["delta-recompute"],
                metrics[mode]["delta_fallbacks"],
                record["mismatches"],
            )
            runs.append(
                {
                    "maintenance": mode,
                    "write_mix": list(mix),
                    "writes_per_round": rate,
                    "rounds": rounds,
                    "requests": total,
                    "seconds": round(sum(record["round_times"]), 6),
                    "median_round_ms": round(median_round * 1000, 4),
                    "throughput_rps": round(rps, 2),
                    **latency_summary_ms(
                        [v * 1000 for v in record["latencies"]]
                    ),
                    "freshness": freshness,
                    "delta_fallbacks": metrics[mode]["delta_fallbacks"],
                    "mean_dirty_nodes": round(
                        sum(dirty_counts) / len(dirty_counts), 3
                    ) if dirty_counts else 0.0,
                    "mismatches": record["mismatches"],
                    "writes_applied": write_step,
                }
            )
        paired = [
            full_time / delta_time
            for full_time, delta_time in zip(
                per_mode["full"]["round_times"],
                per_mode["delta"]["round_times"],
            )
            if delta_time
        ]
        return rps_by_mode, statistics.median(paired) if paired else 0.0

    paired_ratios: dict[int, float] = {}
    for rate in write_rates:
        rps_by_mode, paired_ratio = run_pair(rate, leaf_mix)
        paired_ratios[rate] = paired_ratio
        for mode, rps in rps_by_mode.items():
            throughput[(mode, rate)] = rps
    max_rate = max(write_rates)
    if max_rate:
        # Supplementary (ungated) rows: the mixed stream's hotel writes
        # dirty an interior node whose subtree is most of the document,
        # collapsing delta's advantage — shown honestly alongside.
        run_pair(max_rate, mixed_mix, " (mixed)")
    # The gated ratio is the median of per-round paired ratios (each
    # round times both modes back-to-back on identical data), the most
    # drift-resistant estimator available from one sweep.
    ratio = paired_ratios.get(max_rate, 0.0)
    result.notes.append(
        f"delta over full throughput at {max_rate} writes/round "
        f"(median per-round paired ratio): {ratio:.2f}x"
    )
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(
                {
                    "scale": scale,
                    "rounds": rounds,
                    "batch_requests": 2 * len(STRATEGIES) * repeats,
                    "write_rates": write_rates,
                    "write_mix": list(leaf_mix),
                    "runs": runs,
                    "delta_over_full_at_max_rate": round(ratio, 3),
                },
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
    return result


def e16_resilience(
    scale: int = 2,
    rounds: int = 6,
    repeats: int = 2,
    fault_rates: list[float] | None = None,
    seed: int = 7,
    json_path: str | None = None,
) -> ExperimentResult:
    """E16: resilient serving under deterministic fault injection.

    Sweeps fault rate x policy over the bounded-staleness serving
    stack. Each run arms a seeded
    :class:`~repro.resilience.faults.FaultPlan` injecting transient
    sqlite errors (at the fault rate), latency, and wrong-shape results
    into every pooled connection, then serves ``rounds`` concurrent
    batches with enough ``availability`` writes between rounds to force
    recomputation past the staleness bound — so every round, requests
    must run real queries through the faults. Two configs per rate:

    * **baseline** — no resilience policy: a failed recomputation is a
      request error, so availability collapses as the fault rate grows
      (at rate 0.3 a ~19-query plan survives with probability
      ``0.7^19`` ~= 0.1%).
    * **resilient** — deadline + transient retries with backoff +
      per-plan circuit breaker + degraded-stale fallback: failures
      retry, then serve the last-known-good cached entry (marked
      ``degraded-stale`` with its true version lag), so availability =
      (success + degraded) / total stays at 1.0 and p99 stays bounded
      by the deadline.

    Both configs warm their caches with the fault plan *disarmed* (a
    last-known-good entry must exist for degradation to mean anything;
    real operators deploy resilience on a warm server). The fault
    schedule is a pure function of ``(seed, site, per-site call
    index)``, so a fixed seed reproduces the same injection counts.
    Acceptance (gated in CI from ``BENCH_e16.json``): resilient
    availability >= 0.99 at the highest fault rate, baseline strictly
    below it, and zero leaked pool connections in every run.
    """
    import json

    from repro.core.optimize import prune_stylesheet_view
    from repro.maintenance import WriteTracker, hotel_write
    from repro.resilience import FaultPlan, FaultSpec, ResiliencePolicy
    from repro.schema_tree.evaluator import STRATEGIES
    from repro.serving import OUTCOMES, PublishRequest, ViewServer, percentile
    from repro.workloads.paper import figure17_stylesheet

    fault_rates = fault_rates if fault_rates is not None else [0.0, 0.1, 0.3]
    staleness_bound = 8
    writes_per_round = 12  # > bound: every round forces recomputation
    policy = ResiliencePolicy(
        deadline_ms=5000.0,
        retries=3,
        backoff_base_ms=1.0,
        backoff_max_ms=10.0,
        breaker_threshold=8,
        breaker_cooldown_ms=100.0,
        degraded=True,
    )
    configs = [("baseline", None), ("resilient", policy)]
    result = ExperimentResult(
        "E16",
        f"Resilient serving (scale-{scale} hotel): fault injection x "
        "policy, availability and tail latency",
        ["config", "fault rate", "requests", "success", "degraded",
         "failed", "availability", "retries", "breaker opens", "p50 ms",
         "p99 ms"],
        notes=[
            f"Each run: warmup batch with faults disarmed, then {rounds} "
            f"rounds of ({writes_per_round} availability writes, one "
            f"concurrent batch of 2 stylesheets x {len(STRATEGIES)} "
            f"strategies x {repeats}) under bounded:{staleness_bound} "
            "staleness — the writes outrun the bound, so every round "
            "recomputes through the armed fault plan (transient sqlite "
            "errors at the fault rate, injected latency at half of it, "
            "wrong-shape results at a quarter). baseline = no policy "
            "(failures are request errors); resilient = "
            f"[{policy.describe()}] (transient failures retry, exhausted "
            "failures serve the last-known-good entry as "
            "degraded-stale). availability = (success + degraded) / "
            f"requests. Fault schedule is deterministic (seed {seed}).",
        ],
    )
    runs: list[dict] = []
    availability_at: dict[tuple[str, float], float] = {}

    def run_config(name: str, resilience, rate: float) -> None:
        db = build_hotel_database(
            HotelDataSpec().scaled(scale), cross_thread=True
        )
        view = figure1_view(db.catalog)
        stylesheets = [figure4_stylesheet(), figure17_stylesheet()]
        for stylesheet in stylesheets:
            prune_stylesheet_view(
                compose(view, stylesheet, db.catalog), db.catalog
            )
        tracker = WriteTracker()
        db.attach_tracker(tracker)
        faults = FaultPlan(
            FaultSpec(
                error_rate=rate,
                latency_rate=rate / 2,
                latency_ms=2.0,
                wrong_shape_rate=rate / 4,
            ),
            seed=seed,
            enabled=False,
        )
        server = ViewServer(
            db.catalog,
            source=db,
            workers=4,
            tracker=tracker,
            staleness=f"bounded:{staleness_bound}",
            resilience=resilience,
            faults=faults,
        )
        batch = [
            PublishRequest(
                view,
                stylesheets[sheet],
                strategy=strategy,
                label=f"s{sheet}/{strategy}",
            )
            for _ in range(repeats)
            for sheet in range(len(stylesheets))
            for strategy in STRATEGIES
        ]
        traces = []
        write_step = 0
        try:
            server.render_many(batch)  # warmup: compile + last-known-good
            faults.arm()
            for _ in range(rounds):
                for _ in range(writes_per_round):
                    hotel_write(db, write_step, tracker, mix=("availability",))
                    write_step += 1
                traces.extend(server.render_many(batch))
            leaked = server.pool.outstanding()
            metrics = server.metrics()
        finally:
            server.close()
            db.close()
        outcomes = {outcome: 0 for outcome in OUTCOMES}
        for trace in traces:
            outcomes[trace.outcome] += 1
        availability = (
            (outcomes["success"] + outcomes["degraded"]) / len(traces)
        )
        availability_at[(name, rate)] = availability
        failed = (
            outcomes["error"] + outcomes["deadline"] + outcomes["rejected"]
        )
        latencies = [trace.total_seconds * 1000 for trace in traces]
        retries = sum(trace.retries for trace in traces)
        resilience_metrics = metrics.get("resilience")
        breaker_opened = (
            resilience_metrics["breaker"]["opened"]
            if resilience_metrics and resilience_metrics["breaker"]
            else 0
        )
        p50 = percentile(latencies, 50)
        p99 = percentile(latencies, 99)
        result.add_row(
            name, rate, len(traces), outcomes["success"],
            outcomes["degraded"], failed, availability, retries,
            breaker_opened, p50, p99,
        )
        runs.append(
            {
                "config": name,
                "fault_rate": rate,
                "requests": len(traces),
                "outcomes": outcomes,
                "availability": round(availability, 6),
                "retries": retries,
                "breaker_opened": breaker_opened,
                "degraded_max_lag": max(
                    (
                        trace.version_lag
                        for trace in traces
                        if trace.freshness == "degraded-stale"
                    ),
                    default=0,
                ),
                **latency_summary_ms(latencies),
                "faults_injected": metrics["faults"]["injected"],
                "leaked_connections": leaked,
                "writes_applied": write_step,
            }
        )

    for rate in fault_rates:
        for name, resilience in configs:
            run_config(name, resilience, rate)
    max_rate = max(fault_rates)
    resilient_availability = availability_at.get(("resilient", max_rate), 0.0)
    baseline_availability = availability_at.get(("baseline", max_rate), 0.0)
    result.notes.append(
        f"at fault rate {max_rate}: resilient availability "
        f"{resilient_availability:.4f} vs baseline "
        f"{baseline_availability:.4f}"
    )
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(
                {
                    "scale": scale,
                    "rounds": rounds,
                    "batch_requests": 2 * len(STRATEGIES) * repeats,
                    "fault_rates": fault_rates,
                    "fault_seed": seed,
                    "staleness_bound": staleness_bound,
                    "writes_per_round": writes_per_round,
                    "policy": policy.describe(),
                    "runs": runs,
                    "max_fault_rate": max_rate,
                    "resilient_availability_at_max_rate": round(
                        resilient_availability, 6
                    ),
                    "baseline_availability_at_max_rate": round(
                        baseline_availability, 6
                    ),
                },
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
    return result


def e17_fragments(
    scale: int = 8,
    rounds: int = 6,
    repeats: int = 3,
    row_counts: list[int] | None = None,
    json_path: str | None = None,
) -> ExperimentResult:
    """E17: row-level delta pushdown and fragment byte-cache serving.

    Two measurements over the raw Figure 1 view (no stylesheet — the
    composed views concentrate reads into one top node, which hides
    exactly the per-fragment structure under test):

    **Part A — row pushdown scaling.** A delta-mode server absorbs
    :func:`~repro.maintenance.workload.hotel_payload_write` streams that
    flip ``pool`` on exactly ``k`` in-view hotels per write, for each
    ``k`` in ``row_counts``. ``pool`` is a pure payload column (served
    by ``SELECT *``, read by no predicate, grouping, or descendant), so
    the tracked keys make the write row-traceable and the delta path
    re-fetches ``key IN (...)`` instead of the whole node. The recorded
    ``rows fetched`` per serve should track ``k``, not the hotel node's
    size — the node-level baseline row (same write, recorded *without*
    keys, forcing the node-level path) shows what it tracks otherwise.

    **Part B — fragment serving at a leaf-write mix.** Full, delta, and
    two fragment servers (policies ``all`` and ``auto``) share one
    database and write stream; each round applies 2 ``confroom``
    capacity (leaf) writes, then serves one concurrent batch per config
    with the order rotated each round so drift hits all four equally.
    ``capacity`` feeds the confstat aggregates only through their SUM
    projections, so the delta path maintains the affected hotel and
    metro at *block* granularity and every other subtree survives by
    identity. Delta already splices the document; fragment additionally
    splices cached *byte spans* at serialization. The policy split is
    the point: ``all`` also pins the write-churned confstat nodes,
    paying recording cost for spans a write invalidates before they are
    ever copied, while ``auto`` drops them (value density below one)
    and pins only the stable fragments. The paired round-time ratio
    (median of per-round ``fragment-auto``-vs-``delta``) is the gated
    number: >= 1 means the byte cache at least pays for its
    bookkeeping. Every response — all four configs — is verified
    byte-identical to an uncached serial materialization of the live
    data outside the timed window; ``mismatches`` must be 0.
    """
    import json
    import statistics

    from repro.maintenance import (
        WriteTracker,
        hotel_conference_write,
        hotel_payload_write,
    )
    from repro.schema_tree.evaluator import STRATEGIES, materialize
    from repro.serving import PublishRequest, ViewServer, percentile
    from repro.xmlcore.serializer import serialize

    row_counts = row_counts if row_counts is not None else [1, 2, 4, 8]
    configs = [
        ("full", "full", None),
        ("delta", "delta", None),
        ("fragment-all", "fragment", "all"),
        ("fragment-auto", "fragment", "auto"),
    ]
    names = [name for name, _mode, _policy in configs]
    writes_per_round = 2
    result = ExperimentResult(
        "E17",
        f"Fragment-level serving (scale-{scale} hotel): row-level delta "
        "pushdown and serialized-fragment byte cache",
        ["config", "writes/round", "requests", "req/s", "p50 ms",
         "ser p50 ms", "rows fetched", "frag hit/miss", "mismatches"],
        notes=[
            "Part A rows (pushdown): one delta-mode server, each round "
            "one tracked pool-flip on exactly k in-view hotels, then one "
            "serve; 'rows fetched' is the mean per delta serve and "
            "should track k. The node-level row repeats k=1 with the "
            "keys withheld from the tracker, forcing the node-level "
            f"path. Part B rows (configs): {rounds} rounds of "
            f"({writes_per_round} confroom-capacity writes, one serial "
            "batch "
            f"of {len(STRATEGIES)} strategies x {repeats}) per config "
            "on a shared database, order rotated per round (serial so "
            "phase timings are not smeared by concurrent scheduling); "
            "req/s = batch size over the median round time. Every "
            "response is "
            "verified byte-identical to uncached serial materialization "
            "of the live data (outside the timed window); mismatches "
            "must be 0.",
        ],
    )
    pushdown_runs: list[dict] = []

    # -- Part A: row pushdown scaling ------------------------------------
    db = build_hotel_database(HotelDataSpec().scaled(scale), cross_thread=True)
    view = figure1_view(db.catalog)
    tracker = WriteTracker()
    db.attach_tracker(tracker)
    server = ViewServer(
        db.catalog,
        source=db,
        workers=2,
        tracker=tracker,
        staleness="strict",
        maintenance="delta",
    )
    node_level_rows = 0
    try:
        in_view = db.run_sql(
            "SELECT COUNT(*) AS n FROM hotel WHERE starrating > 4", {}
        )[0]["n"]
        server.render(view, strategy="bulk")  # prime plan + cached state
        step = 0
        for rows in row_counts:
            fetched: list[int] = []
            spliced: list[int] = []
            latencies: list[float] = []
            mismatches = 0
            for _ in range(rounds):
                hotel_payload_write(db, step, tracker, rows=rows)
                step += 1
                trace = server.render(view, strategy="bulk")
                if trace.xml != serialize(materialize(view, db)):
                    mismatches += 1
                latencies.append(trace.total_seconds)
                if trace.freshness == "delta-recompute":
                    fetched.append(trace.rows_fetched)
                    spliced.append(trace.rows_spliced)
            mean_fetched = (
                sum(fetched) / len(fetched) if fetched else 0.0
            )
            result.add_row(
                f"pushdown rows={rows}", 1, rounds, "-",
                percentile(latencies, 50) * 1000, "-", mean_fetched,
                "-", mismatches,
            )
            pushdown_runs.append(
                {
                    "rows_per_write": rows,
                    "serves": rounds,
                    "delta_serves": len(fetched),
                    "mean_rows_fetched": round(mean_fetched, 3),
                    "mean_rows_spliced": round(
                        sum(spliced) / len(spliced), 3
                    ) if spliced else 0.0,
                    **latency_summary_ms([v * 1000 for v in latencies]),
                    "mismatches": mismatches,
                }
            )
        # Node-level baseline: the same single-row write, but recorded
        # without keys — untraceable, so the delta path re-fetches the
        # whole dirty node (and descendants), not the changed row.
        db.run_sql(
            "UPDATE hotel SET pool = 1 - pool WHERE hotelid = "
            "(SELECT MIN(hotelid) FROM hotel WHERE starrating > 4)",
            {},
        )
        tracker.record_write("hotel", rows=1)
        trace = server.render(view, strategy="bulk")
        baseline_ok = int(trace.xml != serialize(materialize(view, db)))
        node_level_rows = trace.rows_fetched
        result.add_row(
            "pushdown node-level", 1, 1, "-",
            trace.total_seconds * 1000, "-", node_level_rows, "-",
            baseline_ok,
        )
    finally:
        server.close()
        db.close()

    # -- Part B: paired full / delta / fragment-(all|auto) sweeps --------
    runs: list[dict] = []

    def run_modes(mix_label: str, per_round: int, apply_write, suffix=""):
        """One paired sweep: all four configs share the database and the
        write stream; batches are timed back-to-back each round with the
        order rotated so drift hits every config equally. Batches are
        served on a single worker — the comparison is per-phase timing
        (serialize vs splice), which concurrent scheduling would smear.
        Returns each config's paired delta/fragment-auto round-time
        ratio, serialize p50s, and mismatch total."""
        db = build_hotel_database(
            HotelDataSpec().scaled(scale), cross_thread=True
        )
        view = figure1_view(db.catalog)
        tracker = WriteTracker()
        db.attach_tracker(tracker)
        servers = {
            name: ViewServer(
                db.catalog,
                source=db,
                workers=1,
                tracker=tracker,
                staleness="strict",
                maintenance=mode,
                fragment_policy=policy,
            )
            for name, mode, policy in configs
        }
        batch = [
            PublishRequest(view, None, strategy=strategy, label=strategy)
            for _ in range(repeats)
            for strategy in STRATEGIES
        ]
        per_mode = {
            name: {
                "latencies": [], "traces": [], "mismatches": 0,
                "round_times": [],
            }
            for name in names
        }
        try:
            for mode_server in servers.values():
                mode_server.render_many(batch)  # untimed warmup
            # Untimed convergence rounds: the auto pinning policy homes
            # in on the stable fragment set one hierarchy level per
            # serve, so give every config the same handful of
            # representative write+serve rounds before timing — the
            # timed window then measures steady state, not the search.
            write_step = 0
            for _ in range(8):
                for _ in range(per_round):
                    apply_write(db, write_step, tracker)
                    write_step += 1
                for mode_server in servers.values():
                    mode_server.render_many(batch)
            for rnd in range(rounds):
                for _ in range(per_round):
                    apply_write(db, write_step, tracker)
                    write_step += 1
                cut = rnd % len(names)
                for name in names[cut:] + names[:cut]:
                    started = time.perf_counter()
                    served = servers[name].render_many(batch)
                    per_mode[name]["round_times"].append(
                        time.perf_counter() - started
                    )
                    per_mode[name]["traces"].extend(served)
                reference = serialize(materialize(view, db))
                for name in names:
                    record = per_mode[name]
                    recent = record["traces"][-len(batch):]
                    record["latencies"].extend(
                        t.total_seconds for t in recent
                    )
                    record["mismatches"] += sum(
                        1 for t in recent if t.xml != reference
                    )
            metrics = {name: servers[name].metrics() for name in names}
        finally:
            for mode_server in servers.values():
                mode_server.close()
            db.close()
        ser_p50s: dict[str, float] = {}
        for name, mode, policy in configs:
            record = per_mode[name]
            median_round = statistics.median(record["round_times"])
            rps = len(batch) / median_round if median_round else 0.0
            p50 = percentile(record["latencies"], 50) * 1000
            # Result-cache hits return stored bytes without serializing
            # (serialize_seconds is exactly 0); the p50 is over the
            # requests that actually serialized.
            ser_p50 = percentile(
                [
                    t.serialize_seconds for t in record["traces"]
                    if t.serialize_seconds
                ], 50,
            ) * 1000
            ser_p50s[name] = ser_p50
            fragments = metrics[name].get("fragments")
            frag_cell = (
                f"{fragments['hits']}/{fragments['misses']}"
                if fragments else "-"
            )
            result.add_row(
                name + suffix, per_round, len(record["traces"]), rps,
                p50, ser_p50, "-", frag_cell, record["mismatches"],
            )
            runs.append(
                {
                    "config": name,
                    "maintenance": mode,
                    "fragment_policy": policy,
                    "write_mix": mix_label,
                    "writes_per_round": per_round,
                    "rounds": rounds,
                    "requests": len(record["traces"]),
                    "median_round_ms": round(median_round * 1000, 4),
                    "throughput_rps": round(rps, 2),
                    **latency_summary_ms(
                        [v * 1000 for v in record["latencies"]]
                    ),
                    "serialize_p50_ms": round(ser_p50, 4),
                    "freshness": metrics[name]["freshness"],
                    "delta_fallbacks": metrics[name]["delta_fallbacks"],
                    "fragments": fragments,
                    "mismatches": record["mismatches"],
                }
            )
        paired = [
            delta_time / fragment_time
            for delta_time, fragment_time in zip(
                per_mode["delta"]["round_times"],
                per_mode["fragment-auto"]["round_times"],
            )
            if fragment_time
        ]
        total = sum(per_mode[name]["mismatches"] for name in names)
        return statistics.median(paired) if paired else 0.0, ser_p50s, total

    # Leaf mix: entity-local confroom-capacity writes — one hotel
    # reconfigures its meeting space per write. capacity feeds the
    # confstat aggregates only through their SUM projections, so the
    # delta path block-splices the affected hotel's and metro's
    # aggregate blocks (nodes 2 and 4) and row-splices the confroom
    # leaf; every other hotel's and metro's spans survive by identity,
    # which is what the byte cache monetizes. This is the gated mix.
    ratio, serialize_p50, leaf_mismatches = run_modes(
        "confroom-leaf", writes_per_round,
        lambda db, step, tracker: hotel_conference_write(
            db, step, tracker, hotels=1
        ),
    )
    # Row mix: one tracked single-row pool flip per round — the delta
    # path row-splices one hotel element, every other span survives,
    # and the byte cache serializes ~one fragment. Pushdown and the
    # fragment cache composing is the technique's best case.
    row_ratio, row_serialize_p50, row_mismatches = run_modes(
        "hotel-payload-row", 1,
        lambda db, step, tracker: hotel_payload_write(
            db, step, tracker, rows=1
        ),
        suffix=" (row)",
    )
    max_pushdown = max(
        (run["mean_rows_fetched"] for run in pushdown_runs), default=0.0
    )
    total_mismatches = (
        sum(run["mismatches"] for run in pushdown_runs)
        + leaf_mismatches
        + row_mismatches
    )
    result.notes.append(
        f"fragment-auto over delta round time (median per-round paired "
        f"ratio): {ratio:.2f}x at the leaf mix, {row_ratio:.2f}x at the "
        f"row mix; row-mix serialize p50 fragment-auto "
        f"{row_serialize_p50['fragment-auto']:.2f}ms vs full "
        f"{row_serialize_p50['full']:.2f}ms; pushdown rows fetched "
        f"stays <= {max_pushdown:.1f} vs {node_level_rows} node-level "
        f"({in_view} hotels in view)."
    )
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(
                {
                    "scale": scale,
                    "rounds": rounds,
                    "repeats": repeats,
                    "batch_requests": len(STRATEGIES) * repeats,
                    "writes_per_round": writes_per_round,
                    "row_counts": row_counts,
                    "in_view_hotels": in_view,
                    "row_pushdown": pushdown_runs,
                    "node_level_rows_fetched": node_level_rows,
                    "row_pushdown_max_mean_rows_fetched": round(
                        max_pushdown, 3
                    ),
                    "runs": runs,
                    "leaf_mix_serialize_p50_ms": {
                        name: round(value, 4)
                        for name, value in serialize_p50.items()
                    },
                    "row_mix_serialize_p50_ms": {
                        name: round(value, 4)
                        for name, value in row_serialize_p50.items()
                    },
                    "fragment_over_delta_at_leaf_mix": round(ratio, 3),
                    "fragment_over_delta_at_row_mix": round(row_ratio, 3),
                    "mismatches": total_mismatches,
                },
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
    return result


def e18_sharding(
    scale: int = 8,
    rounds: int = 12,
    repeats: int = 8,
    shard_counts: list[int] | None = None,
    replicas: int = 0,
    writes_per_round: int = 1,
    fault_rates: list[float] | None = None,
    json_path: str | None = None,
) -> ExperimentResult:
    """E18: sharded scatter/merge serving vs a single box.

    One :class:`~repro.sharding.ShardRouter` per shard count, built by
    key-range-partitioning the same scale-``scale`` hotel database over
    ``metroarea.metroid`` (the partition column
    :func:`~repro.sharding.derive_partition_column` derives from the
    Figure 1 view). The raw view is served (no stylesheet — the
    composed views concentrate all reads into one top node, which
    hides the per-shard recompute locality under test) under a
    *metro-local* write stream
    (:func:`~repro.maintenance.workload.hotel_metro_write`): each write
    flips the availability calendar of exactly one metro, so exactly
    one shard's tracker advances and only that shard recomputes its
    slice of the document next round; the other shards serve result-
    cache hits and the single box recomputes everything. On a one-core
    host the scaling therefore measures *work avoided by write
    locality*, not thread parallelism.

    Every round applies ``writes_per_round`` routed writes (mirrored
    onto an unpartitioned reference database with the shared global
    metro domain), then serves a batch of ``repeats`` requests
    back-to-back (serial, so the recompute-vs-hit mix per round is
    deterministic rather than smeared by request racing on one core);
    req/s is the batch size over the median round time, and
    every response in every round is verified byte-identical to an
    uncached serial materialization of the reference — ``mismatches``
    must be 0. The gated number is the 2-shard-over-1-shard throughput
    ratio. ``replicas`` read replicas per shard ride along in the
    fleet (reads rotate across them; failovers counted).

    Chaos rides along when ``fault_rates`` holds nonzero rates: for
    each rate, a 2-shard fleet with at least one replica per shard runs
    the same write/serve/verify loop with a seeded
    :class:`~repro.resilience.faults.FaultPlan` (E16's error + latency
    mix) armed on **shard 0's primary only** — its replicas are the
    failover path under test. Those runs record ``availability``
    (success + degraded over total) and are excluded from the gated
    fault-free 2-over-1 throughput ratio.
    """
    import json
    import statistics

    from repro.maintenance.workload import hotel_metro_write
    from repro.schema_tree.evaluator import materialize
    from repro.serving import PublishRequest, percentile
    from repro.sharding import ShardRouter
    from repro.workloads.hotel import hotel_partition_scheme
    from repro.xmlcore.serializer import serialize

    shard_counts = shard_counts if shard_counts is not None else [1, 2, 4]
    result = ExperimentResult(
        "E18",
        f"Sharded serving fleet (scale-{scale} hotel): key-range "
        "scatter/merge vs a single box under metro-local writes",
        ["shards", "replicas", "requests", "req/s", "speedup", "p50 ms",
         "merged hit/miss", "failovers", "mismatches"],
        notes=[
            f"Figure 1 view only, bulk strategy; {rounds} rounds of "
            f"({writes_per_round} metro-local availability writes, one "
            f"serial batch of {repeats} requests) per fleet size; "
            "req/s = batch size over the median round time; speedup is "
            "vs the 1-shard row. Writes are mirrored onto an "
            "unpartitioned reference database and every response is "
            "verified byte-identical to its uncached serial "
            "materialization (outside the timed window); mismatches "
            "must be 0.",
        ],
    )
    runs: list[dict] = []
    base_rps: float | None = None

    def run_fleet(
        shards: int, fleet_replicas: int, fault_rate: float
    ) -> dict:
        """One fleet's write/serve/verify sweep; returns its run record.

        ``fault_rate > 0`` arms E16's error+latency fault mix on shard
        0's primary only (seeded, disarmed for warmup); its replicas
        absorb the failures via router failover.
        """
        nonlocal base_rps
        db = build_hotel_database(
            HotelDataSpec().scaled(scale), cross_thread=True
        )
        view = figure1_view(db.catalog)
        domain = [
            row["metroid"]
            for row in db.run_sql(
                "SELECT metroid FROM metroarea ORDER BY metroid", {}
            )
        ]
        faults = None
        if fault_rate > 0:
            from repro.resilience import FaultPlan, FaultSpec

            faults = FaultPlan(
                FaultSpec(
                    error_rate=fault_rate,
                    latency_rate=fault_rate / 2,
                    latency_ms=2.0,
                ),
                seed=18,
                enabled=False,  # warmup runs clean; armed after
            )
        router = ShardRouter.build(
            db.catalog,
            db,
            hotel_partition_scheme(),
            shards,
            replicas=fleet_replicas,
            workers=2,
            staleness="strict",
            maintenance="full",
            faults=(
                [faults] + [None] * (shards - 1)
                if faults is not None
                else None
            ),
        )
        batch = [
            PublishRequest(view, strategy="bulk", label=f"s{shards}")
            for _ in range(repeats)
        ]
        latencies: list[float] = []
        round_times: list[float] = []
        mismatches = 0
        unavailable = 0
        step = 0
        try:
            router.render_many(batch)  # untimed warmup, faults disarmed
            if faults is not None:
                faults.arm()
            for _ in range(rounds):
                for _ in range(writes_per_round):
                    this = step
                    router.route_write(
                        lambda source, tracker: hotel_metro_write(
                            source, this, tracker=tracker, domain=domain
                        )
                    )
                    hotel_metro_write(db, this)
                    step += 1
                started = time.perf_counter()
                traces = [
                    router.submit(request).result() for request in batch
                ]
                round_times.append(time.perf_counter() - started)
                reference = serialize(materialize(view, db))
                for trace in traces:
                    latencies.append(trace.total_seconds)
                    if trace.outcome not in ("success", "degraded"):
                        unavailable += 1
                    elif trace.xml != reference:
                        mismatches += 1
            metrics = router.metrics()
            leaked = router.outstanding()
        finally:
            router.close()
            db.close()
        median_round = statistics.median(round_times)
        rps = len(batch) / median_round if median_round else 0.0
        if base_rps is None and fault_rate == 0:
            base_rps = rps
        speedup = rps / base_rps if base_rps else 0.0
        total = rounds * len(batch)
        availability = (total - unavailable) / total if total else 0.0
        merged = metrics["merged_cache"]
        label = (
            shards if fault_rate == 0 else f"{shards} (faults {fault_rate})"
        )
        result.add_row(
            label, fleet_replicas, total, rps, speedup,
            percentile(latencies, 50) * 1000,
            f"{merged['hits']}/{merged['misses']}",
            metrics["failovers"], mismatches,
        )
        return {
            "shards": shards,
            "replicas": fleet_replicas,
            "fault_rate": fault_rate,
            "key_ranges": metrics.get("key_ranges"),
            "requests": total,
            "median_round_ms": round(median_round * 1000, 4),
            "throughput_rps": round(rps, 2),
            "speedup_over_one_shard": round(speedup, 3),
            **latency_summary_ms([v * 1000 for v in latencies]),
            "availability": round(availability, 6),
            "merged_cache": merged,
            "failovers": metrics["failovers"],
            "outcomes": metrics["outcomes"],
            "leaked_connections": leaked,
            "mismatches": mismatches,
        }

    for shards in shard_counts:
        runs.append(run_fleet(shards, replicas, 0.0))
    chaos_shards = 2 if 2 in shard_counts else shard_counts[0]
    for rate in fault_rates or []:
        if rate > 0:
            runs.append(run_fleet(chaos_shards, max(replicas, 1), rate))
    total_mismatches = sum(run["mismatches"] for run in runs)
    by_shards = {
        run["shards"]: run["throughput_rps"]
        for run in runs
        if run["fault_rate"] == 0
    }
    two_over_one = (
        round(by_shards[2] / by_shards[1], 3)
        if 1 in by_shards and 2 in by_shards and by_shards[1]
        else None
    )
    if two_over_one is not None:
        result.notes.append(
            f"2-shard over 1-shard throughput: {two_over_one:.2f}x "
            f"(gate >= 1.3x); total mismatches {total_mismatches}."
        )
    chaos_runs = [run for run in runs if run["fault_rate"] > 0]
    chaos_availability = (
        min(run["availability"] for run in chaos_runs)
        if chaos_runs
        else None
    )
    if chaos_runs:
        result.notes.append(
            "chaos: fault rates "
            f"{sorted({run['fault_rate'] for run in chaos_runs})} on shard "
            f"0's primary, min availability {chaos_availability:.4f} "
            f"(replica failover; gate >= 0.99)."
        )
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(
                {
                    "scale": scale,
                    "rounds": rounds,
                    "repeats": repeats,
                    "writes_per_round": writes_per_round,
                    "shard_counts": shard_counts,
                    "replicas": replicas,
                    "fault_rates": sorted(
                        {run["fault_rate"] for run in chaos_runs}
                    ),
                    "runs": runs,
                    "two_shard_over_one": two_over_one,
                    "chaos_min_availability": chaos_availability,
                    "mismatches": total_mismatches,
                },
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
    return result


def e19_frontend(
    scale: int = 1,
    requests: int = 200,
    warmup: int = 40,
    connections: int = 6,
    fault_rates: list[float] | None = None,
    hedge_budget: float = 0.15,
    overload_connections: int = 12,
    overload_queue_limit: int = 4,
    json_path: str | None = None,
) -> ExperimentResult:
    """E19: the async HTTP front end — hedging and priority admission.

    Every run here goes over **real sockets**: a
    :class:`~repro.frontend.http.FrontendServer` on a loopback port,
    driven by the async load generator with keep-alive connections and
    a deterministic priority-mixed schedule. Requests bypass the
    result cache so each one computes from live data — the latency
    distribution under test is the compute path plus whatever the
    fault plan injects (E16's chaos knobs: transient errors at
    ``rate/4`` per query, 40ms latency faults at ``rate/12`` per
    query), with ``retries=3`` and a tight backoff absorbing the
    transients. A request touches ~9 fault sites *at scale 1* (the
    nested-loop strategies issue per-row queries, so fault exposure
    grows with data size), and the per-query stall rate is picked to
    keep the per-*request* stall rate under the hedge budget — a
    budget below the stall mass cannot cover the tail no matter how
    good the trigger is.

    Three sweeps, one JSON report:

    * **hedging** — (fault rate × hedge on/off), all classes
      hedge-eligible. Warmup (faults disarmed) populates the rolling
      estimators with clean latencies, so once faults arm, a request
      stalled by an injected 40ms stall blows through its plan's p95
      within a few milliseconds and the hedge — which re-draws the
      per-site fault schedule — usually lands clean. The gated claim:
      at the highest fault rate, hedging cuts overall p99 while firing
      on at most ``hedge_budget`` of requests.
    * **priority** — highest fault rate, hedging restricted to the
      interactive class: the duplicate-work budget is spent where
      latency matters, so interactive p95 lands under batch p95 while
      batch/background keep the raw tail.
    * **overload** — more connections than the admission limits
      accommodate (``queue_limit`` set, no faults, no hedging):
      priority-aware shedding drops background first; the gate is
      interactive availability 1.0 with every shed landing on the
      lower classes.

    Leak accounting after every run: facade drained, zero open
    connections, zero surviving worker threads, zero transport errors.
    """
    import asyncio
    import json
    import threading

    from repro.frontend import (
        HedgePolicy,
        LoadMix,
        run_load,
        serve_app,
        build_hotel_app,
    )
    from repro.resilience import FaultPlan, FaultSpec, ResiliencePolicy

    fault_rates = fault_rates if fault_rates is not None else [0.0, 0.1]
    max_rate = max(fault_rates)
    result = ExperimentResult(
        "E19",
        f"Async HTTP front end (scale-{scale} hotel): hedged requests "
        "and priority admission over real sockets",
        ["run", "faults", "requests", "req/s", "p50 ms", "p99 ms",
         "avail", "hedge fired/won", "int p95", "batch p95", "shed"],
        notes=[
            f"{connections} keep-alive connections, {requests} publishes "
            f"per run after {warmup} fault-free warmups (cache-bypassing "
            "computes); E16 chaos mix = transient errors at rate/4 + "
            "40ms latency faults at rate/12 per query, retries=3. "
            "Hedge budget "
            f"{hedge_budget:g} of eligible requests.",
        ],
    )

    def fault_plan(rate: float):
        if rate <= 0:
            return None
        return FaultPlan(
            FaultSpec(
                error_rate=rate / 4,
                latency_rate=rate / 12,
                latency_ms=40.0,
            ),
            seed=19,
            enabled=False,  # armed after warmup
        )

    def drive(
        label: str,
        rate: float,
        hedge: HedgePolicy | None,
        mix: LoadMix,
        n_connections: int,
        queue_limit: int | None = None,
    ) -> dict:
        """One server+loadgen lifecycle; returns the run record."""
        faults = fault_plan(rate)
        # Workers exceed connections so a hedge never queues behind the
        # very stall it is racing — without that headroom, hedge wins
        # pay the queue wait and the p99 cut evaporates.
        app = build_hotel_app(
            scale=scale,
            workers=8,
            # Tight backoff: the injected transients succeed on an
            # immediate retry, and a 5ms+ backoff would park retried
            # requests right on the hedge trigger, burning budget on
            # requests a duplicate attempt cannot speed up.
            resilience=ResiliencePolicy(
                retries=3, backoff_base_ms=1.0, backoff_max_ms=10.0,
                queue_limit=queue_limit,
            ),
            faults=faults,
            hedge=hedge,
        )

        async def run() -> tuple[dict, dict, bool, int]:
            server = await serve_app(app)
            host, port = server.address
            # Warm up at the *measured* concurrency: the rolling hedge
            # estimators must learn the loaded latency distribution
            # (queueing included) — an unloaded warmup seeds thresholds
            # below the queueing tail and the early noise-hedges drain
            # the budget before any real stall arrives.
            await run_load(
                host, port, requests=warmup,
                connections=n_connections, mix=mix,
            )
            if faults is not None:
                faults.arm()
            report = await run_load(
                host, port, requests=requests,
                connections=n_connections, mix=mix,
            )
            metrics = app.facade.metrics()
            drained = await server.close()
            return report, metrics, drained, server.open_connections

        report, metrics, drained, open_connections = asyncio.run(run())
        leaked_threads = sum(
            1
            for thread in threading.enumerate()
            if thread.name.startswith(("viewserver", "shardrouter"))
        )
        hedging = metrics["hedging"]
        priority = metrics.get("priority", {})
        shed_by_class = {
            cls: block["shed"] for cls, block in priority.items()
        }
        overall = report["overall"]
        interactive = report["priority"]["interactive"]
        batch = report["priority"]["batch"]
        result.add_row(
            label, rate, report["completed"], report["throughput_rps"],
            overall["latency"]["p50_ms"], overall["latency"]["p99_ms"],
            overall["availability"],
            (
                f"{hedging['fired']}/{hedging['won']}"
                if hedging is not None
                else "-"
            ),
            interactive["latency"]["p95_ms"], batch["latency"]["p95_ms"],
            sum(shed_by_class.values()),
        )
        return {
            "run": label,
            "fault_rate": rate,
            "hedge": hedging["policy"] if hedging is not None else None,
            "requests": report["completed"],
            "connections": n_connections,
            "queue_limit": queue_limit,
            "throughput_rps": report["throughput_rps"],
            "overall": overall,
            "priority": report["priority"],
            "hedging": hedging,
            "shed_by_class": shed_by_class,
            "transport_errors": report["transport_errors"],
            "leaks": {
                "drained": drained,
                "open_connections": open_connections,
                "threads": leaked_threads,
            },
        }

    sweep_mix = LoadMix(bypass_cache=True)
    runs: list[dict] = []
    for rate in fault_rates:
        runs.append(drive(f"no-hedge@{rate}", rate, None, sweep_mix, connections))
        runs.append(
            drive(
                f"hedge@{rate}",
                rate,
                # Median-based trigger with a floor above the clean
                # p99 (~12ms): the median is robust to stall samples
                # polluting the window (a rolling p95 drifts up to the
                # stall size and fires too late), while the floor keeps
                # the trigger from ever dipping into clean-request
                # territory, so the budget is spent on real stalls.
                HedgePolicy(
                    threshold_percentile=50.0,
                    min_samples=8,
                    window=64,
                    budget_fraction=hedge_budget,
                    delay_floor_ms=15.0,
                    delay_multiplier=4.0,
                ),
                sweep_mix,
                connections,
            )
        )

    # The budget denominator is *eligible* requests, and only
    # interactive ones are eligible here — so a class-local budget of
    # 0.35 still bounds fired hedges at 0.35 x the interactive share
    # (0.4) = 14% of all traffic. The higher local budget is the point:
    # every stalled interactive request can buy out of the tail while
    # batch/background keep it. The run doubles the fault rate so the
    # unhedged classes' p95 is robustly stall-dominated (at the sweep
    # rate a class's 95th sample sits right on the stall boundary and
    # the ordering would be a coin flip).
    priority_rate = max_rate * 2
    priority_run = drive(
        f"hedge-interactive@{priority_rate:g}",
        priority_rate,
        HedgePolicy(
            threshold_percentile=50.0,
            min_samples=8,
            window=64,
            budget_fraction=0.35,
            delay_floor_ms=15.0,
            delay_multiplier=4.0,
            priorities=("interactive",),
        ),
        LoadMix(
            priority_weights={
                "interactive": 0.4, "batch": 0.4, "background": 0.2
            },
            bypass_cache=True,
        ),
        connections,
    )

    overload_run = drive(
        "overload",
        0.0,
        None,
        sweep_mix,
        overload_connections,
        queue_limit=overload_queue_limit,
    )

    by_run = {run["run"]: run for run in runs}
    unhedged = by_run[f"no-hedge@{max_rate}"]
    hedged = by_run[f"hedge@{max_rate}"]
    p99_unhedged = unhedged["overall"]["latency"]["p99_ms"]
    p99_hedged = hedged["overall"]["latency"]["p99_ms"]
    fire_rate = hedged["hedging"]["fire_rate"]
    result.notes.append(
        f"at fault rate {max_rate}: hedging p99 {p99_hedged:.2f}ms vs "
        f"{p99_unhedged:.2f}ms unhedged "
        f"({p99_hedged / p99_unhedged:.2f}x, gate < 1) firing on "
        f"{fire_rate:.1%} of requests (gate <= 15%); interactive-only "
        "hedging p95 "
        f"{priority_run['priority']['interactive']['latency']['p95_ms']:.2f}"
        "ms vs batch "
        f"{priority_run['priority']['batch']['latency']['p95_ms']:.2f}ms."
    )
    result.notes.append(
        "overload: interactive availability "
        f"{overload_run['priority']['interactive']['availability']:.4f} "
        f"with shed by class {overload_run['shed_by_class']}."
    )
    # Hedge-loser reaping must never raise: an exception out of the
    # reaper means the cancellation path itself broke (gate: 0).
    reap_errors = sum(
        run["hedging"]["reap_errors"]
        for run in runs + [priority_run]
        if run["hedging"] is not None
    )
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(
                {
                    "scale": scale,
                    "requests": requests,
                    "warmup": warmup,
                    "connections": connections,
                    "fault_rates": fault_rates,
                    "hedge_budget": hedge_budget,
                    "runs": runs,
                    "priority_run": priority_run,
                    "overload_run": overload_run,
                    "p99_unhedged_at_max_rate": p99_unhedged,
                    "p99_hedged_at_max_rate": p99_hedged,
                    "hedge_fire_rate_at_max_rate": fire_rate,
                    "reap_errors": reap_errors,
                    "availability_at_max_rate": hedged["overall"][
                        "availability"
                    ],
                },
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
    return result


def e20_backends(
    scale: int = 4,
    rounds: int = 8,
    repeats: int = 4,
    writes_per_round: int = 2,
    backends: list[str] | None = None,
    json_path: str | None = None,
) -> ExperimentResult:
    """E20: engine backends compared on the Figure 1 workload.

    One update-aware :class:`~repro.serving.server.ViewServer` per
    registered backend (sqlite, DuckDB), each over a same-seed hotel
    database built through its
    :class:`~repro.relational.driver.EngineDriver`. Every run serves
    ``rounds`` rounds of (apply ``writes_per_round`` standard hotel
    writes, serve one serial batch of ``repeats`` x {Figure 1 raw view,
    Figure 4 composition} bulk requests). Writes are recorded
    explicitly on every backend — the one capture mode all drivers
    share — so the served request stream is identical across engines.

    Two byte gates, both must be zero:

    * **within-backend mismatches** — every response is verified
      byte-identical to an uncached serial materialization of that
      backend's live database (outside the timed window);
    * **cross-backend mismatches** — every response is compared against
      the same round/request response from the first available backend
      (sqlite): the published bytes must not change when the engine
      does.

    A backend whose module is not installed is recorded as
    ``available: false`` rather than failing the sweep. Leaked pooled
    connections are checked per backend (gate: 0). With ``json_path``
    the raw numbers land in ``BENCH_e20.json``, including the
    duckdb-over-sqlite throughput ratio when both ran.
    """
    import json
    import statistics

    from repro.core.optimize import prune_stylesheet_view
    from repro.maintenance import WriteTracker, hotel_write
    from repro.relational.driver import (
        BACKEND_NAMES,
        backend_available,
        resolve_driver,
    )
    from repro.schema_tree.evaluator import materialize
    from repro.serving import PublishRequest, ViewServer, percentile
    from repro.xmlcore.serializer import serialize

    backends = backends if backends is not None else list(BACKEND_NAMES)
    result = ExperimentResult(
        "E20",
        f"Backend drivers (scale-{scale} hotel): sqlite vs DuckDB on the "
        "Figure 1 workload, byte-checked within and across engines",
        ["backend", "requests", "req/s", "p50 ms", "hit/miss",
         "mismatches", "cross mismatches", "leaked"],
        notes=[
            f"Each available backend: {rounds} rounds of "
            f"({writes_per_round} hotel-mix writes recorded explicitly, "
            f"one serial batch of {repeats} x {{raw view, figure4}} bulk "
            "requests). Every response is byte-checked against an "
            "uncached serial materialization of the same backend AND "
            "against the first backend's response for the same "
            "round/request; both mismatch counts must be 0.",
        ],
    )
    runs: list[dict] = []
    #: (round, request index) -> response bytes of the first backend.
    reference_bytes: dict[tuple[int, int], str] = {}

    def run_backend(name: str) -> dict:
        driver = resolve_driver(name)
        db = build_hotel_database(
            HotelDataSpec().scaled(scale), cross_thread=True, seed=2003,
            driver=driver,
        )
        view = figure1_view(db.catalog)
        stylesheet = figure4_stylesheet()
        composed = compose(view, stylesheet, db.catalog)
        prune_stylesheet_view(composed, db.catalog)
        targets = [view, composed]
        tracker = WriteTracker()
        db.attach_tracker(tracker)  # explicit capture on every backend
        server = ViewServer(
            db.catalog,
            source=db,
            workers=2,
            tracker=tracker,
            staleness="strict",
            maintenance="full",
        )
        batch = [
            PublishRequest(
                view,
                stylesheet if which else None,
                strategy="bulk",
                label=f"{name}/{'figure4' if which else 'figure1'}",
            )
            for _ in range(repeats)
            for which in (0, 1)
        ]
        latencies: list[float] = []
        round_times: list[float] = []
        mismatches = 0
        cross_mismatches = 0
        step = 0
        first_backend = not reference_bytes
        try:
            server.render_many(batch)  # untimed warmup
            for round_index in range(rounds):
                for _ in range(writes_per_round):
                    hotel_write(db, step, tracker)
                    step += 1
                started = time.perf_counter()
                traces = [
                    server.submit(request).result() for request in batch
                ]
                round_times.append(time.perf_counter() - started)
                references = [
                    serialize(materialize(target, db)) for target in targets
                ]
                for index, trace in enumerate(traces):
                    latencies.append(trace.total_seconds)
                    if trace.xml != references[index % 2]:
                        mismatches += 1
                    key = (round_index, index)
                    if first_backend:
                        reference_bytes[key] = trace.xml
                    elif trace.xml != reference_bytes.get(key):
                        cross_mismatches += 1
            metrics = server.metrics()
            leaked = server.pool.outstanding()
        finally:
            server.close()
            db.close()
        median_round = statistics.median(round_times)
        rps = len(batch) / median_round if median_round else 0.0
        total = rounds * len(batch)
        cache = metrics["result_cache"]
        result.add_row(
            name, total, rps, percentile(latencies, 50) * 1000,
            f"{cache['hits']}/{cache['misses']}",
            mismatches,
            "-" if first_backend else cross_mismatches,
            leaked,
        )
        return {
            "backend": name,
            "available": True,
            "requests": total,
            "median_round_ms": round(median_round * 1000, 4),
            "throughput_rps": round(rps, 2),
            **latency_summary_ms([v * 1000 for v in latencies]),
            "result_cache": cache,
            "mismatches": mismatches,
            "cross_mismatches": None if first_backend else cross_mismatches,
            "leaked_connections": leaked,
            "contract": driver.contract(),
        }

    for name in backends:
        if not backend_available(name):
            result.add_row(name, 0, 0.0, 0.0, "-", "-", "-", "-")
            runs.append({"backend": name, "available": False})
            continue
        runs.append(run_backend(name))
    available = [run for run in runs if run["available"]]
    total_mismatches = sum(run["mismatches"] for run in available)
    total_cross = sum(run["cross_mismatches"] or 0 for run in available)
    total_leaked = sum(run["leaked_connections"] for run in available)
    by_backend = {
        run["backend"]: run["throughput_rps"] for run in available
    }
    duckdb_over_sqlite = (
        round(by_backend["duckdb"] / by_backend["sqlite"], 3)
        if "sqlite" in by_backend and "duckdb" in by_backend
        and by_backend["sqlite"]
        else None
    )
    result.notes.append(
        f"backends run: {sorted(by_backend)}; total mismatches "
        f"{total_mismatches}, cross-backend mismatches {total_cross}, "
        f"leaked connections {total_leaked} (gates: all 0)."
        + (
            f" duckdb over sqlite throughput: {duckdb_over_sqlite:.2f}x."
            if duckdb_over_sqlite is not None
            else " duckdb not installed here: sqlite-only sweep."
        )
    )
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(
                {
                    "scale": scale,
                    "rounds": rounds,
                    "repeats": repeats,
                    "writes_per_round": writes_per_round,
                    "backends": backends,
                    "runs": runs,
                    "mismatches": total_mismatches,
                    "cross_backend_mismatches": total_cross,
                    "leaked_connections": total_leaked,
                    "duckdb_over_sqlite_throughput": duckdb_over_sqlite,
                },
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
    return result


def e21_fleet(
    scale: int = 8,
    rounds: int = 10,
    repeats: int = 6,
    shards: int = 2,
    replica_counts: list[int] | None = None,
    fault_kinds: list[str] | None = None,
    fault_rate: float = 0.5,
    fault_window: int = 4,
    writes_per_round: int = 1,
    lag_budget: int = 16,
    replica_lag_ms: float = 25.0,
    hedge_requests: int = 60,
    json_path: str | None = None,
) -> ExperimentResult:
    """E21: replica-aware fleet resilience under whole-member faults.

    Where E18 injects per-query faults into one primary, E21 afflicts
    whole *members* for windows at a time
    (:class:`~repro.resilience.faults.FleetFaultPlan`): a replica's pool
    refuses new sessions (``replica-crash``), a replica's catch-up
    apply loop freezes so its version lag grows (``apply-stall``), or
    the primary stays writable but unreadable (``partition``). Three
    phases, one JSON report:

    * **strict sweep** — (fault kind x replica count) fleets under the
      E18 write/serve/verify loop: metro-local writes mirrored onto an
      unpartitioned reference, serial batches, and every *successful*
      response byte-checked against the reference's uncached serial
      materialization. Strict routing must never serve a lagging member,
      so ``mismatches`` must be 0 across every kind; under
      ``replica-crash`` with >= 2 replicas the surviving members keep
      availability >= 0.99 (the CI gate reads the 3-replica cell).
      ``apply-stall`` runs additionally record the stalled repliers'
      lag watermark — the lag has to *actually grow* for the strict
      exclusion to be tested.
    * **partition** — a bounded:``lag_budget`` fleet with
      ``replica_lag_ms`` of genuine apply delay and read-partition
      windows on the primaries: reads fail over to replicas *within the
      version budget*, so the gate is ``max_member_lag_served <=
      lag_budget`` while writes keep landing on the (writable) primary.
    * **anti-affinity** — an :class:`~repro.frontend.facade.
      AsyncViewServer` over a 1-shard/2-replica set with a latency
      fault plan on the primary and an aggressive hedge policy: every
      hedge shares a :class:`~repro.sharding.replica.PlacementGroup`
      with its primary attempt, so the router routes it to a member the
      first attempt did not use. Gates: anti-affinity rate >= 0.9,
      hedge-loser reap errors == 0.

    Leak accounting after every fleet: zero borrowed sessions, zero
    surviving ``viewserver``/``shardrouter`` threads.
    """
    import asyncio
    import json
    import statistics
    import threading

    from repro.frontend import AsyncViewServer, HedgePolicy
    from repro.maintenance.workload import hotel_metro_write
    from repro.resilience import (
        FaultPlan,
        FaultSpec,
        FleetFaultPlan,
    )
    from repro.schema_tree.evaluator import materialize
    from repro.serving import PublishRequest, percentile
    from repro.sharding import ShardRouter
    from repro.workloads.hotel import hotel_partition_scheme
    from repro.xmlcore.serializer import serialize

    replica_counts = (
        replica_counts if replica_counts is not None else [1, 2, 3]
    )
    fault_kinds = (
        fault_kinds
        if fault_kinds is not None
        else ["none", "replica-crash", "apply-stall"]
    )
    result = ExperimentResult(
        "E21",
        f"Fleet resilience (scale-{scale} hotel, {shards} shards): "
        "whole-member faults vs health-tracked replica sets",
        ["run", "replicas", "requests", "avail", "failovers",
         "skips c/p/l", "max lag srv", "mismatches"],
        notes=[
            f"{rounds} rounds of ({writes_per_round} metro-local writes, "
            f"one serial batch of {repeats} requests) per fleet; fleet "
            f"faults drawn per {fault_window}-check window at rate "
            f"{fault_rate:g}, seed 21, warmup disarmed. Strict responses "
            "are byte-checked against a mirrored unpartitioned reference "
            "(mismatches must be 0); the partition phase runs "
            f"bounded:{lag_budget} with {replica_lag_ms:g}ms of real "
            "apply delay instead (stale bytes are in-contract there, so "
            "the gate is the served lag bound).",
        ],
    )
    leaked_connections_total = 0

    def leaked_threads_now() -> int:
        return sum(
            1
            for thread in threading.enumerate()
            if thread.name.startswith(("viewserver", "shardrouter"))
        )

    def run_fleet(
        kind: str,
        fleet_replicas: int,
        staleness: str = "strict",
        lag_ms: float = 0.0,
        byte_check: bool = True,
    ) -> dict:
        """One fleet's write/serve/verify sweep under one fault kind."""
        nonlocal leaked_connections_total
        db = build_hotel_database(
            HotelDataSpec().scaled(scale), cross_thread=True
        )
        view = figure1_view(db.catalog)
        domain = [
            row["metroid"]
            for row in db.run_sql(
                "SELECT metroid FROM metroarea ORDER BY metroid", {}
            )
        ]
        plan = None
        if kind != "none":
            plan = FleetFaultPlan.for_kind(
                kind, rate=fault_rate, seed=21, window=fault_window
            )
            plan.disarm()  # warmup runs clean
        router = ShardRouter.build(
            db.catalog,
            db,
            hotel_partition_scheme(),
            shards,
            replicas=fleet_replicas,
            workers=2,
            staleness=staleness,
            maintenance="full",
            fleet_faults=plan,
            replica_lag_ms=lag_ms,
        )
        batch = [
            PublishRequest(view, strategy="bulk", label=f"e21-{kind}")
            for _ in range(repeats)
        ]
        latencies: list[float] = []
        round_times: list[float] = []
        mismatches = 0
        unavailable = 0
        step = 0
        try:
            router.render_many(batch)  # untimed warmup, plan disarmed
            if plan is not None:
                plan.arm()
            for _ in range(rounds):
                for _ in range(writes_per_round):
                    this = step
                    router.route_write(
                        lambda source, tracker: hotel_metro_write(
                            source, this, tracker=tracker, domain=domain
                        )
                    )
                    hotel_metro_write(db, this)
                    step += 1
                started = time.perf_counter()
                traces = [
                    router.submit(request).result() for request in batch
                ]
                round_times.append(time.perf_counter() - started)
                reference = (
                    serialize(materialize(view, db)) if byte_check else None
                )
                for trace in traces:
                    latencies.append(trace.total_seconds)
                    if trace.outcome not in ("success", "degraded"):
                        unavailable += 1
                    elif byte_check and trace.xml != reference:
                        mismatches += 1
            metrics = router.metrics()
            leaked = router.outstanding()
        finally:
            router.close()
            db.close()
        leaked_connections_total += leaked
        fleet = metrics["fleet"]
        skips = fleet["skips"]
        health = fleet["replica_health"]
        stall_lag = max(
            (
                member["max_lag"]
                for shard_block in health
                for member in shard_block["members"].values()
            ),
            default=0,
        )
        stalled_checks = sum(
            member["stalled_checks"] or 0
            for shard_block in health
            for member in shard_block["members"].values()
        )
        total = rounds * len(batch)
        availability = (total - unavailable) / total if total else 0.0
        median_round = statistics.median(round_times)
        result.add_row(
            kind if staleness == "strict" else f"{kind} ({staleness})",
            fleet_replicas, total, availability,
            metrics["failovers"],
            f"{skips['crash']}/{skips['partition']}/{skips['lagging']}",
            fleet["max_member_lag_served"],
            mismatches if byte_check else "-",
        )
        return {
            "kind": kind,
            "replicas": fleet_replicas,
            "staleness": staleness,
            "replica_lag_ms": lag_ms,
            "requests": total,
            "median_round_ms": round(median_round * 1000, 4),
            **latency_summary_ms([v * 1000 for v in latencies]),
            "availability": round(availability, 6),
            "byte_checked": byte_check,
            "mismatches": mismatches if byte_check else None,
            "failovers": metrics["failovers"],
            "outcomes": metrics["outcomes"],
            "skips": skips,
            "no_candidates": fleet["no_candidates"],
            "stale_serves": fleet["stale_serves"],
            "max_member_lag_served": fleet["max_member_lag_served"],
            "lag_budget": fleet["lag_budget"],
            "stall_max_lag": stall_lag,
            "stalled_checks": stalled_checks,
            "fleet_faults": fleet.get("fleet_faults"),
            "leaked_connections": leaked,
        }

    runs: list[dict] = []
    for kind in fault_kinds:
        for fleet_replicas in replica_counts:
            runs.append(run_fleet(kind, fleet_replicas))

    partition_run = run_fleet(
        "partition",
        max(max(replica_counts), 1),
        staleness=f"bounded:{lag_budget}",
        lag_ms=replica_lag_ms,
        byte_check=False,
    )

    def anti_affinity_phase() -> dict:
        """Hedged requests over a replica set: the hedge lands elsewhere.

        A total-latency fault plan on the 1-shard fleet's primary makes
        every attempt routed there stall, so its hedge fires — and the
        shared placement group steers the hedge onto a replica the
        first attempt did not use. Replicas are clean, so hedge wins
        come back fast and the loser cancels without error.
        """
        db = build_hotel_database(
            HotelDataSpec().scaled(max(scale // 4, 1)), cross_thread=True
        )
        view = figure1_view(db.catalog)
        faults = FaultPlan(
            FaultSpec(latency_rate=1.0, latency_ms=5.0),
            seed=21,
            enabled=False,  # armed after the estimator warmup
        )
        router = ShardRouter.build(
            db.catalog,
            db,
            hotel_partition_scheme(),
            1,
            replicas=2,
            workers=4,
            staleness="strict",
            faults=[faults],
            keep_xml=True,
        )
        facade = AsyncViewServer(
            router,
            hedge=HedgePolicy(
                threshold_percentile=50.0,
                min_samples=4,
                window=32,
                budget_fraction=1.0,
                delay_floor_ms=1.0,
                delay_multiplier=1.0,
            ),
        )

        async def drive() -> bool:
            for _ in range(8):  # clean warmup seeds the rolling median
                await facade.submit(
                    PublishRequest(
                        view, strategy="bulk", label="e21-hedge",
                        bypass_cache=True,
                    )
                )
            faults.arm()
            for _ in range(hedge_requests):
                await facade.submit(
                    PublishRequest(
                        view, strategy="bulk", label="e21-hedge",
                        bypass_cache=True,
                    )
                )
            return await facade.drain(10.0)

        try:
            drained = asyncio.run(drive())
            affinity = router.fleet_metrics()["anti_affinity"]
            hedging = facade.hedges.stats()
            leaked = router.outstanding()
        finally:
            router.close()
            db.close()
        nonlocal leaked_connections_total
        leaked_connections_total += leaked
        return {
            "requests": hedge_requests,
            "drained": drained,
            "hits": affinity["hits"],
            "misses": affinity["misses"],
            "rate": affinity["rate"],
            "hedges_fired": hedging["fired"],
            "hedges_won": hedging["won"],
            "reap_errors": hedging["reap_errors"],
            "leaked_connections": leaked,
        }

    affinity_run = anti_affinity_phase()
    leaked_threads = leaked_threads_now()

    strict_mismatches = sum(run["mismatches"] or 0 for run in runs)
    crash_availability = {
        str(run["replicas"]): run["availability"]
        for run in runs
        if run["kind"] == "replica-crash"
    }
    multi_replica = [
        run["availability"]
        for run in runs
        if run["kind"] == "replica-crash" and run["replicas"] >= 2
    ]
    stall_max_lag = max(
        (run["stall_max_lag"] for run in runs if run["kind"] == "apply-stall"),
        default=0,
    )
    result.notes.append(
        f"strict mismatches {strict_mismatches} (gate 0); replica-crash "
        f"availability by replica count {crash_availability} (gate >= "
        "0.99 at >= 2 replicas); apply-stall lag watermark "
        f"{stall_max_lag} (must grow > 0); partition served-lag bound "
        f"{partition_run['max_member_lag_served']} <= "
        f"{lag_budget}."
    )
    rate = affinity_run["rate"]
    result.notes.append(
        f"hedge anti-affinity: {affinity_run['hits']} hits / "
        f"{affinity_run['misses']} misses over "
        f"{affinity_run['hedges_fired']} hedges "
        + (f"(rate {rate:.3f}, gate >= 0.9)" if rate is not None
           else "(no hedges fired)")
        + f", reap errors {affinity_run['reap_errors']} (gate 0); leaks: "
        f"{leaked_connections_total} connections, "
        f"{leaked_threads} threads (gate 0)."
    )
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(
                {
                    "scale": scale,
                    "rounds": rounds,
                    "repeats": repeats,
                    "shards": shards,
                    "replica_counts": replica_counts,
                    "fault_kinds": fault_kinds,
                    "fault_rate": fault_rate,
                    "fault_window": fault_window,
                    "lag_budget": lag_budget,
                    "replica_lag_ms": replica_lag_ms,
                    "runs": runs,
                    "partition_run": partition_run,
                    "anti_affinity": affinity_run,
                    "strict_mismatches": strict_mismatches,
                    "crash_availability": crash_availability,
                    "min_crash_availability_multi_replica": (
                        min(multi_replica) if multi_replica else None
                    ),
                    "stall_max_lag": stall_max_lag,
                    "partition_max_member_lag_served": partition_run[
                        "max_member_lag_served"
                    ],
                    "leaked_connections": leaked_connections_total,
                    "leaked_threads": leaked_threads,
                },
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
    return result


def run_all(quick: bool = False) -> list[ExperimentResult]:
    """Run every experiment; ``quick`` shrinks the sweeps."""
    if quick:
        return [
            e1_end_to_end([1, 2]),
            e2_materialization([1, 2]),
            e3_selectivity(branches=8, touched_values=[1, 4, 8]),
            e4_compose_scaling_view([2, 4, 8]),
            e5_compose_scaling_stylesheet(levels=8, depths=[2, 4, 8]),
            e6_tvq_blowup([2, 4, 6]),
            e7_predicates([1, 2]),
            e8_recursion([2, 3]),
            e9_optimizer_ablation([1]),
            e10_memoization([1]),
            e11_document_order([1]),
            e12_bulk_eval([1, 2]),
            e13_serving(scale=2, workers_values=[1, 2], requests=10),
            e14_maintenance(
                scale=1, rounds=3, repeats=1, write_rates=[0, 2],
                bounded_lag=4,
            ),
            e15_incremental(
                scale=2, rounds=10, repeats=2, write_rates=[0, 2],
            ),
            e16_resilience(
                scale=1, rounds=3, repeats=1, fault_rates=[0.0, 0.3],
            ),
            e17_fragments(scale=2, rounds=3, repeats=1, row_counts=[1, 4]),
            e18_sharding(
                scale=4, rounds=4, repeats=3, shard_counts=[1, 2],
                fault_rates=[0.2],
            ),
            e19_frontend(
                scale=1, requests=120, warmup=24, fault_rates=[0.0, 0.1],
            ),
            e20_backends(scale=2, rounds=4, repeats=2),
            e21_fleet(
                scale=4, rounds=4, repeats=3, replica_counts=[1, 3],
                hedge_requests=40,
            ),
        ]
    return [
        e1_end_to_end(),
        e2_materialization(),
        e3_selectivity(),
        e4_compose_scaling_view(),
        e5_compose_scaling_stylesheet(),
        e6_tvq_blowup(),
        e7_predicates(),
        e8_recursion(),
        e9_optimizer_ablation(),
        e10_memoization(),
        e11_document_order(),
        e12_bulk_eval(),
        e13_serving(),
        e14_maintenance(),
        e15_incremental(),
        e16_resilience(),
        e17_fragments(),
        e18_sharding(replicas=1, fault_rates=[0.2]),
        e19_frontend(),
        e20_backends(),
        e21_fleet(),
    ]

"""Run the full experiment suite: ``python -m repro.harness [--quick]``.

Prints every table to the console and, with ``--write PATH``, renders the
markdown that EXPERIMENTS.md records.
"""

from __future__ import annotations

import argparse

from repro.harness.experiments import run_all
from repro.harness.reporting import render_markdown


def main() -> None:
    """Run the experiment suite from the command line."""
    parser = argparse.ArgumentParser(description="repro experiment harness")
    parser.add_argument("--quick", action="store_true", help="small sweeps")
    parser.add_argument("--write", metavar="PATH", help="write markdown tables")
    parser.add_argument(
        "--e12-json", metavar="PATH",
        help="run only E12 and record its raw numbers as JSON "
        "(scale -> view -> strategy -> counters)",
    )
    parser.add_argument(
        "--e13-json", metavar="PATH",
        help="run only E13 (concurrent serving) and record its raw "
        "numbers as JSON (runs + warm/cold speedups)",
    )
    parser.add_argument(
        "--e14-json", metavar="PATH",
        help="run only E14 (update-aware serving) and record its raw "
        "numbers as JSON (runs + bounded/strict throughput ratio)",
    )
    parser.add_argument(
        "--e15-json", metavar="PATH",
        help="run only E15 (incremental maintenance) and record its raw "
        "numbers as JSON (runs + delta/full throughput ratio)",
    )
    parser.add_argument(
        "--e16-json", metavar="PATH",
        help="run only E16 (resilient serving under fault injection) and "
        "record its raw numbers as JSON (runs + availability at the "
        "highest fault rate)",
    )
    parser.add_argument(
        "--e17-json", metavar="PATH",
        help="run only E17 (fragment-level serving) and record its raw "
        "numbers as JSON (row-pushdown sweep + fragment/delta paired "
        "ratio at the leaf-write mix)",
    )
    parser.add_argument(
        "--e18-json", metavar="PATH",
        help="run only E18 (sharded scatter/merge serving) and record "
        "its raw numbers as JSON (per-fleet-size runs + 2-shard/1-shard "
        "throughput ratio + merge-equivalence mismatch count)",
    )
    parser.add_argument(
        "--e20-json", metavar="PATH",
        help="run only E20 (backend drivers: sqlite vs DuckDB) and "
        "record its raw numbers as JSON (per-backend runs + byte-gate "
        "mismatch counts + duckdb/sqlite throughput ratio; backends "
        "whose module is absent are recorded as unavailable)",
    )
    parser.add_argument(
        "--e21-json", metavar="PATH",
        help="run only E21 (replica-aware fleet resilience) and record "
        "its raw numbers as JSON (fault-kind x replica-count strict "
        "sweep with byte checks, the bounded-staleness partition run, "
        "and the hedge anti-affinity phase, with leak checks)",
    )
    parser.add_argument(
        "--e19-json", metavar="PATH",
        help="run only E19 (async HTTP front end over real sockets) and "
        "record its raw numbers as JSON (hedge on/off x fault rate "
        "sweep + interactive-only hedging run + priority-shed overload "
        "run, with per-class latency/availability and leak checks)",
    )
    args = parser.parse_args()
    if args.e21_json:
        from repro.harness.experiments import e21_fleet

        if args.quick:
            # The sweep keeps the 3-replica replica-crash cell: the CI
            # availability gate reads it. Only rounds/batch sizes and
            # the 2-replica middle column are reduced.
            result = e21_fleet(
                scale=4, rounds=4, repeats=3, replica_counts=[1, 3],
                hedge_requests=40, json_path=args.e21_json,
            )
        else:
            result = e21_fleet(json_path=args.e21_json)
        print(result.to_console())
        print(f"wrote {args.e21_json}")
        return
    if args.e20_json:
        from repro.harness.experiments import e20_backends

        if args.quick:
            result = e20_backends(
                scale=2, rounds=4, repeats=2, json_path=args.e20_json,
            )
        else:
            result = e20_backends(json_path=args.e20_json)
        print(result.to_console())
        print(f"wrote {args.e20_json}")
        return
    if args.e19_json:
        from repro.harness.experiments import e19_frontend

        if args.quick:
            result = e19_frontend(
                scale=1, requests=120, warmup=24, fault_rates=[0.0, 0.1],
                json_path=args.e19_json,
            )
        else:
            result = e19_frontend(json_path=args.e19_json)
        print(result.to_console())
        print(f"wrote {args.e19_json}")
        return
    if args.e18_json:
        from repro.harness.experiments import e18_sharding

        if args.quick:
            # Same scale as the full sweep: the gated 2-shard/1-shard
            # ratio comes from write locality, and at small scales the
            # per-request fixed costs (scatter, merge bookkeeping)
            # swamp the recompute work being avoided; only the sweep
            # breadth and round count are reduced.
            result = e18_sharding(
                scale=8, rounds=8, repeats=6, shard_counts=[1, 2],
                fault_rates=[0.2], json_path=args.e18_json,
            )
        else:
            result = e18_sharding(fault_rates=[0.2], json_path=args.e18_json)
        print(result.to_console())
        print(f"wrote {args.e18_json}")
        return
    if args.e17_json:
        from repro.harness.experiments import e17_fragments

        if args.quick:
            # Same scale as the full sweep: the gated paired ratio needs
            # rounds long enough that the serialize share is measurable
            # over timer jitter; only the sweep breadth is reduced.
            result = e17_fragments(
                scale=8, rounds=5, repeats=2, row_counts=[1, 4],
                json_path=args.e17_json,
            )
        else:
            result = e17_fragments(json_path=args.e17_json)
        print(result.to_console())
        print(f"wrote {args.e17_json}")
        return
    if args.e16_json:
        from repro.harness.experiments import e16_resilience

        if args.quick:
            result = e16_resilience(
                scale=1, rounds=3, repeats=1, fault_rates=[0.0, 0.3],
                json_path=args.e16_json,
            )
        else:
            result = e16_resilience(json_path=args.e16_json)
        print(result.to_console())
        print(f"wrote {args.e16_json}")
        return
    if args.e15_json:
        from repro.harness.experiments import e15_incremental

        if args.quick:
            result = e15_incremental(
                scale=2, rounds=10, repeats=2, write_rates=[0, 2],
                json_path=args.e15_json,
            )
        else:
            result = e15_incremental(json_path=args.e15_json)
        print(result.to_console())
        print(f"wrote {args.e15_json}")
        return
    if args.e14_json:
        from repro.harness.experiments import e14_maintenance

        if args.quick:
            result = e14_maintenance(
                scale=1, rounds=3, repeats=1, write_rates=[0, 2],
                bounded_lag=4, json_path=args.e14_json,
            )
        else:
            result = e14_maintenance(json_path=args.e14_json)
        print(result.to_console())
        print(f"wrote {args.e14_json}")
        return
    if args.e13_json:
        from repro.harness.experiments import e13_serving

        if args.quick:
            result = e13_serving(
                scale=2, workers_values=[1, 2], requests=10,
                json_path=args.e13_json,
            )
        else:
            result = e13_serving(json_path=args.e13_json)
        print(result.to_console())
        print(f"wrote {args.e13_json}")
        return
    if args.e12_json:
        from repro.harness.experiments import e12_bulk_eval

        factors = [1, 2] if args.quick else [1, 2, 4, 8, 16, 32]
        results = [e12_bulk_eval(factors, json_path=args.e12_json)]
        for result in results:
            print(result.to_console())
        print(f"wrote {args.e12_json}")
        return
    results = run_all(quick=args.quick)
    for result in results:
        print(result.to_console())
        print()
    if args.write:
        with open(args.write, "w") as handle:
            handle.write(render_markdown(results))
        print(f"wrote {args.write}")


if __name__ == "__main__":
    main()

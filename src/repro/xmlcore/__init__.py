"""From-scratch XML substrate: node model, parser, serializer, canonical form.

This package supplies the document model used throughout the library: XML
publishing views materialize into these nodes, the XPath engine navigates
them, and the XSLT interpreter builds result fragments out of them.

The model is deliberately small (no namespaces-as-objects, no DTDs): just
elements with ordered attributes, text, and comments — exactly what the
paper's publishing model needs — but the parser accepts general well-formed
XML including CDATA sections and character references.
"""

from repro.xmlcore.nodes import (
    Comment,
    Document,
    Element,
    Node,
    Text,
)
from repro.xmlcore.parser import parse_document, parse_fragment
from repro.xmlcore.serializer import serialize, serialize_pretty
from repro.xmlcore.canonical import canonical_form, documents_equal, elements_equal

__all__ = [
    "Comment",
    "Document",
    "Element",
    "Node",
    "Text",
    "parse_document",
    "parse_fragment",
    "serialize",
    "serialize_pretty",
    "canonical_form",
    "documents_equal",
    "elements_equal",
]

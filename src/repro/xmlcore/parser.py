"""A recursive-descent XML parser producing :mod:`repro.xmlcore.nodes` trees.

The parser handles the XML constructs that appear in stylesheets and
published documents:

* elements with attributes in single or double quotes,
* character data with the five predefined entities plus numeric character
  references (``&#10;`` and ``&#x0A;``),
* CDATA sections,
* comments and processing instructions (PIs are skipped),
* an optional XML declaration and a lenient DOCTYPE skip.

It reports well-formedness violations as :class:`~repro.errors.XMLParseError`
with line/column positions. Namespace prefixes are kept as literal parts of
names (``xsl:template`` is a tag named ``"xsl:template"``), which is exactly
what the stylesheet parser wants.
"""

from __future__ import annotations

from repro.errors import XMLParseError
from repro.xmlcore.nodes import Comment, Document, Element, Node, Text

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "quot": '"',
    "apos": "'",
}

_NAME_START_EXTRA = set("_:")
_NAME_EXTRA = set("_:.-")


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START_EXTRA


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


class _Parser:
    """Single-use parser over one input string."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.length = len(source)

    # -- error helpers ----------------------------------------------------

    def _location(self, pos: int | None = None) -> tuple[int, int]:
        pos = self.pos if pos is None else pos
        line = self.source.count("\n", 0, pos) + 1
        last_nl = self.source.rfind("\n", 0, pos)
        column = pos - last_nl
        return line, column

    def _error(self, message: str, pos: int | None = None) -> XMLParseError:
        line, column = self._location(pos)
        return XMLParseError(message, line, column)

    # -- low-level scanning -----------------------------------------------

    def _peek(self) -> str:
        return self.source[self.pos] if self.pos < self.length else ""

    def _startswith(self, token: str) -> bool:
        return self.source.startswith(token, self.pos)

    def _expect(self, token: str) -> None:
        if not self._startswith(token):
            raise self._error(f"expected {token!r}")
        self.pos += len(token)

    def _skip_whitespace(self) -> None:
        while self.pos < self.length and self.source[self.pos].isspace():
            self.pos += 1

    def _read_name(self) -> str:
        start = self.pos
        if self.pos >= self.length or not _is_name_start(self.source[self.pos]):
            raise self._error("expected a name")
        self.pos += 1
        while self.pos < self.length and _is_name_char(self.source[self.pos]):
            self.pos += 1
        return self.source[start:self.pos]

    def _read_reference(self) -> str:
        """Read an entity or character reference (the ``&`` is current)."""
        start = self.pos
        self._expect("&")
        end = self.source.find(";", self.pos)
        if end < 0:
            raise self._error("unterminated entity reference", start)
        body = self.source[self.pos:end]
        self.pos = end + 1
        if body.startswith("#x") or body.startswith("#X"):
            try:
                return chr(int(body[2:], 16))
            except ValueError:
                raise self._error(f"bad character reference &{body};", start)
        if body.startswith("#"):
            try:
                return chr(int(body[1:]))
            except ValueError:
                raise self._error(f"bad character reference &{body};", start)
        if body in _PREDEFINED_ENTITIES:
            return _PREDEFINED_ENTITIES[body]
        raise self._error(f"unknown entity &{body};", start)

    # -- grammar productions ----------------------------------------------

    def parse_document(self) -> Document:
        doc = Document()
        self._skip_prolog()
        self._parse_content(doc, top_level=True)
        if doc.root_element is None:
            raise self._error("document has no root element", 0)
        if len(doc.child_elements()) > 1:
            raise self._error("document has multiple root elements", 0)
        return doc

    def parse_fragment(self) -> list[Node]:
        """Parse mixed content without the single-root requirement."""
        doc = Document()
        self._parse_content(doc, top_level=True, allow_text=True)
        children = list(doc.children)
        for child in children:
            child.parent = None
        return children

    def _skip_prolog(self) -> None:
        self._skip_whitespace()
        if self._startswith("<?xml"):
            end = self.source.find("?>", self.pos)
            if end < 0:
                raise self._error("unterminated XML declaration")
            self.pos = end + 2
        self._skip_whitespace()
        while self._startswith("<!--") or self._startswith("<!DOCTYPE") or self._startswith("<?"):
            if self._startswith("<!--"):
                self._parse_comment()
            elif self._startswith("<!DOCTYPE"):
                self._skip_doctype()
            else:
                self._skip_pi()
            self._skip_whitespace()

    def _skip_doctype(self) -> None:
        start = self.pos
        depth = 0
        while self.pos < self.length:
            ch = self.source[self.pos]
            if ch == "<":
                depth += 1
            elif ch == ">":
                depth -= 1
                if depth == 0:
                    self.pos += 1
                    return
            self.pos += 1
        raise self._error("unterminated DOCTYPE", start)

    def _skip_pi(self) -> None:
        start = self.pos
        end = self.source.find("?>", self.pos)
        if end < 0:
            raise self._error("unterminated processing instruction", start)
        self.pos = end + 2

    def _parse_comment(self) -> Comment:
        start = self.pos
        self._expect("<!--")
        end = self.source.find("-->", self.pos)
        if end < 0:
            raise self._error("unterminated comment", start)
        body = self.source[self.pos:end]
        if "--" in body:
            raise self._error("'--' not allowed inside comment", start)
        self.pos = end + 3
        return Comment(body)

    def _parse_cdata(self) -> Text:
        start = self.pos
        self._expect("<![CDATA[")
        end = self.source.find("]]>", self.pos)
        if end < 0:
            raise self._error("unterminated CDATA section", start)
        body = self.source[self.pos:end]
        self.pos = end + 3
        return Text(body)

    def _parse_element(self) -> Element:
        self._expect("<")
        tag = self._read_name()
        element = Element(tag)
        while True:
            had_space = self._peek().isspace()
            self._skip_whitespace()
            ch = self._peek()
            if ch == ">":
                self.pos += 1
                self._parse_content(element)
                self._parse_end_tag(tag)
                return element
            if self._startswith("/>"):
                self.pos += 2
                return element
            if not ch:
                raise self._error(f"unterminated start tag <{tag}>")
            if not had_space:
                raise self._error("expected whitespace before attribute")
            name, value = self._parse_attribute()
            if name in element.attributes:
                raise self._error(f"duplicate attribute {name!r} on <{tag}>")
            element.attributes[name] = value

    def _parse_attribute(self) -> tuple[str, str]:
        name = self._read_name()
        self._skip_whitespace()
        self._expect("=")
        self._skip_whitespace()
        quote = self._peek()
        if quote not in "\"'":
            raise self._error(f"attribute {name!r} value must be quoted")
        self.pos += 1
        parts: list[str] = []
        while True:
            if self.pos >= self.length:
                raise self._error(f"unterminated value for attribute {name!r}")
            ch = self.source[self.pos]
            if ch == quote:
                self.pos += 1
                return name, "".join(parts)
            if ch == "&":
                parts.append(self._read_reference())
            elif ch == "<":
                raise self._error("'<' not allowed in attribute value")
            else:
                parts.append(ch)
                self.pos += 1

    def _parse_end_tag(self, tag: str) -> None:
        start = self.pos
        self._expect("</")
        name = self._read_name()
        if name != tag:
            raise self._error(f"mismatched end tag </{name}>, expected </{tag}>", start)
        self._skip_whitespace()
        self._expect(">")

    def _parse_content(
        self, parent, top_level: bool = False, allow_text: bool = False
    ) -> None:
        """Parse child content into ``parent`` until an end tag or EOF."""
        text_parts: list[str] = []

        def flush_text() -> None:
            if text_parts:
                value = "".join(text_parts)
                text_parts.clear()
                if top_level and not allow_text:
                    if value.strip():
                        raise self._error("character data outside root element")
                    return
                parent.append(Text(value))

        while self.pos < self.length:
            ch = self.source[self.pos]
            if ch == "<":
                if self._startswith("</"):
                    flush_text()
                    if top_level:
                        raise self._error("unexpected end tag")
                    return
                flush_text()
                if self._startswith("<!--"):
                    parent.append(self._parse_comment())
                elif self._startswith("<![CDATA["):
                    parent.append(self._parse_cdata())
                elif self._startswith("<?"):
                    self._skip_pi()
                else:
                    parent.append(self._parse_element())
            elif ch == "&":
                text_parts.append(self._read_reference())
            else:
                text_parts.append(ch)
                self.pos += 1
        flush_text()
        if not top_level:
            raise self._error("unexpected end of input inside element")


def parse_document(source: str) -> Document:
    """Parse a complete XML document.

    Args:
        source: the XML text.

    Returns:
        The parsed :class:`~repro.xmlcore.nodes.Document`.

    Raises:
        XMLParseError: if the input is not well-formed.
    """
    return _Parser(source).parse_document()


def parse_fragment(source: str) -> list[Node]:
    """Parse an XML fragment (mixed content, any number of top-level nodes).

    Useful for template-rule bodies, which are fragments rather than
    documents.
    """
    return _Parser(source).parse_fragment()

"""Serialization of :mod:`repro.xmlcore` trees back to XML text."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection, Mapping, MutableMapping, Optional, Union

from repro.xmlcore.nodes import Comment, Document, Element, Node, Text


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(value: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
        .replace("\n", "&#10;")
        .replace("\t", "&#9;")
    )


def _write_node(node: Node, parts: list[str]) -> None:
    if isinstance(node, Element):
        parts.append(f"<{node.tag}")
        for name, value in node.attributes.items():
            parts.append(f' {name}="{escape_attribute(value)}"')
        if node.children:
            parts.append(">")
            for child in node.children:
                _write_node(child, parts)
            parts.append(f"</{node.tag}>")
        else:
            parts.append("/>")
    elif isinstance(node, Text):
        parts.append(escape_text(node.value))
    elif isinstance(node, Comment):
        parts.append(f"<!--{node.value}-->")
    elif isinstance(node, Document):
        for child in node.children:
            _write_node(child, parts)
    else:  # pragma: no cover - defensive
        raise TypeError(f"cannot serialize {type(node).__name__}")


def serialize(node: Union[Node, list[Node]]) -> str:
    """Serialize a node (or list of nodes) to compact XML text.

    Documents serialize as their children; no XML declaration is emitted.
    """
    parts: list[str] = []
    if isinstance(node, list):
        for item in node:
            _write_node(item, parts)
    else:
        _write_node(node, parts)
    return "".join(parts)


@dataclass
class SpliceOutcome:
    """Counters from one :func:`serialize_spliced` pass.

    ``hits`` spans were byte-copied without walking their subtree;
    ``misses`` are fragments that were walked and (re-)recorded;
    ``spliced_bytes`` is the total length of the copied spans.
    """

    hits: int = 0
    misses: int = 0
    spliced_bytes: int = 0


def serialize_spliced(
    node: Union[Node, list[Node]],
    spans: Mapping[int, str],
    record_ids: Collection[int] = (),
    record: Optional[MutableMapping[int, str]] = None,
    outcome: Optional[SpliceOutcome] = None,
) -> str:
    """Serialize, splicing cached byte spans around re-walked fragments.

    ``spans`` maps ``id(element)`` to that element's full serialization;
    an element found there is emitted as a byte copy and its subtree is
    never walked. Keying by object identity is sound because spliced
    documents are copy-on-spine: an element object is never mutated
    after capture, so identity implies identical bytes — the *caller*
    must keep the span's element alive (anchor it) so the id cannot be
    recycled, and must drop spans when the document is rebuilt from
    scratch.

    Elements whose id is in ``record_ids`` (and any ``spans`` hit) have
    their serialization stored into ``record``, building the span table
    for the next request. Recording is deferred: the walk only notes
    ``parts``-index ranges, and spans are sliced out of the final joined
    string in one pass — so a recorded element costs no extra joins
    during the walk, even when nested inside other recorded elements
    (each level still *stores* its own copy of the inner bytes).

    Output is byte-identical to :func:`serialize` by construction.
    """
    parts: list[str] = []
    outcome = outcome if outcome is not None else SpliceOutcome()
    #: (id(element), first parts index, one-past-last parts index) per
    #: recorded miss; resolved to string slices after the final join.
    pending: list[tuple[int, int, int]] = []

    def write(item: Node) -> None:
        if isinstance(item, Element):
            key = id(item)
            span = spans.get(key)
            if span is not None:
                parts.append(span)
                outcome.hits += 1
                outcome.spliced_bytes += len(span)
                if record is not None:
                    record[key] = span
                return
            start = len(parts)
            parts.append(f"<{item.tag}")
            for name, value in item.attributes.items():
                parts.append(f' {name}="{escape_attribute(value)}"')
            if item.children:
                parts.append(">")
                for child in item.children:
                    write(child)
                parts.append(f"</{item.tag}>")
            else:
                parts.append("/>")
            if record is not None and key in record_ids:
                pending.append((key, start, len(parts)))
                outcome.misses += 1
            return
        if isinstance(item, Document):
            for child in item.children:
                write(child)
            return
        _write_node(item, parts)

    if isinstance(node, list):
        for item in node:
            write(item)
    else:
        write(node)
    xml = "".join(parts)
    if pending and record is not None:
        offsets = [0]
        for part in parts:
            offsets.append(offsets[-1] + len(part))
        for key, start, end in pending:
            record[key] = xml[offsets[start]:offsets[end]]
    return xml


def _write_pretty(node: Node, parts: list[str], indent: str, depth: int) -> None:
    pad = indent * depth
    if isinstance(node, Element):
        parts.append(f"{pad}<{node.tag}")
        for name, value in node.attributes.items():
            parts.append(f' {name}="{escape_attribute(value)}"')
        element_children = [c for c in node.children if isinstance(c, (Element, Comment))]
        text_children = [c for c in node.children if isinstance(c, Text)]
        if not node.children:
            parts.append("/>\n")
        elif element_children and not any(t.value.strip() for t in text_children):
            parts.append(">\n")
            for child in element_children:
                _write_pretty(child, parts, indent, depth + 1)
            parts.append(f"{pad}</{node.tag}>\n")
        else:
            # Mixed or text-only content: keep on one line to preserve text.
            parts.append(">")
            for child in node.children:
                _write_node(child, parts)
            parts.append(f"</{node.tag}>\n")
    elif isinstance(node, Comment):
        parts.append(f"{pad}<!--{node.value}-->\n")
    elif isinstance(node, Text):
        if node.value.strip():
            parts.append(f"{pad}{escape_text(node.value)}\n")
    elif isinstance(node, Document):
        for child in node.children:
            _write_pretty(child, parts, indent, depth)


def serialize_pretty(node: Union[Node, list[Node]], indent: str = "  ") -> str:
    """Serialize with indentation, for human-readable output.

    Whitespace-only text nodes are dropped; elements with significant text
    content keep their children inline so the text is not distorted.
    """
    parts: list[str] = []
    if isinstance(node, list):
        for item in node:
            _write_pretty(item, parts, indent, 0)
    else:
        _write_pretty(node, parts, indent, 0)
    return "".join(parts)

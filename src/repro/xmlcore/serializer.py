"""Serialization of :mod:`repro.xmlcore` trees back to XML text."""

from __future__ import annotations

from typing import Union

from repro.xmlcore.nodes import Comment, Document, Element, Node, Text


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(value: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
        .replace("\n", "&#10;")
        .replace("\t", "&#9;")
    )


def _write_node(node: Node, parts: list[str]) -> None:
    if isinstance(node, Element):
        parts.append(f"<{node.tag}")
        for name, value in node.attributes.items():
            parts.append(f' {name}="{escape_attribute(value)}"')
        if node.children:
            parts.append(">")
            for child in node.children:
                _write_node(child, parts)
            parts.append(f"</{node.tag}>")
        else:
            parts.append("/>")
    elif isinstance(node, Text):
        parts.append(escape_text(node.value))
    elif isinstance(node, Comment):
        parts.append(f"<!--{node.value}-->")
    elif isinstance(node, Document):
        for child in node.children:
            _write_node(child, parts)
    else:  # pragma: no cover - defensive
        raise TypeError(f"cannot serialize {type(node).__name__}")


def serialize(node: Union[Node, list[Node]]) -> str:
    """Serialize a node (or list of nodes) to compact XML text.

    Documents serialize as their children; no XML declaration is emitted.
    """
    parts: list[str] = []
    if isinstance(node, list):
        for item in node:
            _write_node(item, parts)
    else:
        _write_node(node, parts)
    return "".join(parts)


def _write_pretty(node: Node, parts: list[str], indent: str, depth: int) -> None:
    pad = indent * depth
    if isinstance(node, Element):
        parts.append(f"{pad}<{node.tag}")
        for name, value in node.attributes.items():
            parts.append(f' {name}="{escape_attribute(value)}"')
        element_children = [c for c in node.children if isinstance(c, (Element, Comment))]
        text_children = [c for c in node.children if isinstance(c, Text)]
        if not node.children:
            parts.append("/>\n")
        elif element_children and not any(t.value.strip() for t in text_children):
            parts.append(">\n")
            for child in element_children:
                _write_pretty(child, parts, indent, depth + 1)
            parts.append(f"{pad}</{node.tag}>\n")
        else:
            # Mixed or text-only content: keep on one line to preserve text.
            parts.append(">")
            for child in node.children:
                _write_node(child, parts)
            parts.append(f"</{node.tag}>\n")
    elif isinstance(node, Comment):
        parts.append(f"{pad}<!--{node.value}-->\n")
    elif isinstance(node, Text):
        if node.value.strip():
            parts.append(f"{pad}{escape_text(node.value)}\n")
    elif isinstance(node, Document):
        for child in node.children:
            _write_pretty(child, parts, indent, depth)


def serialize_pretty(node: Union[Node, list[Node]], indent: str = "  ") -> str:
    """Serialize with indentation, for human-readable output.

    Whitespace-only text nodes are dropped; elements with significant text
    content keep their children inline so the text is not distorted.
    """
    parts: list[str] = []
    if isinstance(node, list):
        for item in node:
            _write_pretty(item, parts, indent, 0)
    else:
        _write_pretty(node, parts, indent, 0)
    return "".join(parts)

"""XML node model with parent pointers and stable document positions.

The model distinguishes four node kinds:

* :class:`Document` — the (invisible) document root; holds top-level children.
* :class:`Element` — a tagged node with ordered attributes and children.
* :class:`Text` — character data.
* :class:`Comment` — an XML comment (preserved by the parser, ignored by
  XPath and XSLT processing).

Attributes are stored in an ordered ``dict`` on the element (Python dicts
preserve insertion order), which matches the publishing model of the paper:
relational columns of a tag query surface as XML attributes of the generated
element.

Every node knows its :attr:`~Node.parent`, which the XPath ``parent`` axis
and the XSLT match semantics (suffix matching against the incoming path)
rely on.
"""

from __future__ import annotations

from typing import Iterator, Optional


class Node:
    """Base class for all XML nodes."""

    __slots__ = ("parent",)

    def __init__(self) -> None:
        self.parent: Optional[Node] = None

    def root(self) -> "Node":
        """Return the topmost ancestor (the document, for attached nodes)."""
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node

    def ancestors(self) -> Iterator["Node"]:
        """Yield ancestors from the parent up to (and including) the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def incoming_path(self) -> list[str]:
        """Return the element tags from the document root down to this node.

        Only element ancestors contribute; the document root contributes
        nothing. For an element, its own tag is the last entry. This is the
        "incoming path" the paper's MATCH function tests suffixes of.
        """
        path: list[str] = []
        node: Optional[Node] = self
        while node is not None:
            if isinstance(node, Element):
                path.append(node.tag)
            node = node.parent
        path.reverse()
        return path


class _ParentNode(Node):
    """Shared behaviour for nodes that own an ordered list of children."""

    __slots__ = ("children",)

    def __init__(self) -> None:
        super().__init__()
        self.children: list[Node] = []

    def append(self, child: Node) -> Node:
        """Attach ``child`` as the last child and return it."""
        child.parent = self
        self.children.append(child)
        return child

    def extend(self, children: list[Node]) -> None:
        """Attach every node in ``children`` in order."""
        for child in children:
            self.append(child)

    def remove(self, child: Node) -> None:
        """Detach ``child``; raises ``ValueError`` if it is not a child."""
        self.children.remove(child)
        child.parent = None

    def child_elements(self) -> list["Element"]:
        """Return the element children, in document order."""
        return [c for c in self.children if isinstance(c, Element)]

    def iter_elements(self) -> Iterator["Element"]:
        """Yield all descendant elements in document order (pre-order)."""
        for child in self.children:
            if isinstance(child, Element):
                yield child
                yield from child.iter_elements()

    def descendant_count(self) -> int:
        """Count all descendant nodes (elements, text, comments)."""
        total = 0
        for child in self.children:
            total += 1
            if isinstance(child, _ParentNode):
                total += child.descendant_count()
        return total


class Document(_ParentNode):
    """The document root. Holds exactly one element child in valid XML.

    The schema-tree evaluator relaxes the single-root requirement while a
    view is being materialized (sibling top-level elements per tag-query
    tuple), wrapping the result in a synthetic root element at the end.
    """

    __slots__ = ()

    @property
    def root_element(self) -> Optional["Element"]:
        """Return the first element child, or ``None`` for an empty document."""
        for child in self.children:
            if isinstance(child, Element):
                return child
        return None

    def __repr__(self) -> str:
        return f"Document({len(self.children)} children)"


class Element(_ParentNode):
    """An XML element: tag, ordered attributes, children."""

    __slots__ = ("tag", "attributes")

    def __init__(self, tag: str, attributes: Optional[dict[str, str]] = None):
        super().__init__()
        self.tag = tag
        self.attributes: dict[str, str] = dict(attributes) if attributes else {}

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Return the value of attribute ``name``, or ``default``."""
        return self.attributes.get(name, default)

    def set(self, name: str, value: str) -> None:
        """Set attribute ``name`` to ``value`` (stringified)."""
        self.attributes[name] = value

    def text_content(self) -> str:
        """Concatenate all descendant text, in document order."""
        parts: list[str] = []
        for child in self.children:
            if isinstance(child, Text):
                parts.append(child.value)
            elif isinstance(child, Element):
                parts.append(child.text_content())
        return "".join(parts)

    def find_children(self, tag: str) -> list["Element"]:
        """Return child elements with the given tag, in document order."""
        return [c for c in self.children if isinstance(c, Element) and c.tag == tag]

    def first_child(self, tag: str) -> Optional["Element"]:
        """Return the first child element with the given tag, or ``None``."""
        for child in self.children:
            if isinstance(child, Element) and child.tag == tag:
                return child
        return None

    def shallow_copy(self) -> "Element":
        """Return a detached copy with the same tag and attributes, no children."""
        return Element(self.tag, dict(self.attributes))

    def deep_copy(self) -> "Element":
        """Return a detached recursive copy of this element."""
        copy = self.shallow_copy()
        for child in self.children:
            if isinstance(child, Element):
                copy.append(child.deep_copy())
            elif isinstance(child, Text):
                copy.append(Text(child.value))
            elif isinstance(child, Comment):
                copy.append(Comment(child.value))
        return copy

    def __repr__(self) -> str:
        attrs = " ".join(f'{k}="{v}"' for k, v in self.attributes.items())
        head = f"<{self.tag} {attrs}>" if attrs else f"<{self.tag}>"
        return f"Element({head}, {len(self.children)} children)"


class Text(Node):
    """A run of character data."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        super().__init__()
        self.value = value

    def __repr__(self) -> str:
        preview = self.value if len(self.value) <= 40 else self.value[:37] + "..."
        return f"Text({preview!r})"


class Comment(Node):
    """An XML comment. Preserved on parse, skipped by query evaluation."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        super().__init__()
        self.value = value

    def __repr__(self) -> str:
        return f"Comment({self.value!r})"

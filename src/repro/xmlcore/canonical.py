"""Canonical forms and structural equality for XML trees.

The equivalence theorem of the paper — ``v'(I) = x(v(I))`` — is checked by
comparing XML results. Two notions of equality are provided:

* **ordered**: children must appear in the same order (the default),
* **unordered**: sibling subtrees may be permuted; used where the paper
  explicitly disclaims document order (Section 2.2.2: "We do not consider
  document order in this paper").

Canonical forms are strings, so failed assertions produce readable diffs.
"""

from __future__ import annotations

from repro.xmlcore.nodes import Comment, Document, Element, Node, Text
from repro.xmlcore.serializer import escape_attribute, escape_text


def canonical_form(node: Node, ordered: bool = True) -> str:
    """Return a canonical string for a node subtree.

    Attributes are sorted by name; whitespace-only text nodes and comments
    are dropped; adjacent text nodes merge. With ``ordered=False`` sibling
    subtrees are sorted by their canonical form, making the result
    insensitive to sibling permutations.
    """
    if isinstance(node, Document):
        parts = _canonical_children(node.children, ordered)
        return "".join(parts)
    if isinstance(node, Element):
        return _canonical_element(node, ordered)
    if isinstance(node, Text):
        return escape_text(node.value)
    if isinstance(node, Comment):
        return ""
    raise TypeError(f"cannot canonicalize {type(node).__name__}")


def _canonical_element(element: Element, ordered: bool) -> str:
    attrs = "".join(
        f' {name}="{escape_attribute(element.attributes[name])}"'
        for name in sorted(element.attributes)
    )
    children = _canonical_children(element.children, ordered)
    body = "".join(children)
    return f"<{element.tag}{attrs}>{body}</{element.tag}>"


def _canonical_children(children: list[Node], ordered: bool) -> list[str]:
    parts: list[str] = []
    text_buffer: list[str] = []

    def flush() -> None:
        if text_buffer:
            merged = "".join(text_buffer)
            text_buffer.clear()
            if merged.strip():
                parts.append(escape_text(merged))

    for child in children:
        if isinstance(child, Text):
            text_buffer.append(child.value)
        elif isinstance(child, Element):
            flush()
            parts.append(_canonical_element(child, ordered))
        elif isinstance(child, Comment):
            continue
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot canonicalize {type(child).__name__}")
    flush()
    if not ordered:
        parts.sort()
    return parts


def elements_equal(a: Element, b: Element, ordered: bool = True) -> bool:
    """Structural equality of two element subtrees."""
    return canonical_form(a, ordered) == canonical_form(b, ordered)


def documents_equal(a: Document, b: Document, ordered: bool = True) -> bool:
    """Structural equality of two documents."""
    return canonical_form(a, ordered) == canonical_form(b, ordered)

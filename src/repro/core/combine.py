"""The COMBINE function (Section 3.5, Figure 8; predicates per Section 5.1).

Given the select tree pattern ``t`` (from SELECTQ) and the match tree
pattern ``p`` (from MATCHQ), COMBINE unifies ``t``'s new query context
node with ``p``'s query context node — they reference the same schema
node by construction — and keeps unifying parents as long as both exist.
Match-chain nodes above ``t``'s root extend the pattern upward. When two
nodes unify, their predicate lists concatenate (the ``[p1 and p2]`` rule
of Section 5.1) and predicate branches hanging off the match chain are
grafted onto the unified node.

The result is the *select-match subtree* ``smt`` annotated on a CTG edge.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import UnificationError
from repro.core.tree_pattern import TPNode, TreePattern


def combine(select_pattern: TreePattern, match_pattern: TreePattern) -> TreePattern:
    """COMBINE(t, p): the unified select-match subtree.

    Neither input is mutated; the result is a fresh pattern whose
    ``context``/``new_context`` markers come from the select pattern.

    Raises:
        UnificationError: if the two context nodes (or any unified
            ancestor pair) reference different schema nodes.
    """
    if select_pattern.new_context is None:
        raise UnificationError("select pattern has no new query context node")
    if match_pattern.context is None:
        raise UnificationError("match pattern has no query context node")

    smt = select_pattern.clone()
    u_t: Optional[TPNode] = smt.new_context
    u_p: Optional[TPNode] = match_pattern.context
    match_chain = set(id(n) for n in match_pattern.context.path_from_root())

    while u_p is not None:
        if u_t is None:
            # The match chain extends above the select pattern's root:
            # grow the pattern upward (Figure 8's metro node).
            new_root = TPNode(u_p.schema_node)
            new_root.add_child(smt.root)
            smt.root = new_root
            u_t = new_root
        if u_t.schema_node.id != u_p.schema_node.id:
            raise UnificationError(
                f"cannot unify <{u_t.tag}> (id {u_t.schema_id}) with "
                f"<{u_p.tag}> (id {u_p.schema_id})"
            )
        u_t.predicates.extend(u_p.predicates)
        u_t.cross_conditions.extend(u_p.cross_conditions)
        for branch in u_p.children:
            if id(branch) not in match_chain:
                u_t.add_child(branch.clone_subtree())
        u_p = u_p.parent
        u_t = u_t.parent
    return smt

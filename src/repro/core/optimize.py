"""Post-composition optimization of stylesheet views.

The paper defers "optimization of ... the resulting queries" to future
work (Section 1) and points at classic nested-query optimization [8].
This module implements the most profitable and safely-checkable pass for
the queries UNBIND produces: **dead column elimination**.

Unbinding carries *every* ancestor column through each composed query
(Figure 7(a)'s ``TEMP.*``), but a node's row only needs:

* the columns it surfaces as XML attributes (``attr_columns``),
* the columns referenced as ``$bv.column`` by descendant tag queries or
  by descendant nodes' ``attr_columns`` (through ``attr_source_bv``).

Everything else can be dropped from the SELECT list. GROUP BY lists are
left untouched — grouping by an unprojected column is valid SQL and
preserves the aggregation semantics exactly, so the pass cannot change
results (the equivalence tests in ``tests/core/test_optimize.py`` verify
this, and an ablation benchmark measures the payoff).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schema_tree.model import SchemaNode, SchemaTreeQuery
from repro.sql.analysis import TableColumns
from repro.sql.ast import ParamRef, SelectItem
from repro.sql.params import walk_exprs
from repro.sql.transform import expand_stars

#: Version tag of the dead-column-elimination pass, folded into
#: plan-cache keys (:mod:`repro.serving.fingerprint`). Bump whenever the
#: pass changes which columns it keeps, so cached pruned plans compiled
#: under the old rules are invalidated rather than served.
PRUNE_PASS_FINGERPRINT = "dead-column-elimination/v1"


@dataclass
class PruneReport:
    """What dead-column elimination removed."""

    nodes_pruned: int = 0
    columns_removed: int = 0
    columns_kept: int = 0


def required_columns(node: SchemaNode) -> set[str]:
    """The output columns a node's row must expose."""
    needed: set[str] = set()
    if node.attr_columns is None:
        # The publishing default surfaces every column; nothing to prune.
        return set()
    needed.update(node.attr_columns)
    needed.update(node.data_attributes.values())
    if node.bv is None:
        return needed
    for descendant in node.walk():
        if descendant is node:
            continue
        if descendant.tag_query is not None:
            for expr in walk_exprs(descendant.tag_query):
                if isinstance(expr, ParamRef) and expr.var == node.bv:
                    needed.add(expr.column)
        if descendant.attr_source_bv == node.bv:
            if descendant.attr_columns:
                needed.update(descendant.attr_columns)
            needed.update(descendant.data_attributes.values())
    return needed


def prune_node_query(node: SchemaNode, catalog: TableColumns) -> tuple[int, int]:
    """Drop unneeded SELECT items from one node's tag query.

    Returns ``(removed, kept)`` column counts. No-ops when the node keeps
    the surface-everything default (``attr_columns is None``).
    """
    query = node.tag_query
    if query is None or node.attr_columns is None:
        return (0, 0)
    if query.distinct:
        # Projecting fewer columns under DISTINCT changes the row count.
        return (0, 0)
    needed = required_columns(node)
    expand_stars(query, catalog)
    kept: list[SelectItem] = []
    removed = 0
    for item in query.items:
        name = item.output_name()
        if name is not None and name in needed:
            kept.append(item)
        else:
            removed += 1
    if not kept:
        # The element must still be produced with the same cardinality;
        # keeping the first original item preserves the one-row semantics
        # of ungrouped aggregates (a constant would not).
        kept = [query.items[0]]
        removed -= 1
    query.items = kept
    return (removed, len(kept))


def prune_stylesheet_view(
    view: SchemaTreeQuery, catalog: TableColumns
) -> PruneReport:
    """Dead-column elimination over a whole (composed) view, in place."""
    report = PruneReport()
    for node in view.nodes(include_root=False):
        removed, kept = prune_node_query(node, catalog)
        if removed:
            report.nodes_pruned += 1
        report.columns_removed += removed
        report.columns_kept += kept
    return report

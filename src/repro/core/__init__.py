"""The paper's contribution: composing XSLT stylesheets with XML views.

``compose(view, stylesheet, catalog)`` runs the four-step algorithm of
Figure 9 and returns the *stylesheet view* — a new schema-tree query
``v'`` with ``v'(I) = x(v(I))`` for every database instance ``I``.

Step modules:

1. :mod:`~repro.core.ctg` — context transition graph (Section 4.1),
   built on :mod:`~repro.core.abstract_eval` (MATCHQ/SELECTQ) and
   :mod:`~repro.core.combine` (COMBINE) over
   :mod:`~repro.core.tree_pattern` tree patterns,
2. :mod:`~repro.core.tvq` — traverse view query (Section 4.2), with the
   SQL generation in :mod:`~repro.core.unbind` and
   :mod:`~repro.core.nest`,
3. :mod:`~repro.core.ott` — output tag trees (Section 4.3),
4. :mod:`~repro.core.stylesheet_view` — pushdown and forced unbinding
   (Section 4.4).

Section 5 features: predicates compose natively; flow control, general
``value-of`` and rule conflicts are lowered by
:mod:`~repro.core.rewrites`; recursion is handled by partial pushdown in
:mod:`~repro.core.recursion` and the fallback in :mod:`~repro.core.hybrid`.
"""

from repro.core.compose import compose, compose_basic
from repro.core.ctg import ContextTransitionGraph, build_ctg
from repro.core.tvq import TraverseViewQuery, build_tvq
from repro.core.hybrid import HybridExecutor, HybridPlan

__all__ = [
    "compose",
    "compose_basic",
    "ContextTransitionGraph",
    "build_ctg",
    "TraverseViewQuery",
    "build_tvq",
    "HybridExecutor",
    "HybridPlan",
]

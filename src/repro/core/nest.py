"""NEST (Figure 11, with the Figure 19 predicate changes).

``nest(tp, catalog)`` builds the *nested tag query* Θ for a tree-pattern
node: a clone of the schema node's tag query with

* the TPNode's own predicates folded into WHERE/HAVING,
* one ``EXISTS`` (or ``NOT EXISTS`` for negated branches — our extension)
  subquery per tree-pattern child, recursively.

The result still references ancestor binding variables as parameters;
UNBIND later inlines or renames them.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import CompositionError, UnsupportedFeatureError
from repro.core.predicates import (
    OwnQueryResolver,
    ParamResolver,
    apply_cross_conditions,
    apply_predicates,
)
from repro.core.tree_pattern import TPNode
from repro.sql.analysis import TableColumns, from_item_columns, output_columns
from repro.sql.ast import ColumnRef, ExistsExpr, ParamRef, Select, UnaryOp
from repro.sql.params import map_exprs


def nest(
    tp: TPNode,
    catalog: TableColumns,
    exclude_child: Optional[TPNode] = None,
) -> Select:
    """Θ(tp): the nested tag query for a tree-pattern node.

    Args:
        tp: the tree-pattern node; its schema node must carry a tag query.
        catalog: column resolution for predicate translation.
        exclude_child: the on-path child to skip (the ``p'`` argument of
            Figure 11's ``NEST(p, p')``) — its query is inlined by UNBIND
            instead of nested under EXISTS.

    Raises:
        CompositionError: if the schema node has no tag query (only the
            synthetic root lacks one, and NEST is never called on it).
    """
    if tp.schema_node.tag_query is None:
        raise CompositionError(
            f"schema node {tp.schema_node.id} <{tp.tag}> has no tag query"
        )
    query = tp.schema_node.tag_query.clone()
    if tp.predicates:
        apply_predicates(query, tp.predicates, OwnQueryResolver(query, catalog))
    if tp.cross_conditions:
        own = OwnQueryResolver(query, catalog)

        def resolver_for(schema_node):
            if schema_node is tp.schema_node:
                return own
            columns = (
                output_columns(schema_node.tag_query, catalog)
                if schema_node.tag_query is not None
                else []
            )
            return ParamResolver(schema_node.bv, columns)

        apply_cross_conditions(query, tp.cross_conditions, resolver_for)
    own_bv = tp.schema_node.bv
    for child in tp.children:
        if child is exclude_child:
            continue
        subquery = nest(child, catalog)
        if own_bv is not None:
            # The child's query references this node's binding variable;
            # inside the EXISTS the reference becomes a correlated column
            # of this query's FROM tables.
            _correlate_self_params(subquery, own_bv, query, catalog)
        condition = ExistsExpr(subquery)
        if child.negated:
            query.add_where(UnaryOp("NOT", condition))
        else:
            query.add_where(condition)
    return query


def _correlate_self_params(
    subquery: Select, bv: str, owner: Select, catalog: TableColumns
) -> None:
    """Rewrite ``$bv.col`` inside an EXISTS body into correlated column
    references against the owning query's FROM items."""

    def fn(expr):
        if isinstance(expr, ParamRef) and expr.var == bv:
            return resolve_source_column(owner, expr.column, catalog)
        return None

    map_exprs(subquery, fn)


def resolve_source_column(query: Select, column: str, catalog: TableColumns) -> ColumnRef:
    """A qualified reference to ``column`` among ``query``'s FROM items.

    Raises:
        UnsupportedFeatureError: if no FROM item supplies the column (it
            is a computed/aggregate output, which a correlated subquery
            cannot reference).
    """
    for from_item in query.from_items:
        if column in from_item_columns(from_item, catalog):
            return ColumnRef(column, table=from_item.binding_name)
    raise UnsupportedFeatureError(
        "correlated-computed-column",
        f"column {column!r} is computed by the query and cannot be "
        "referenced from a correlated subquery",
    )

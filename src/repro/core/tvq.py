"""Step 2: the Traverse View Query (Sections 3.2, 4.2; Figure 7(a)).

The TVQ is the CTG unfolded into a tree: every CTG node reachable along
several edge paths is duplicated once per path (Section 4.2.2 — this is
the potentially-exponential step). Each TVQ node receives a fresh binding
variable, and each edge's select-match subtree is translated into the
node's parameterized tag query by UNBIND.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import CompositionError, UnsupportedFeatureError
from repro.core.ctg import CTGNode, ContextTransitionGraph
from repro.core.tree_pattern import TreePattern
from repro.core.unbind import Exposure, unbind_edge
from repro.schema_tree.model import SchemaNode
from repro.sql.analysis import TableColumns
from repro.sql.ast import Select
from repro.xslt.model import ApplyTemplates, DEFAULT_MODE, TemplateRule


@dataclass(eq=False)
class TVQNode:
    """One node of the traverse view query."""

    schema_node: SchemaNode
    rule: TemplateRule
    bv: Optional[str] = None
    tag_query: Optional[Select] = None
    apply: Optional[ApplyTemplates] = None
    smt: Optional[TreePattern] = None
    bvmap: dict[str, str] = field(default_factory=dict)
    exposure: Exposure = field(default_factory=dict)
    children: list["TVQNode"] = field(default_factory=list)
    parent: Optional["TVQNode"] = None

    def add_child(self, child: "TVQNode") -> "TVQNode":
        """Attach ``child`` and return it."""
        child.parent = self
        self.children.append(child)
        return child

    def walk(self):
        """Yield this node and its descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return (
            f"TVQNode(({self.schema_node.id}, {self.schema_node.tag or 'root'}), "
            f"R{self.rule.position + 1}, ${self.bv})"
        )


class TraverseViewQuery:
    """The TVQ: a tree of (schema node, rule) pairs with tag queries."""

    def __init__(self, root: TVQNode):
        self.root = root

    def nodes(self) -> list[TVQNode]:
        """All TVQ nodes, pre-order."""
        return list(self.root.walk())

    def size(self) -> int:
        """Node count, including the root."""
        return len(self.nodes())

    def describe(self) -> str:
        """Readable outline (tests compare against Figure 7(a))."""
        from repro.sql.printer import print_select

        lines: list[str] = []

        def visit(node: TVQNode, depth: int) -> None:
            indent = "  " * depth
            bv = f" ${node.bv}" if node.bv else ""
            lines.append(
                f"{indent}(({node.schema_node.id}, "
                f"{node.schema_node.tag or 'root'}), R{node.rule.position + 1}){bv}"
            )
            if node.tag_query is not None:
                lines.append(f"{indent}  := {print_select(node.tag_query)}")
            for child in node.children:
                visit(child, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)


def build_tvq(
    ctg: ContextTransitionGraph,
    catalog: TableColumns,
    max_nodes: int = 10_000,
    paper_mode: bool = False,
) -> TraverseViewQuery:
    """Unfold the CTG into a TVQ and generate all tag queries.

    Args:
        ctg: the pruned context transition graph.
        catalog: column resolution for UNBIND.
        max_nodes: safety bound on the unfolded size (the duplication of
            Section 4.2.2 can be exponential).

    Raises:
        UnsupportedFeatureError: if the CTG is recursive (restriction 3);
            use :mod:`repro.core.recursion` / :mod:`repro.core.hybrid`.
        CompositionError: if no default-mode rule matches the document
            root, or the unfolding exceeds ``max_nodes``.
    """
    if ctg.has_cycle():
        raise UnsupportedFeatureError(
            "recursion", "the context transition graph is cyclic"
        )
    sources = [s for s in ctg.sources() if s.rule.mode == DEFAULT_MODE]
    if not sources:
        raise CompositionError("no default-mode rule matches the document root")
    if len(sources) > 1:
        raise CompositionError(
            "multiple default-mode rules match the document root"
        )
    source = sources[0]
    builder = _Builder(catalog, max_nodes, paper_mode)
    root = TVQNode(source.schema_node, source.rule)
    builder.expand(root, source)
    return TraverseViewQuery(root)


class _Builder:
    def __init__(self, catalog: TableColumns, max_nodes: int, paper_mode: bool = False):
        self.catalog = catalog
        self.max_nodes = max_nodes
        self.paper_mode = paper_mode
        self.count = 1
        self._bv_counts: dict[str, int] = {}
        # Global registry: TVQ binding variable -> exposure of its node.
        self.exposures: dict[str, Exposure] = {}

    def fresh_bv(self, schema_node: SchemaNode) -> str:
        base = f"{schema_node.bv or schema_node.tag or 'v'}_new"
        seen = self._bv_counts.get(base, 0)
        self._bv_counts[base] = seen + 1
        if seen == 0:
            return base
        return f"{base}{seen + 1}"

    def expand(self, tvq_node: TVQNode, ctg_node: CTGNode) -> None:
        for edge in ctg_node.outgoing:
            self.count += 1
            if self.count > self.max_nodes:
                raise CompositionError(
                    f"TVQ unfolding exceeded {self.max_nodes} nodes "
                    "(multi-incoming-edge blowup, Section 4.2.2)"
                )
            child = TVQNode(
                schema_node=edge.target.schema_node,
                rule=edge.target.rule,
                bv=self.fresh_bv(edge.target.schema_node),
                apply=edge.apply,
                smt=edge.smt,
            )
            result = unbind_edge(
                edge.smt,
                child.bv,
                tvq_node.bvmap,
                self.exposures,
                self.catalog,
                paper_mode=self.paper_mode,
            )
            child.tag_query = result.query
            child.bvmap = result.bvmap
            child.exposure = result.exposure
            self.exposures[child.bv] = result.exposure
            if edge.apply.sorts:
                self._apply_sorts(child, edge.apply.sorts)
            tvq_node.add_child(child)
            self.expand(child, edge.target)

    def _apply_sorts(self, child: TVQNode, sorts) -> None:
        """Translate xsl:sort keys into the tag query's ORDER BY.

        xsl:sort overrides document order among the selected nodes, so
        the keys *replace* any order inherited from the chain. Only
        ``@attr`` keys compose (the value-of restriction's analogue);
        keys over attributes the node cannot carry are dropped — absent
        keys compare equal under XSLT, preserving the remaining order.
        """
        from repro.errors import UnsupportedFeatureError
        from repro.core.predicates import OwnQueryResolver, _MissingAttribute
        from repro.sql.ast import OrderItem
        from repro.xpath.ast import AttributeRef

        if child.tag_query is None:
            raise UnsupportedFeatureError(
                "sort", "xsl:sort on a query-less transition"
            )
        resolver = OwnQueryResolver(child.tag_query, self.catalog)
        order: list[OrderItem] = []
        for sort in sorts:
            if not isinstance(sort.select, AttributeRef):
                raise UnsupportedFeatureError(
                    "sort",
                    f"only '@attr' sort keys compose "
                    f"(got {sort.select.to_text()!r})",
                )
            try:
                resolved = resolver.resolve(sort.select.name)
            except _MissingAttribute:
                continue
            expr = resolved.expr
            if sort.data_type == "text":
                # XSLT's default sort is lexicographic even for numbers;
                # concatenating '' coerces sqlite to TEXT collation.
                from repro.sql.ast import BinOp, LiteralValue

                expr = BinOp("||", expr, LiteralValue(""))
            order.append(OrderItem(expr, sort.ascending))
        child.tag_query.order_by = order

"""The hybrid executor: compose what is composable, interpret the rest.

Planning ladder (cheapest execution first):

1. **composed** — full composition succeeded; evaluating the stylesheet
   view alone produces the answer (no XSLT processing at runtime).
2. **recursive** — the Section 5.3 partial pushdown applies: evaluate the
   (small) composed view, then run the rewritten stylesheet over it.
3. **fallback** — materialize the original view and run the original
   stylesheet; always correct.

The chosen plan records why the better plans were rejected, which the
benchmark harness reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import CompositionError, UnsupportedFeatureError
from repro.core.compose import compose
from repro.core.recursion import RecursivePlan, compose_recursive_pair
from repro.relational.engine import Database
from repro.relational.schema import Catalog
from repro.schema_tree.evaluator import ViewEvaluator
from repro.schema_tree.model import SchemaTreeQuery
from repro.xmlcore.nodes import Document
from repro.xslt.model import Stylesheet
from repro.xslt.processor import XSLTProcessor


@dataclass
class HybridPlan:
    """A chosen execution strategy."""

    kind: str  # "composed" | "recursive" | "fallback"
    view: SchemaTreeQuery
    stylesheet: Optional[Stylesheet] = None
    builtin_rules: str = "empty"
    notes: list[str] = field(default_factory=list)


class HybridExecutor:
    """Plans and executes a stylesheet over a publishing view."""

    def __init__(
        self,
        view: SchemaTreeQuery,
        stylesheet: Stylesheet,
        catalog: Catalog,
        max_nodes: int = 10_000,
        fallback_builtin_rules: str = "empty",
    ):
        self.view = view
        self.stylesheet = stylesheet
        self.catalog = catalog
        self.fallback_builtin_rules = fallback_builtin_rules
        self.plan = self._plan(max_nodes)

    def _plan(self, max_nodes: int) -> HybridPlan:
        notes: list[str] = []
        try:
            composed = compose(
                self.view, self.stylesheet, self.catalog, max_nodes=max_nodes
            )
            return HybridPlan(kind="composed", view=composed, notes=notes)
        except (UnsupportedFeatureError, CompositionError) as exc:
            notes.append(f"full composition rejected: {exc}")
        # Recursive stylesheets fail full composition in several ways (a
        # cyclic CTG, variables in predicates, or no root rule at all when
        # the entry rule matches an element), so the partial pushdown is
        # attempted on any failure; it rejects cleanly when the shape does
        # not fit.
        try:
            plan = compose_recursive_pair(self.view, self.stylesheet, self.catalog)
            return HybridPlan(
                kind="recursive",
                view=plan.view,
                stylesheet=plan.stylesheet,
                builtin_rules="standard",
                notes=notes,
            )
        except (UnsupportedFeatureError, CompositionError) as exc:
            notes.append(f"recursive pushdown rejected: {exc}")
        return HybridPlan(
            kind="fallback",
            view=self.view,
            stylesheet=self.stylesheet,
            builtin_rules=self.fallback_builtin_rules,
            notes=notes,
        )

    def execute(self, db: Database) -> Document:
        """Run the chosen plan against a database."""
        evaluator = ViewEvaluator(db)
        document = evaluator.materialize(self.plan.view)
        if self.plan.stylesheet is None:
            return document
        processor = XSLTProcessor(
            self.plan.stylesheet, builtin_rules=self.plan.builtin_rules
        )
        return processor.process_document(document)

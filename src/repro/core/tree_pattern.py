"""Tree-pattern queries over schema trees (Section 3.5).

A tree pattern is a tree of :class:`TPNode` values. Each TPNode references
a schema-tree node and carries the attribute predicates collected from the
XPath steps/predicates that visited it. Distinct TPNodes may reference the
same schema node (Figure 18 has two ``confstat`` TPNodes under ``hotel``,
with different predicates) — a TPNode is a *condition on one document
node*, not the schema node itself.

A pattern marks two distinguished nodes: the **query context node**
(where abstract evaluation started) and the **new query context node**
(where the select expression landed); see Figure 8.

Extension beyond the paper: a TPNode may be ``negated``, meaning *no*
matching document node may exist. Negated branches arise from ``not(path)``
predicates, which the Figure 24 conflict-resolution rewrite produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.schema_tree.model import SchemaNode
from repro.xpath.ast import Expr


@dataclass(frozen=True)
class CrossNodeCondition:
    """A negated conjunction of predicates spread over several nodes.

    Produced by ``not(path)`` predicates whose path climbs *upward* only
    (the reversed patterns of the Figure 24 conflict rewrite): the chain's
    existence is statically guaranteed, so the test reduces to
    ``NOT (pred_on_node_1 AND pred_on_node_2 AND ...)``. Each term pairs
    the schema node the predicate applies to with the scalar expression.
    """

    terms: tuple[tuple[SchemaNode, Expr], ...]


@dataclass(eq=False)
class TPNode:
    """One node of a tree pattern."""

    schema_node: SchemaNode
    predicates: list[Expr] = field(default_factory=list)
    children: list["TPNode"] = field(default_factory=list)
    parent: Optional["TPNode"] = None
    negated: bool = False
    cross_conditions: list[CrossNodeCondition] = field(default_factory=list)

    @property
    def tag(self) -> str:
        return self.schema_node.tag

    @property
    def schema_id(self) -> int:
        return self.schema_node.id

    def add_child(self, child: "TPNode") -> "TPNode":
        """Attach ``child`` and return it."""
        child.parent = self
        self.children.append(child)
        return child

    def walk(self) -> Iterator["TPNode"]:
        """Yield this node and its descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def path_from_root(self) -> list["TPNode"]:
        """TPNodes from the pattern root down to this node, inclusive."""
        path: list[TPNode] = []
        node: Optional[TPNode] = self
        while node is not None:
            path.append(node)
            node = node.parent
        path.reverse()
        return path

    def clone_subtree(self) -> "TPNode":
        """Detached deep copy of this node and its descendants."""
        duplicate = TPNode(self.schema_node, list(self.predicates), negated=self.negated)
        duplicate.cross_conditions = list(self.cross_conditions)
        for child in self.children:
            duplicate.add_child(child.clone_subtree())
        return duplicate

    def __repr__(self) -> str:
        flags = "!" if self.negated else ""
        preds = f" [{len(self.predicates)} preds]" if self.predicates else ""
        return f"TPNode({flags}{self.schema_id}:{self.tag}{preds})"


@dataclass(eq=False)
class TreePattern:
    """A tree pattern with its two distinguished context nodes."""

    root: TPNode
    context: Optional[TPNode] = None
    new_context: Optional[TPNode] = None

    def nodes(self) -> list[TPNode]:
        """All TPNodes of the pattern, pre-order."""
        return list(self.root.walk())

    def size(self) -> int:
        """Node count (``max_b`` of Section 4.5 bounds this)."""
        return len(self.nodes())

    def describe(self) -> str:
        """One-node-per-line outline with context markers (used in tests)."""
        lines: list[str] = []

        def visit(node: TPNode, depth: int) -> None:
            marks = []
            if node is self.context:
                marks.append("query context node")
            if node is self.new_context:
                marks.append("new query context node")
            if node.negated:
                marks.append("negated")
            suffix = f"  ({', '.join(marks)})" if marks else ""
            preds = ""
            if node.predicates:
                preds = "".join(f"[{p.to_text()}]" for p in node.predicates)
            lines.append(f"{'  ' * depth}{node.tag}({node.schema_id}){preds}{suffix}")
            for child in node.children:
                visit(child, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)

    def clone(self) -> "TreePattern":
        """Deep copy preserving the context markers."""
        mapping: dict[int, TPNode] = {}

        def copy(node: TPNode) -> TPNode:
            duplicate = TPNode(
                node.schema_node, list(node.predicates), negated=node.negated
            )
            duplicate.cross_conditions = list(node.cross_conditions)
            mapping[id(node)] = duplicate
            for child in node.children:
                duplicate.add_child(copy(child))
            return duplicate

        root = copy(self.root)
        return TreePattern(
            root=root,
            context=mapping.get(id(self.context)) if self.context else None,
            new_context=mapping.get(id(self.new_context)) if self.new_context else None,
        )

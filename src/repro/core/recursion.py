"""Partial pushdown for recursive stylesheets (Section 5.3, Figs 25-27).

Recursion between rules arises when parent/ancestor navigation lets a
rule's apply-templates reach a context that re-fires an earlier rule. Such
stylesheets cannot be fully composed (the CTG is cyclic, and runtime
parameters like ``$idx`` control termination), but the *data access* can
still be pushed into SQL: the paper's example composes Figure 25 with the
Figure 1 view into the stylesheet view of Figure 26 — a ``metro`` node
with two pushed-down children ``metroavail_down`` / ``metroavail_up`` —
plus the rewritten stylesheet of Figure 27, which recurses between the
two siblings while carrying ``$idx``.

This module implements that transformation for the paper's shape — a
non-recursive **entry rule** whose apply descends from its context ``m0``
to a node ``n``, and a **recursive rule** on ``n`` whose apply climbs
back to ``m0``:

* variable-free predicates are *baked into* the pushed-down queries
  (``HAVING COUNT(a_id)>10`` inside, ``>50`` on the up query),
* predicates mentioning XSLT variables stay in the rewritten stylesheet
  (``[@COUNT_a_id<$idx]`` on the down selects),
* the rewritten stylesheet navigates ``down -> ../up -> ../down`` and is
  executed by the interpreter over the (much smaller) composed view.

The paper notes its algorithm here "is currently limited to only a few
cases"; so is this one — :class:`~repro.core.hybrid.HybridExecutor`
provides the always-correct fallback. As in the paper, the rewritten
``value-of "."`` emits elements tagged with the *composed* names
(``metroavail_down``), and the fan-out of the down→up transition assumes
at most one qualifying ``up`` element per round (the example's implicit
assumption — see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnsupportedFeatureError
from repro.core.abstract_eval import abstract_targets, matchq, selectq
from repro.core.combine import combine
from repro.core.rewrites.common import copy_output, copy_rule
from repro.core.unbind import unbind_edge
from repro.relational.schema import Catalog
from repro.schema_tree.model import SchemaNode, SchemaTreeQuery
from repro.sql.analysis import output_columns
from repro.xpath.ast import (
    Axis,
    AttributeRef,
    BinaryOp,
    Expr,
    FunctionCall,
    LocationPath,
    PathExpr,
    Step,
    VariableRef,
)
from repro.xpath.parser import parse_pattern
from repro.xslt.model import (
    ApplyTemplates,
    Choose,
    DEFAULT_MODE,
    IfInstruction,
    LiteralElement,
    OutputNode,
    Stylesheet,
    TemplateRule,
)


@dataclass
class RecursivePlan:
    """The output of partial pushdown: evaluate ``view`` with the engine,
    then run ``stylesheet`` (with standard built-in rules) over it."""

    view: SchemaTreeQuery
    stylesheet: Stylesheet
    down_tag: str
    up_tag: str


def _expr_has_variables(expr: Expr) -> bool:
    if isinstance(expr, VariableRef):
        return True
    if isinstance(expr, BinaryOp):
        return _expr_has_variables(expr.left) or _expr_has_variables(expr.right)
    if isinstance(expr, FunctionCall):
        return any(_expr_has_variables(a) for a in expr.args)
    if isinstance(expr, PathExpr):
        return any(
            any(_expr_has_variables(p) for p in step.predicates)
            for step in expr.path.steps
        )
    return False


def _split_variable_predicates(path: LocationPath) -> tuple[LocationPath, list[Expr]]:
    """Strip predicates that mention XSLT variables from a path.

    Returns the stripped path and the removed predicates (they stay in
    the rewritten stylesheet; only variable-free conditions push down).
    Variable predicates are only supported on the final step.
    """
    kept_steps: list[Step] = []
    removed: list[Expr] = []
    for index, step in enumerate(path.steps):
        static = tuple(p for p in step.predicates if not _expr_has_variables(p))
        dynamic = [p for p in step.predicates if _expr_has_variables(p)]
        if dynamic and index != len(path.steps) - 1:
            raise UnsupportedFeatureError(
                "recursion",
                "variable predicates on interior steps cannot be pushed down",
            )
        removed.extend(dynamic)
        kept_steps.append(Step(step.axis, step.node_test, static))
    return LocationPath(tuple(kept_steps), path.absolute), removed


def compose_recursive_pair(
    view: SchemaTreeQuery, stylesheet: Stylesheet, catalog: Catalog
) -> RecursivePlan:
    """Compose a Figure 25-shaped recursive stylesheet with a view.

    Raises:
        UnsupportedFeatureError: when the stylesheet does not have the
            supported entry/recursive pair shape.
    """
    entry_rule, m0, a0 = _find_entry(view, stylesheet)
    stripped0, dynamic0 = _split_variable_predicates(a0.select)
    targets = abstract_targets(m0, stripped0)
    plan = None
    for n in targets:
        for rec_rule in stylesheet.rules:
            if rec_rule is entry_rule or rec_rule.mode != a0.mode:
                continue
            if matchq(n, rec_rule) is None:
                continue
            for a1 in rec_rule.apply_templates_nodes():
                stripped1, dynamic1 = _split_variable_predicates(a1.select)
                if m0 in abstract_targets(n, stripped1):
                    plan = (n, rec_rule, a1, stripped1, dynamic1)
                    break
            if plan:
                break
        if plan:
            break
    if plan is None:
        raise UnsupportedFeatureError(
            "recursion", "no entry/recursive rule pair of the supported shape"
        )
    n, rec_rule, a1, stripped1, dynamic1 = plan
    return _build_plan(
        view, catalog, entry_rule, rec_rule,
        m0, n, a0, stripped0, dynamic0, a1, stripped1,
    )


def _find_entry(
    view: SchemaTreeQuery, stylesheet: Stylesheet
) -> tuple[TemplateRule, SchemaNode, ApplyTemplates]:
    """Locate the non-recursive entry rule and its descent apply."""
    for rule in stylesheet.rules:
        if rule.mode != DEFAULT_MODE:
            continue
        for schema_node in view.root.children:
            if matchq(schema_node, rule) is None:
                continue
            applies = rule.apply_templates_nodes()
            if len(applies) != 1:
                continue
            return rule, schema_node, applies[0]
    raise UnsupportedFeatureError(
        "recursion", "no entry rule matching a top-level view node"
    )


def _build_plan(
    view: SchemaTreeQuery,
    catalog: Catalog,
    entry_rule: TemplateRule,
    rec_rule: TemplateRule,
    m0: SchemaNode,
    n: SchemaNode,
    a0: ApplyTemplates,
    stripped0: LocationPath,
    dynamic0: list[Expr],
    a1: ApplyTemplates,
    stripped1: LocationPath,
) -> RecursivePlan:
    down_tag = f"{_base_name(n.tag)}_down"
    up_tag = f"{_base_name(n.tag)}_up"

    # --- the pushed-down queries ------------------------------------------------
    entry_bv = f"{m0.bv or m0.tag}_new"
    exposures = {
        entry_bv: {
            m0.bv: {c: c for c in output_columns(m0.tag_query, catalog)}
        }
    }
    parent_bvmap = {m0.bv: entry_bv}

    down_apply = ApplyTemplates(stripped0, a0.mode)
    smt_down = combine(
        selectq(m0, down_apply, n), matchq(n, rec_rule)
    )
    q_down = unbind_edge(
        smt_down, "md", parent_bvmap, exposures, catalog
    ).query

    # The up query repeats the descent but additionally bakes in the
    # recursive apply's self conditions (Figure 26's HAVING COUNT>50).
    smt_up = combine(selectq(m0, down_apply, n), matchq(n, rec_rule))
    self_predicates = [
        p
        for step in stripped1.steps
        if step.axis is Axis.SELF
        for p in step.predicates
    ]
    assert smt_up.new_context is not None
    smt_up.new_context.predicates.extend(self_predicates)
    q_up = unbind_edge(smt_up, "mu", parent_bvmap, exposures, catalog).query

    # --- the composed view v' ------------------------------------------------------
    new_view = SchemaTreeQuery()
    entry_node = SchemaNode(
        id=1,
        tag=m0.tag,
        bv=entry_bv,
        tag_query=m0.tag_query.clone(),
    )
    new_view.root.add_child(entry_node)
    entry_node.add_child(
        SchemaNode(id=2, tag=down_tag, bv="md", tag_query=q_down)
    )
    entry_node.add_child(
        SchemaNode(id=3, tag=up_tag, bv="mu", tag_query=q_up)
    )

    # --- the rewritten stylesheet x' ------------------------------------------------
    down_select = LocationPath(
        (Step(Axis.CHILD, down_tag, tuple(dynamic0)),)
    )
    sibling_down = LocationPath(
        (Step(Axis.PARENT, "*"), Step(Axis.CHILD, down_tag, tuple(dynamic0)))
    )
    sibling_up = LocationPath(
        (Step(Axis.PARENT, "*"), Step(Axis.CHILD, up_tag))
    )

    new_stylesheet = Stylesheet()
    entry_copy = copy_rule(entry_rule)
    _replace_apply(entry_copy.output, a0, down_select)
    new_stylesheet.add(entry_copy)

    down_rule = copy_rule(rec_rule)
    down_rule.match = parse_pattern(down_tag)
    _replace_apply(down_rule.output, a1, sibling_up)
    new_stylesheet.add(down_rule)

    up_rule = copy_rule(rec_rule)
    up_rule.match = parse_pattern(up_tag)
    _replace_apply(up_rule.output, a1, sibling_down)
    new_stylesheet.add(up_rule)

    return RecursivePlan(
        view=new_view,
        stylesheet=new_stylesheet,
        down_tag=down_tag,
        up_tag=up_tag,
    )


def _base_name(tag: str) -> str:
    """metro_available -> metroavail-style compaction (paper's naming)."""
    parts = tag.split("_")
    if len(parts) >= 2:
        return parts[0] + parts[1][:5]
    return tag


def _replace_apply(
    body: list[OutputNode], target: ApplyTemplates, new_select: LocationPath
) -> None:
    """Replace (in a deep-copied body) the apply node copied from
    ``target`` — matched by select text and mode — with one using
    ``new_select``."""

    def visit(nodes: list[OutputNode]) -> bool:
        for index, node in enumerate(nodes):
            if isinstance(node, ApplyTemplates):
                if (
                    node.select.to_text() == target.select.to_text()
                    and node.mode == target.mode
                ):
                    nodes[index] = ApplyTemplates(
                        new_select, node.mode, list(node.with_params)
                    )
                    return True
            elif isinstance(node, LiteralElement):
                if visit(node.children):
                    return True
            elif isinstance(node, IfInstruction):
                if visit(node.children):
                    return True
            elif isinstance(node, Choose):
                for when in node.whens:
                    if visit(when.children):
                        return True
                if visit(node.otherwise):
                    return True
        return False

    visit(body)

"""Top-level drivers for the composition algorithm (Figure 9).

* :func:`compose_basic` — the four steps verbatim; the stylesheet must
  already be in the composable dialect (``XSLT_basic`` plus predicates).
* :func:`compose` — applies the Section 5.2 source-to-source rewrites
  first (flow control, general value-of, conflict resolution), then runs
  :func:`compose_basic`.
"""

from __future__ import annotations

from repro.core.ctg import build_ctg
from repro.core.ott import connect_otts, generate_ott
from repro.core.stylesheet_view import (
    attach_queries,
    eliminate_pseudo_roots,
    to_schema_tree,
)
from repro.core.tvq import build_tvq
from repro.relational.schema import Catalog
from repro.schema_tree.model import SchemaTreeQuery
from repro.xslt.model import Stylesheet

#: Version tag of the composition pipeline, folded into plan-cache keys
#: (:mod:`repro.serving.fingerprint`). Bump whenever a change to the
#: composition algorithm can alter the *output view* for unchanged
#: inputs, so long-lived servers never serve plans compiled by an older
#: pipeline.
COMPOSE_PASS_FINGERPRINT = "compose/v1"


def compose_basic(
    view: SchemaTreeQuery,
    stylesheet: Stylesheet,
    catalog: Catalog,
    max_nodes: int = 10_000,
    paper_mode: bool = False,
) -> SchemaTreeQuery:
    """Compose(v, x): produce the stylesheet view ``v'`` (Figure 9).

    For every database instance ``I``, evaluating the returned view gives
    the same document as running ``stylesheet`` over ``view(I)``.

    Raises:
        UnsupportedFeatureError: when the stylesheet is outside the
            composable dialect (use :func:`compose`, or
            :class:`~repro.core.hybrid.HybridExecutor` for recursion).
        CompositionError: on malformed inputs or TVQ blowup past
            ``max_nodes``.
    """
    ctg = build_ctg(view, stylesheet)
    tvq = build_tvq(ctg, catalog, max_nodes=max_nodes, paper_mode=paper_mode)
    otts = {id(node): generate_ott(node, catalog) for node in tvq.root.walk()}
    root_ott = connect_otts(tvq.root, otts)
    attach_queries(tvq, otts)
    top_level = eliminate_pseudo_roots(root_ott, catalog, paper_mode=paper_mode)
    return to_schema_tree(top_level)


def compose(
    view: SchemaTreeQuery,
    stylesheet: Stylesheet,
    catalog: Catalog,
    max_nodes: int = 10_000,
    apply_rewrites: bool = True,
    paper_mode: bool = False,
) -> SchemaTreeQuery:
    """Rewrite to the composable dialect, then compose.

    The rewrite pipeline lowers ``xsl:if``/``xsl:choose``/``xsl:for-each``
    (Figures 21-22), general ``xsl:value-of`` (Figure 23), and resolves
    rule conflicts by priority (Figure 24).
    """
    if not apply_rewrites:
        return compose_basic(
            view, stylesheet, catalog, max_nodes=max_nodes, paper_mode=paper_mode
        )
    from repro.errors import UnsupportedFeatureError
    from repro.core.rewrites.pipeline import rewrite_to_basic

    lowered = rewrite_to_basic(stylesheet)
    try:
        return compose_basic(
            view, lowered, catalog, max_nodes=max_nodes, paper_mode=paper_mode
        )
    except UnsupportedFeatureError as exc:
        if exc.feature != "conflicting-rules":
            raise
    # Dynamic conflicts: apply the Figure 24 rewrite and retry.
    lowered = rewrite_to_basic(stylesheet, with_conflict_resolution=True)
    return compose_basic(
        view, lowered, catalog, max_nodes=max_nodes, paper_mode=paper_mode
    )

"""Schema-level pattern evaluation: MATCHQ and SELECTQ (Section 3.5).

Both functions mirror their instance-level counterparts but operate on
schema-tree nodes, returning tree patterns:

* ``MATCHQ(n, r)`` — does ``match(r)`` match some suffix of the path from
  the schema root to ``n``? Returns the corresponding chain tree pattern
  (its deepest node is the *query context node*), or ``None``.
* ``SELECTQ(n1, a, n2)`` — can ``select(a)``, abstractly applied at
  ``n1``, reach ``n2``? Returns a tree pattern containing every node the
  walk visits (``n1`` is the *query context node*, ``n2`` the *new query
  context node*), or ``None``.

Step predicates are folded into the pattern: attribute comparisons attach
to the TPNode for the step; relative-path predicates expand into existence
branches (Figure 18); ``not(path)`` expands into a negated branch (needed
to compose the Figure 24 conflict rewrite).

Descendant (``//``) steps and ambiguous walks (a step that can reach the
target along several distinct schema paths) raise
:class:`~repro.errors.UnsupportedFeatureError` — the former is
``XSLT_basic`` restriction (9), the latter keeps COMBINE's "result will be
a tree / will be unique" precondition honest.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import UnsupportedFeatureError
from repro.core.tree_pattern import CrossNodeCondition, TPNode, TreePattern
from repro.schema_tree.model import SchemaNode
from repro.xpath.ast import (
    AttributeRef,
    Axis,
    BinaryOp,
    Expr,
    FunctionCall,
    Literal,
    LocationPath,
    NumberLiteral,
    PathExpr,
    Step,
    VariableRef,
)
from repro.xslt.model import ApplyTemplates, TemplateRule

# One abstract move: ("self" | "up" | "down", schema node, step predicates).
_Move = tuple[str, SchemaNode, tuple[Expr, ...]]


def matchq(node: SchemaNode, rule: TemplateRule) -> Optional[TreePattern]:
    """MATCHQ(n, r): the match tree pattern, or ``None`` (Section 3.5)."""
    pattern = rule.match
    if pattern.is_root:
        if node.is_root:
            tp = TPNode(node)
            return TreePattern(root=tp, context=tp)
        return None
    if node.is_root:
        return None
    if pattern.uses_descendant_axis():
        raise UnsupportedFeatureError(
            "descendant-axis", f"pattern {pattern.to_text()!r}"
        )
    steps = [s for s in pattern.path.steps]
    for step in steps:
        if step.axis is not Axis.CHILD:
            raise UnsupportedFeatureError(
                f"{step.axis.value}-axis in match pattern", pattern.to_text()
            )
    # The incoming schema path, excluding the synthetic root.
    path = [n for n in node.path_from_root() if not n.is_root]
    if len(steps) > len(path):
        return None
    if pattern.path.absolute and len(steps) != len(path):
        return None
    suffix = path[len(path) - len(steps):]
    for step, schema_node in zip(steps, suffix):
        if step.node_test != "*" and step.node_test != schema_node.tag:
            return None
    # Build the chain pattern, attaching step predicates.
    root_tp: Optional[TPNode] = None
    current: Optional[TPNode] = None
    for step, schema_node in zip(steps, suffix):
        tp = TPNode(schema_node)
        if current is None:
            root_tp = tp
        else:
            current.add_child(tp)
        current = tp
        _attach_predicates(tp, step.predicates)
    assert root_tp is not None and current is not None
    return TreePattern(root=_topmost(root_tp), context=current)


def selectq(
    source: SchemaNode, apply: ApplyTemplates, target: SchemaNode
) -> Optional[TreePattern]:
    """SELECTQ(n1, a, n2): the select tree pattern, or ``None``."""
    path = apply.select
    moves = _walk_path(source, path, target)
    if moves is None:
        return None
    return _build_pattern(source, moves, target)


def abstract_targets(source: SchemaNode, path: LocationPath) -> list[SchemaNode]:
    """All schema nodes reachable from ``source`` along ``path``.

    Used by the CTG builder to enumerate candidate (n2, r2) pairs without
    trying every node in the view.
    """
    states = _initial_states(source, path)
    for step in path.steps:
        next_states: list[list[_Move]] = []
        for trace in states:
            next_states.extend(_apply_step(trace, step))
        states = next_states
    targets: list[SchemaNode] = []
    for trace in states:
        end = trace[-1][1] if trace else source
        if end not in targets:
            targets.append(end)
    return targets


# ---------------------------------------------------------------------------
# Abstract walking
# ---------------------------------------------------------------------------


def _initial_states(source: SchemaNode, path: LocationPath) -> list[list[_Move]]:
    if path.absolute:
        root = source.path_from_root()[0]
        return [[("jump-root", root, ())]]
    return [[("self", source, ())]]


def _walk_path(
    source: SchemaNode, path: LocationPath, target: SchemaNode
) -> Optional[list[_Move]]:
    """Enumerate traces of ``path`` from ``source``; return the unique trace
    ending at ``target``, ``None`` if there is none."""
    states = _initial_states(source, path)
    if not path.steps:
        # A bare "/" or "." select.
        matching = [t for t in states if (t[-1][1] if t else source) is target]
        return matching[0] if matching else None
    for step in path.steps:
        next_states: list[list[_Move]] = []
        for trace in states:
            next_states.extend(_apply_step(trace, step))
        states = next_states
    matching = [t for t in states if t[-1][1] is target]
    if not matching:
        return None
    if len(matching) > 1:
        raise UnsupportedFeatureError(
            "ambiguous-path",
            f"select {path.to_text()!r} reaches <{target.tag}> along "
            f"{len(matching)} distinct schema paths",
        )
    return matching[0]


def _apply_step(trace: list[_Move], step: Step) -> list[list[_Move]]:
    current = trace[-1][1]
    if step.axis is Axis.DESCENDANT_OR_SELF:
        raise UnsupportedFeatureError(
            "descendant-axis", "'//' in a select expression"
        )
    if step.axis is Axis.ATTRIBUTE:
        raise UnsupportedFeatureError(
            "attribute-axis", "attribute steps cannot select context nodes"
        )
    if step.axis is Axis.SELF:
        if step.node_test not in ("*", current.tag):
            return []
        return [trace + [("self", current, step.predicates)]]
    if step.axis is Axis.PARENT:
        parent = current.parent
        if parent is None:
            return []
        if step.node_test not in ("*", parent.tag) and not parent.is_root:
            return []
        return [trace + [("up", parent, step.predicates)]]
    # CHILD axis: one branch per matching child.
    branches: list[list[_Move]] = []
    for child in current.children:
        if step.node_test in ("*", child.tag):
            branches.append(trace + [("down", child, step.predicates)])
    return branches


def _build_pattern(
    source: SchemaNode, moves: list[_Move], target: SchemaNode
) -> TreePattern:
    """Turn a unique trace into a tree pattern (Figure 8's shapes)."""
    context_tp = TPNode(source)
    root_tp = context_tp
    current = context_tp
    for kind, schema_node, predicates in moves:
        if kind == "jump-root":
            # Absolute select: re-anchor at the schema root. Link the
            # context chain below it only if the source is under the root
            # (it always is); the root becomes the pattern root.
            if schema_node is source:
                current = context_tp
            else:
                chain = source.path_from_root()
                tp_chain = [TPNode(n) for n in chain]
                for parent_tp, child_tp in zip(tp_chain, tp_chain[1:]):
                    parent_tp.add_child(child_tp)
                # Reuse the already-created context node at the bottom.
                if len(tp_chain) >= 2:
                    tp_chain[-2].children.remove(tp_chain[-1])
                    tp_chain[-2].add_child(context_tp)
                else:
                    context_tp = tp_chain[0]
                root_tp = tp_chain[0]
                current = tp_chain[0]
        elif kind == "self":
            if current.schema_node is not schema_node:  # pragma: no cover
                raise AssertionError("trace out of sync with pattern")
            _attach_predicates(current, predicates)
        elif kind == "up":
            if current.parent is not None:
                current = current.parent
            else:
                parent_tp = TPNode(schema_node)
                parent_tp.add_child(root_tp)
                root_tp = parent_tp
                current = parent_tp
            _attach_predicates(current, predicates)
        elif kind == "down":
            child_tp = TPNode(schema_node)
            current.add_child(child_tp)
            current = child_tp
            _attach_predicates(current, predicates)
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unknown move {kind!r}")
    return TreePattern(root=_topmost(root_tp), context=context_tp, new_context=current)


def _topmost(tp: TPNode) -> TPNode:
    """The root of the pattern ``tp`` belongs to (predicate branches may
    have extended the pattern above the chain that was built first)."""
    while tp.parent is not None:
        tp = tp.parent
    return tp


# ---------------------------------------------------------------------------
# Predicate folding
# ---------------------------------------------------------------------------


def _attach_predicates(tp: TPNode, predicates: tuple[Expr, ...]) -> None:
    for predicate in predicates:
        _attach_one(tp, predicate)


def _attach_one(tp: TPNode, predicate: Expr) -> None:
    """Fold one predicate into the pattern node.

    Conjunctions split; path expressions become existence branches;
    ``not(path)`` becomes a negated branch; comparisons and other scalar
    expressions attach to the node.
    """
    if isinstance(predicate, BinaryOp) and predicate.op == "and":
        _attach_one(tp, predicate.left)
        _attach_one(tp, predicate.right)
        return
    if isinstance(predicate, PathExpr):
        _attach_branch(tp, predicate.path, negated=False)
        return
    if (
        isinstance(predicate, FunctionCall)
        and predicate.name == "not"
        and len(predicate.args) == 1
        and isinstance(predicate.args[0], PathExpr)
    ):
        _attach_branch(tp, predicate.args[0].path, negated=True)
        return
    _check_scalar_predicate(predicate)
    tp.predicates.append(predicate)


def _flatten_conjunction(expr: Expr) -> list[Expr]:
    """Split a predicate into its top-level 'and' conjuncts."""
    if isinstance(expr, BinaryOp) and expr.op == "and":
        return _flatten_conjunction(expr.left) + _flatten_conjunction(expr.right)
    return [expr]


def _check_scalar_predicate(predicate: Expr) -> None:
    """Verify a predicate only uses composable scalar forms."""
    if isinstance(predicate, (AttributeRef, Literal, NumberLiteral, VariableRef)):
        return
    if isinstance(predicate, BinaryOp):
        if predicate.op == "or":
            _check_scalar_predicate(predicate.left)
            _check_scalar_predicate(predicate.right)
            return
        if predicate.op in ("=", "!=", "<", "<=", ">", ">=", "+", "-"):
            _check_scalar_predicate(predicate.left)
            _check_scalar_predicate(predicate.right)
            return
        raise UnsupportedFeatureError(
            "predicate", f"operator {predicate.op!r} in a composable predicate"
        )
    if isinstance(predicate, FunctionCall):
        if predicate.name in ("true", "false"):
            return
        if predicate.name == "not" and len(predicate.args) == 1:
            _check_scalar_predicate(predicate.args[0])
            return
        raise UnsupportedFeatureError(
            "predicate", f"function {predicate.name}() in a composable predicate"
        )
    raise UnsupportedFeatureError(
        "predicate", f"{type(predicate).__name__} in a composable predicate"
    )


def _attach_branch(tp: TPNode, path: LocationPath, negated: bool) -> None:
    """Expand a path-existence predicate into branch TPNodes."""
    if path.absolute:
        raise UnsupportedFeatureError(
            "predicate", "absolute paths in predicates are not composable"
        )
    states: list[list[_Move]] = [[("self", tp.schema_node, ())]]
    for step in path.steps:
        next_states: list[list[_Move]] = []
        for trace in states:
            next_states.extend(_apply_step(trace, step))
        states = next_states
    if not states:
        # The branch can never exist: the predicate is statically false.
        # Mark it with an always-empty negated/positive branch by attaching
        # an impossible scalar predicate instead.
        if negated:
            return  # not(nothing) is always true - no condition needed.
        tp.predicates.append(
            BinaryOp("=", NumberLiteral(0.0), NumberLiteral(1.0))
        )
        return
    if len(states) > 1:
        raise UnsupportedFeatureError(
            "ambiguous-path",
            f"predicate path {path.to_text()!r} is ambiguous over the schema tree",
        )
    moves = states[0]
    if negated and not any(kind == "down" for kind, _, _ in moves):
        # The path only climbs (the reversed patterns of Figure 24): the
        # chain exists statically, so the negation reduces to a cross-node
        # negated conjunction of the scalar predicates along the walk.
        terms: list[tuple] = []
        for _kind, schema_node, predicates in moves:
            for predicate in predicates:
                for scalar in _flatten_conjunction(predicate):
                    _check_scalar_predicate(scalar)
                    terms.append((schema_node, scalar))
        if not terms:
            # not(<statically existing chain>) is statically false.
            tp.predicates.append(BinaryOp("=", NumberLiteral(0.0), NumberLiteral(1.0)))
            return
        tp.cross_conditions.append(CrossNodeCondition(tuple(terms)))
        return
    if negated and any(
        predicates and kind in ("up", "self")
        for kind, _, predicates in moves
    ):
        raise UnsupportedFeatureError(
            "predicate",
            "negated predicate paths mixing ancestor conditions with "
            "descendant steps are not composable",
        )
    # Build the branch: leading '..' steps re-anchor at existing ancestors
    # of tp in the pattern; 'down' steps create new branch nodes.
    current = tp
    first_created: Optional[TPNode] = None
    for kind, schema_node, predicates in moves:
        if kind == "up":
            if first_created is not None:
                # Once new branch nodes exist, climbing back up stays
                # inside the branch.
                if current.parent is None:  # pragma: no cover - defensive
                    raise UnsupportedFeatureError(
                        "predicate", "predicate path escapes its branch"
                    )
                current = current.parent
            else:
                anchor = _find_ancestor(current, schema_node)
                if anchor is None:
                    # The predicate climbs above the chain built so far
                    # (e.g. the reversed patterns of the Figure 24
                    # conflict rewrite): extend the pattern upward. The
                    # caller re-derives the pattern root from parent
                    # links afterwards.
                    top = current
                    while top.parent is not None:
                        top = top.parent
                    anchor = TPNode(schema_node)
                    anchor.add_child(top)
                current = anchor
        elif kind == "down":
            child_tp = TPNode(schema_node)
            current.add_child(child_tp)
            if first_created is None:
                first_created = child_tp
            current = child_tp
        # "self" moves only carry predicates.
        _attach_predicates(current, predicates)
    if negated:
        if first_created is None:
            raise UnsupportedFeatureError(
                "predicate", "cannot negate a predicate that only climbs upward"
            )
        first_created.negated = True


def _find_ancestor(tp: TPNode, schema_node: SchemaNode) -> Optional[TPNode]:
    node: Optional[TPNode] = tp.parent
    while node is not None:
        if node.schema_node is schema_node:
            return node
        node = node.parent
    return None

"""Graphviz (DOT) rendering of views, CTGs and TVQs.

Purely textual — no graphviz dependency; paste the output into any DOT
viewer. The CLI exposes it as ``repro explain --dot``.
"""

from __future__ import annotations

from repro.core.ctg import ContextTransitionGraph
from repro.core.tvq import TraverseViewQuery
from repro.schema_tree.model import SchemaTreeQuery


def _quote(text: str) -> str:
    return '"' + text.replace('"', '\\"') + '"'


def view_to_dot(view: SchemaTreeQuery, title: str = "view") -> str:
    """Render a schema-tree query as a DOT digraph."""
    lines = [f"digraph {title} {{", "  rankdir=TB;", "  node [shape=box];"]
    for node in view.nodes(include_root=True):
        if node.is_root:
            label = "/"
        else:
            label = f"({node.id}) <{node.tag}>"
            if node.bv:
                label += f" ${node.bv}"
        lines.append(f"  n{node.id} [label={_quote(label)}];")
    for node in view.nodes(include_root=True):
        for child in node.children:
            lines.append(f"  n{node.id} -> n{child.id};")
    lines.append("}")
    return "\n".join(lines)


def ctg_to_dot(ctg: ContextTransitionGraph, title: str = "ctg") -> str:
    """Render a context transition graph as a DOT digraph.

    Nodes are the (schema node, rule) pairs; edge labels carry the
    apply-templates select expressions (Figure 6's annotations).
    """
    lines = [f"digraph {title} {{", "  rankdir=LR;", "  node [shape=ellipse];"]
    ids = {id(n): f"c{i}" for i, n in enumerate(ctg.nodes)}
    for node in ctg.nodes:
        label = (
            f"(({node.schema_node.id}, {node.schema_node.tag or 'root'}), "
            f"R{node.rule.position + 1})"
        )
        lines.append(f"  {ids[id(node)]} [label={_quote(label)}];")
    for edge in ctg.edges:
        lines.append(
            f"  {ids[id(edge.source)]} -> {ids[id(edge.target)]} "
            f"[label={_quote(edge.apply.select.to_text())}];"
        )
    lines.append("}")
    return "\n".join(lines)


def tvq_to_dot(tvq: TraverseViewQuery, title: str = "tvq") -> str:
    """Render a traverse view query as a DOT digraph."""
    lines = [f"digraph {title} {{", "  rankdir=TB;", "  node [shape=box];"]
    ids = {id(n): f"t{i}" for i, n in enumerate(tvq.nodes())}
    for node in tvq.nodes():
        label = (
            f"(({node.schema_node.id}, {node.schema_node.tag or 'root'}), "
            f"R{node.rule.position + 1})"
        )
        if node.bv:
            label += f"\\n${node.bv}"
        lines.append(f"  {ids[id(node)]} [label={_quote(label)}];")
    for node in tvq.nodes():
        for child in node.children:
            lines.append(f"  {ids[id(node)]} -> {ids[id(child)]};")
    lines.append("}")
    return "\n".join(lines)

"""Step 3: Output Tag Trees (Sections 3.3, 4.3; Figure 14).

For each TVQ node ``(n, r)``, ``generate_ott`` builds the tree form of
rule ``r``'s output fragment under a *pseudo-root*:

* literal result elements become ``element`` nodes (their literal XML
  attributes are kept; ``<xsl:value-of select="@a"/>`` children turn into
  *data attributes* pulled from the context row, per Section 4.3.1),
* ``<xsl:value-of select="."/>`` becomes a ``context`` node carrying the
  schema node's tag and original output columns,
* ``<xsl:apply-templates>`` becomes an ``apply`` placeholder,

and ``connect_otts`` splices the trees along TVQ edges (Section 4.3.2):
each placeholder is replaced by the pseudo-roots of the TVQ children
hanging off that apply-templates (zero children simply drop the
placeholder — the select can never produce a composable context, so it
contributes nothing).

Features outside the composable output model raise
:class:`~repro.errors.UnsupportedFeatureError`: literal text, flow
control (lower it with :mod:`repro.core.rewrites` first), general
``value-of`` selects, ``copy-of``, and parameterized apply-templates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import UnsupportedFeatureError
from repro.core.tvq import TVQNode
from repro.sql.analysis import TableColumns, output_columns
from repro.sql.ast import Select
from repro.xpath.ast import AttributeRef, ContextRef
from repro.xslt.model import (
    ApplyTemplates,
    Choose,
    CopyOf,
    ForEach,
    IfInstruction,
    LiteralElement,
    OutputNode,
    TextOutput,
    ValueOf,
)

PSEUDO = "pseudo"
ELEMENT = "element"
CONTEXT = "context"
APPLY = "apply"


@dataclass(eq=False)
class OTTNode:
    """One node of an output tag tree."""

    kind: str
    tag: str = ""
    literal_attributes: dict[str, str] = field(default_factory=dict)
    #: (XML attribute name, source column) pairs pulled from the context row.
    data_attrs: list[tuple[str, str]] = field(default_factory=list)
    context_columns: list[str] = field(default_factory=list)
    apply: Optional[ApplyTemplates] = None
    children: list["OTTNode"] = field(default_factory=list)
    parent: Optional["OTTNode"] = None
    # Filled by Step 4 (query copying / pushdown):
    bv: Optional[str] = None
    tag_query: Optional[Select] = None

    def add_child(self, child: "OTTNode") -> "OTTNode":
        """Attach ``child`` and return it."""
        child.parent = self
        self.children.append(child)
        return child

    def replace_child(self, old: "OTTNode", new_children: list["OTTNode"]) -> None:
        """Splice ``new_children`` in place of ``old``."""
        index = self.children.index(old)
        for child in new_children:
            child.parent = self
        self.children[index:index + 1] = new_children
        old.parent = None

    def walk(self):
        """Yield this node and its descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def describe(self, depth: int = 0) -> str:
        """Readable outline (tests compare against Figures 7(b)/14)."""
        from repro.sql.printer import print_select

        indent = "  " * depth
        if self.kind == PSEUDO:
            head = f"{indent}pseudo-root"
        elif self.kind == APPLY:
            head = f"{indent}apply-templates[{self.apply.select.to_text()}]"
        elif self.kind == CONTEXT:
            head = f"{indent}<{self.tag}> (value-of .)"
        else:
            attrs = "".join(f' {k}="{v}"' for k, v in self.literal_attributes.items())
            data = "".join(f" {n}<-@{c}" for n, c in self.data_attrs)
            head = f"{indent}<{self.tag}{attrs}>{data}"
        if self.bv:
            head += f" ${self.bv}"
        if self.tag_query is not None:
            head += f" := {print_select(self.tag_query)}"
        lines = [head]
        lines.extend(child.describe(depth + 1) for child in self.children)
        return "\n".join(lines)


def _context_columns(tvq_node: TVQNode, catalog: TableColumns) -> list[str]:
    """The XML attributes a context node of this rule can carry."""
    schema_node = tvq_node.schema_node
    if schema_node.tag_query is None:
        return []
    if schema_node.attr_columns is not None:
        return schema_node.attr_columns
    return output_columns(schema_node.tag_query, catalog)


def generate_ott(tvq_node: TVQNode, catalog: TableColumns) -> OTTNode:
    """GENERATE_OTT(n, r): the output tag tree for one TVQ node."""
    pseudo = OTTNode(PSEUDO)
    for node in tvq_node.rule.output:
        for built in _build(node, tvq_node, catalog):
            pseudo.add_child(built)
    return pseudo


def _build(node: OutputNode, tvq_node: TVQNode, catalog: TableColumns) -> list[OTTNode]:
    if isinstance(node, LiteralElement):
        element = OTTNode(ELEMENT, tag=node.tag,
                          literal_attributes=dict(node.attributes))
        available = _context_columns(tvq_node, catalog)
        for name, template in node.avt_attributes.items():
            # The Section 4.4 formatting extension: attr="{@col}" renames a
            # context column into an output attribute. Only the pure
            # single-expression form is composable.
            single = template.single_expression
            if not isinstance(single, AttributeRef):
                raise UnsupportedFeatureError(
                    "avt",
                    f"attribute value template {name!r} mixes text and "
                    "expressions; only a single '{@attr}' composes",
                )
            if single.name in available:
                element.data_attrs.append((name, single.name))
        for child in node.children:
            if isinstance(child, ValueOf) and isinstance(child.select, AttributeRef):
                # Publishing model: value-of @a attaches an attribute to
                # the enclosing element (Section 4.3.1). An attribute the
                # context node can never carry is statically absent.
                if child.select.name in available:
                    element.data_attrs.append(
                        (child.select.name, child.select.name)
                    )
                continue
            for built in _build(child, tvq_node, catalog):
                element.add_child(built)
        return [element]
    if isinstance(node, ApplyTemplates):
        if node.with_params:
            raise UnsupportedFeatureError(
                "with-param", "parameterized apply-templates cannot be composed"
            )
        return [OTTNode(APPLY, apply=node)]
    if isinstance(node, ValueOf):
        if isinstance(node.select, ContextRef):
            schema_node = tvq_node.schema_node
            if schema_node.is_root:
                raise UnsupportedFeatureError(
                    "value-of", "value-of '.' in a rule matching the root"
                )
            if schema_node.tag_query is None:
                # A query-less context element copies as a bare tag.
                columns: list[str] = []
            elif schema_node.attr_columns is not None:
                columns = schema_node.attr_columns
            else:
                columns = output_columns(schema_node.tag_query, catalog)
            return [
                OTTNode(CONTEXT, tag=schema_node.tag, context_columns=list(columns))
            ]
        if isinstance(node.select, AttributeRef):
            raise UnsupportedFeatureError(
                "value-of",
                "value-of '@attr' outside a literal element has no place "
                "to attach the attribute",
            )
        raise UnsupportedFeatureError(
            "value-of",
            f"select {node.select.to_text()!r}: only '.' and '@attr' are "
            "composable (restriction 10); apply the value-of rewrite first",
        )
    if isinstance(node, CopyOf):
        raise UnsupportedFeatureError(
            "copy-of", "copy-of cannot be composed (deep copies of view subtrees)"
        )
    if isinstance(node, TextOutput):
        raise UnsupportedFeatureError(
            "text-output",
            "literal text in rule bodies is outside the publishing output model",
        )
    if isinstance(node, (IfInstruction, Choose, ForEach)):
        raise UnsupportedFeatureError(
            "flow-control",
            f"<xsl:{type(node).__name__.lower()}>: apply the flow-control "
            "rewrites first (Section 5.2.1)",
        )
    raise UnsupportedFeatureError("output", type(node).__name__)


def connect_otts(
    tvq_root: TVQNode,
    otts: dict[int, OTTNode],
) -> OTTNode:
    """Connect per-node OTTs along TVQ edges (Figure 9 lines 26-28).

    ``otts`` maps ``id(tvq_node)`` to its generated tree. Returns the root
    tree (the root rule's), with every apply placeholder replaced by the
    pseudo-roots of the TVQ children created for it.
    """
    for tvq_node in tvq_root.walk():
        tree = otts[id(tvq_node)]
        by_apply: dict[int, list[TVQNode]] = {}
        for child in tvq_node.children:
            by_apply.setdefault(id(child.apply), []).append(child)
        for ott_node in list(tree.walk()):
            if ott_node.kind != APPLY:
                continue
            children = by_apply.get(id(ott_node.apply), [])
            replacements = [otts[id(c)] for c in children]
            assert ott_node.parent is not None
            ott_node.parent.replace_child(ott_node, replacements)
    return otts[id(tvq_root)]

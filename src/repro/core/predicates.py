"""Translation of XPath predicates into SQL conditions (Section 5.1).

Two resolution contexts:

* :class:`OwnQueryResolver` — the predicate applies to the node whose tag
  query is being built: ``@attr`` resolves to that query's output column
  (for aggregate outputs, the aggregate expression — the condition then
  belongs in HAVING, as in Figure 20's ``HAVING SUM(capacity)>100``),
* :class:`ParamResolver` — the predicate applies to an already-bound
  context-path node: ``@attr`` resolves to a ``$bv.attr`` parameter
  (Figure 20's ``$s_new.SUM_capacity<200``).

Semantics notes (matching the instance-level XPath evaluator):

* a reference to an attribute the node can never have is statically
  *false* (missing attribute ⇒ comparison false, existence false) — the
  translation folds the enclosing boolean accordingly, so ``not(@ghost)``
  correctly becomes TRUE;
* a bare ``@attr`` in boolean position means "attribute exists", i.e.
  the column is non-NULL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import UnsupportedFeatureError
from repro.sql import analysis
from repro.sql.ast import (
    BinOp,
    ColumnRef,
    Expr as SqlExpr,
    FuncCall,
    LiteralValue,
    ParamRef,
    Select,
    UnaryOp,
)
from repro.xpath.ast import (
    AttributeRef,
    BinaryOp,
    Expr as XPathExpr,
    FunctionCall,
    Literal,
    NumberLiteral,
    VariableRef,
)

#: SQL constants for statically-known truth values.
TRUE_CONDITION = BinOp("=", LiteralValue(1), LiteralValue(1))
FALSE_CONDITION = BinOp("=", LiteralValue(0), LiteralValue(1))

_COMPARISON_MAP = {"=": "=", "!=": "<>", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


class _MissingAttribute(Exception):
    """Internal signal: the referenced attribute cannot exist."""


@dataclass
class Resolved:
    """A resolved attribute reference."""

    expr: SqlExpr
    is_aggregate: bool = False


class OwnQueryResolver:
    """Resolves ``@attr`` against the output columns of a query."""

    def __init__(self, query: Select, catalog: analysis.TableColumns):
        self._query = query
        self._catalog = catalog

    def resolve(self, name: str) -> Resolved:
        """Resolve ``@name`` to a select-item expression of the query."""
        from repro.sql.ast import Star

        for item in self._query.items:
            if isinstance(item.expr, Star):
                for ref in analysis.expand_star_refs(
                    item.expr, self._query, self._catalog
                ):
                    if ref.column == name:
                        return Resolved(ref)
            elif item.output_name() == name:
                if isinstance(item.expr, FuncCall) and item.expr.is_aggregate:
                    return Resolved(item.expr, is_aggregate=True)
                return Resolved(item.expr)
        raise _MissingAttribute(name)


class ParamResolver:
    """Resolves ``@attr`` against a bound binding variable's tuple."""

    def __init__(self, bv: str, columns: Optional[list[str]] = None):
        self._bv = bv
        self._columns = columns

    def resolve(self, name: str) -> Resolved:
        """Resolve ``@name`` to a ``$bv.name`` parameter reference."""
        if self._columns is not None and name not in self._columns:
            raise _MissingAttribute(name)
        return Resolved(ParamRef(self._bv, name))


@dataclass
class TranslatedPredicate:
    """A translated predicate and where it belongs."""

    condition: SqlExpr
    needs_having: bool


def translate_predicate(predicate: XPathExpr, resolver) -> TranslatedPredicate:
    """Translate one XPath predicate to a SQL condition.

    Raises:
        UnsupportedFeatureError: for forms outside the composable dialect
            (variables, unknown functions, path expressions — the latter
            are extracted into pattern branches before translation).
    """
    state = _State()
    condition = _bool(predicate, resolver, state)
    return TranslatedPredicate(condition, state.uses_aggregate)


class _State:
    def __init__(self) -> None:
        self.uses_aggregate = False


def _bool(expr: XPathExpr, resolver, state: _State) -> SqlExpr:
    if isinstance(expr, BinaryOp):
        if expr.op in ("and", "or"):
            left = _bool(expr.left, resolver, state)
            right = _bool(expr.right, resolver, state)
            return BinOp(expr.op.upper(), left, right)
        if expr.op in _COMPARISON_MAP:
            try:
                left = _value(expr.left, resolver, state)
                right = _value(expr.right, resolver, state)
            except _MissingAttribute:
                return FALSE_CONDITION
            return BinOp(_COMPARISON_MAP[expr.op], left, right)
        raise UnsupportedFeatureError(
            "predicate", f"operator {expr.op!r} in boolean position"
        )
    if isinstance(expr, FunctionCall):
        if expr.name == "not" and len(expr.args) == 1:
            # XPath truth is two-valued: a comparison over a missing/NULL
            # attribute is *false*, so its negation is *true*. SQL's
            # three-valued NOT(NULL)=NULL would drop the row instead;
            # COALESCE the operand to false first.
            inner = _bool(expr.args[0], resolver, state)
            return UnaryOp(
                "NOT", FuncCall("COALESCE", (inner, LiteralValue(0)))
            )
        if expr.name == "true" and not expr.args:
            return TRUE_CONDITION
        if expr.name == "false" and not expr.args:
            return FALSE_CONDITION
        raise UnsupportedFeatureError("predicate", f"function {expr.name}()")
    if isinstance(expr, AttributeRef):
        # Existence test: the column is non-NULL.
        try:
            resolved = _resolve(expr, resolver, state)
        except _MissingAttribute:
            return FALSE_CONDITION
        return UnaryOp("NOT", BinOp("IS", resolved, LiteralValue(None)))
    if isinstance(expr, NumberLiteral):
        return TRUE_CONDITION if expr.value != 0 else FALSE_CONDITION
    if isinstance(expr, Literal):
        return TRUE_CONDITION if expr.value else FALSE_CONDITION
    if isinstance(expr, VariableRef):
        raise UnsupportedFeatureError(
            "variables", f"${expr.name} in a composable predicate"
        )
    raise UnsupportedFeatureError(
        "predicate", f"{type(expr).__name__} in boolean position"
    )


def _value(expr: XPathExpr, resolver, state: _State) -> SqlExpr:
    if isinstance(expr, AttributeRef):
        return _resolve(expr, resolver, state)
    if isinstance(expr, NumberLiteral):
        value = expr.value
        if value == int(value):
            return LiteralValue(int(value))
        return LiteralValue(value)
    if isinstance(expr, Literal):
        return LiteralValue(expr.value)
    if isinstance(expr, BinaryOp) and expr.op in ("+", "-"):
        left = _value(expr.left, resolver, state)
        right = _value(expr.right, resolver, state)
        return BinOp(expr.op, left, right)
    if isinstance(expr, VariableRef):
        raise UnsupportedFeatureError(
            "variables", f"${expr.name} in a composable predicate"
        )
    raise UnsupportedFeatureError(
        "predicate", f"{type(expr).__name__} in value position"
    )


def _resolve(ref: AttributeRef, resolver, state: _State) -> SqlExpr:
    resolved = resolver.resolve(ref.name)
    if resolved.is_aggregate:
        state.uses_aggregate = True
    return resolved.expr


def apply_predicates(query: Select, predicates, resolver) -> None:
    """Translate and attach predicates to a query's WHERE/HAVING.

    XPath predicates filter the node's *output tuples*, so on a query
    that aggregates at the top level every predicate belongs in HAVING —
    even a constant or one referencing a grouping column — otherwise it
    would filter the input rows feeding the aggregate instead.
    """
    from repro.sql.analysis import has_top_level_aggregate

    aggregated = has_top_level_aggregate(query)
    for predicate in predicates:
        translated = translate_predicate(predicate, resolver)
        if translated.needs_having or aggregated:
            query.add_having(translated.condition)
        else:
            query.add_where(translated.condition)


def translate_cross_condition(condition, resolver_for) -> TranslatedPredicate:
    """Translate a :class:`~repro.core.tree_pattern.CrossNodeCondition`.

    ``resolver_for(schema_node)`` supplies the attribute resolver for each
    term's node. The result is ``NOT (term1 AND term2 AND ...)``.
    """
    state = _State()
    combined: Optional[SqlExpr] = None
    for schema_node, expr in condition.terms:
        translated = _bool(expr, resolver_for(schema_node), state)
        combined = translated if combined is None else BinOp("AND", combined, translated)
    assert combined is not None
    # Two-valued negation (see the not() case in _bool).
    return TranslatedPredicate(
        UnaryOp("NOT", FuncCall("COALESCE", (combined, LiteralValue(0)))),
        state.uses_aggregate,
    )


def apply_cross_conditions(query: Select, conditions, resolver_for) -> None:
    """Translate and attach cross-node negations to WHERE/HAVING.

    Same output-tuple rule as :func:`apply_predicates`: aggregated
    queries take every condition in HAVING.
    """
    from repro.sql.analysis import has_top_level_aggregate

    aggregated = has_top_level_aggregate(query)
    for condition in conditions:
        translated = translate_cross_condition(condition, resolver_for)
        if translated.needs_having or aggregated:
            query.add_having(translated.condition)
        else:
            query.add_where(translated.condition)

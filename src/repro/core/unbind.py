"""UNBIND for a CTG edge (Figures 10, 12, 13; predicates per Figure 19).

``unbind_edge`` turns the select-match subtree of one edge into the
parameterized tag query of the corresponding TVQ node, together with the
updated binding-variable map and the *exposure* map recording under which
column names the involved schema nodes' tuples surface in the new node's
rows.

Let ``m``/``n`` be the smt's query context / new query context nodes and
``nj`` their lowest common ancestor in the schema tree. Three concerns:

1. **Main chain** (``childn(nj) … n``): the nested tag queries Θ of the
   chain nodes are inlined bottom-up as derived tables
   (:func:`repro.sql.transform.inline_parameter_deep`), their columns
   carried to the output and GROUP BY extended at aggregated levels —
   this produces exactly the ``SELECT SUM(capacity), TEMP.* … GROUP BY
   TEMP.*`` shape of Figure 7(a).
2. **Context path** (``root(smt) … m``): predicates become conditions on
   the already-bound binding variables; off-path branches become
   (NOT) EXISTS subqueries — the existence/sibling conditions of
   Section 4.2.1.
3. **Upward selects** (``n = nj``, e.g. a trailing ``..`` or the ``.``
   selects produced by the flow-control rewrites): no chain exists; the
   new query re-derives the ancestor tuple by correlating every output
   column of ``Q_bv(n)`` with the value already carried by the bound
   ancestor (null-safe ``IS``). This extends the paper, whose UNBIND
   assumes ``n`` strictly below ``nj``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CompositionError, UnsupportedFeatureError
from repro.core.nest import nest
from repro.core.predicates import (
    OwnQueryResolver,
    ParamResolver,
    apply_cross_conditions,
    apply_predicates,
    translate_predicate,
)
from repro.core.tree_pattern import TPNode, TreePattern
from repro.schema_tree.model import SchemaNode, SchemaTreeQuery
from repro.sql.analysis import TableColumns, output_columns
from repro.sql.ast import BinOp, DerivedTable, ExistsExpr, ParamRef, Select, UnaryOp
from repro.sql.params import map_exprs, referenced_vars
from repro.sql.transform import attach_parent_query

#: exposure: schema binding variable -> {original column -> exposed column}.
Exposure = dict[str, dict[str, str]]


@dataclass
class UnbindResult:
    """The outputs of unbinding one edge."""

    query: Select
    bvmap: dict[str, str]
    exposure: Exposure = field(default_factory=dict)


def unbind_edge(
    smt: TreePattern,
    new_bv: str,
    parent_bvmap: dict[str, str],
    ancestor_exposures: dict[str, Exposure],
    catalog: TableColumns,
    paper_mode: bool = False,
) -> UnbindResult:
    """UNBIND(smt, m, n, bv', bvmap) — Figure 13 with our extensions.

    Args:
        smt: the edge's select-match subtree.
        new_bv: the fresh binding variable of the new TVQ node.
        parent_bvmap: the parent TVQ node's binding-variable map.
        ancestor_exposures: per TVQ binding variable, the exposure map of
            the TVQ node that owns it (used to rename ``$var.col`` into
            the column name actually carried by the mapped variable).
        catalog: column resolution.
    """
    if smt.context is None or smt.new_context is None:
        raise CompositionError("smt lacks context markers")
    m_tp, n_tp = smt.context, smt.new_context
    m, n = m_tp.schema_node, n_tp.schema_node
    nj = SchemaTreeQuery.lowest_common_ancestor(m, n)
    if n.is_root:
        raise UnsupportedFeatureError(
            "select-to-root", "apply-templates selecting the document root"
        )

    exposure: Exposure = {}
    context_path = m_tp.path_from_root()

    if n.tag_query is None:
        # A query-less (literal) target — these occur when composing over
        # an already-composed view, whose wrapper elements carry no query.
        # Such a node emits exactly once per parent context, which only
        # stays correct for plain navigation (no predicates or branches).
        return _unbind_queryless(smt, nj, parent_bvmap)
    if n is nj:
        query = _unbind_upward(
            n_tp, m_tp, parent_bvmap, ancestor_exposures, catalog
        )
    else:
        query = _unbind_chain(n_tp, nj, exposure, catalog, paper_mode)
    if n.bv is not None and n.bv not in exposure:
        exposure[n.bv] = {c: c for c in output_columns(n.tag_query, catalog)}

    _apply_context_conditions(query, context_path, n_tp, nj, catalog)

    # Binding-variable bookkeeping (Figure 13, lines 12-18). Renaming uses
    # the map *before* the S-path removals: an existence condition on a
    # sibling of m may still reference m's (or its ancestors') bindings,
    # which are valid in the parent's scope; the removals only govern what
    # descendants of the new node may reference.
    additions: dict[str, str] = {}
    for schema_node in SchemaTreeQuery.path_between(nj, n):
        if schema_node is nj and n is not nj:
            continue
        if schema_node.bv is not None:
            additions[schema_node.bv] = new_bv
    rename_map = dict(parent_bvmap)
    rename_map.update(additions)
    bvmap = dict(rename_map)
    if m is not nj:
        for schema_node in SchemaTreeQuery.path_between(nj, m):
            if schema_node is nj:
                continue
            if schema_node.bv is not None and bvmap.get(schema_node.bv) != new_bv:
                bvmap.pop(schema_node.bv, None)

    _rename_parameters(query, rename_map, ancestor_exposures, new_bv, exposure)
    return UnbindResult(query=query, bvmap=bvmap, exposure=exposure)


def _unbind_queryless(
    smt: TreePattern,
    nj: SchemaNode,
    parent_bvmap: dict[str, str],
) -> UnbindResult:
    """Transition to a query-less target: no SQL, bindings pass through.

    Supported only for plain navigation: the select-match subtree must be
    predicate- and branch-free, and every node strictly between the LCA
    and the target must itself be query-less (a query-bearing interior
    node would multiply the element count, which needs a query to
    express).
    """
    assert smt.new_context is not None and smt.context is not None
    for tp in smt.nodes():
        if tp.predicates or tp.cross_conditions:
            raise UnsupportedFeatureError(
                "queryless-target",
                f"predicates on the transition to query-less "
                f"<{smt.new_context.tag}> cannot be expressed without a query",
            )
    main_path = smt.new_context.path_from_root()
    context_path = smt.context.path_from_root()
    chain_tp = smt.new_context.parent
    while chain_tp is not None and chain_tp.schema_node is not nj:
        if chain_tp.schema_node.tag_query is not None:
            raise UnsupportedFeatureError(
                "queryless-target",
                f"query-bearing <{chain_tp.tag}> between the context and "
                f"the query-less target <{smt.new_context.tag}>",
            )
        chain_tp = chain_tp.parent
    allowed = set(id(t) for t in main_path) | set(id(t) for t in context_path)
    for tp in smt.nodes():
        if id(tp) not in allowed:
            raise UnsupportedFeatureError(
                "queryless-target",
                "existence branches on a query-less transition",
            )
    return UnbindResult(query=None, bvmap=dict(parent_bvmap), exposure={})


# ---------------------------------------------------------------------------
# Main chain (n strictly below nj)
# ---------------------------------------------------------------------------


def _unbind_chain(
    n_tp: TPNode,
    nj: SchemaNode,
    exposure: Exposure,
    catalog: TableColumns,
    paper_mode: bool = False,
) -> Select:
    """Inline the nested tag queries of childn(nj)..parent(n) into Θ(n)."""
    # TP nodes from n up to (excluding) nj.
    chain: list[TPNode] = []
    current = n_tp
    while current is not None and current.schema_node is not nj:
        chain.append(current)
        current = current.parent
    if current is None:
        raise CompositionError(
            f"select-match subtree does not contain the LCA <{nj.tag}>"
        )
    query = nest(n_tp, catalog)
    previous = n_tp
    for p_tp in chain[1:]:
        if p_tp.schema_node.tag_query is None:
            # A query-less wrapper (composing over a composed view): it
            # contributes exactly one element per parent, so it does not
            # change multiplicities; only its side branches matter.
            if p_tp.predicates or p_tp.cross_conditions:
                raise UnsupportedFeatureError(
                    "queryless-target",
                    f"predicates on query-less <{p_tp.tag}> in a select chain",
                )
            for child in p_tp.children:
                if child is previous:
                    continue
                condition = ExistsExpr(nest(child, catalog))
                if child.negated:
                    query.add_where(UnaryOp("NOT", condition))
                else:
                    query.add_where(condition)
            previous = p_tp
            continue
        theta = nest(p_tp, catalog, exclude_child=previous)
        var = p_tp.schema_node.bv
        if var is None:
            raise CompositionError(
                f"chain node <{p_tp.tag}> has no binding variable"
            )
        exposed = attach_parent_query(
            query, var, theta, catalog, scalar_aggregates=not paper_mode
        )
        exposure[var] = exposed
        previous = p_tp
    return query


# ---------------------------------------------------------------------------
# Upward selects (n == nj)
# ---------------------------------------------------------------------------


def _unbind_upward(
    n_tp: TPNode,
    m_tp: TPNode,
    parent_bvmap: dict[str, str],
    ancestor_exposures: dict[str, Exposure],
    catalog: TableColumns,
) -> Select:
    """Re-derive an ancestor-or-self tuple by correlating on its columns."""
    n = n_tp.schema_node
    if n.tag_query is None or n.bv is None:
        raise UnsupportedFeatureError(
            "select-to-root", "upward select reaching a queryless node"
        )
    if n.bv not in parent_bvmap:
        raise CompositionError(
            f"upward select: ${n.bv} is not bound on the current TVQ branch"
        )
    bound_to = parent_bvmap[n.bv]
    carried = ancestor_exposures.get(bound_to, {}).get(n.bv, {})
    toward_m = _child_toward(n_tp, m_tp)
    query = nest(n_tp, catalog, exclude_child=toward_m)
    resolver = OwnQueryResolver(query, catalog)
    for column in output_columns(n.tag_query, catalog):
        exposed = carried.get(column, column)
        resolved = resolver.resolve(column)
        condition = BinOp("IS", resolved.expr, ParamRef(bound_to, exposed))
        if resolved.is_aggregate:
            query.add_having(condition)
        else:
            query.add_where(condition)
    return query


def _child_toward(ancestor_tp: TPNode, descendant_tp: TPNode):
    """The TP child of ``ancestor_tp`` on the path to ``descendant_tp``."""
    node = descendant_tp
    while node is not None and node.parent is not ancestor_tp:
        node = node.parent
    return node  # None when ancestor_tp is descendant_tp


# ---------------------------------------------------------------------------
# Context path conditions (Figure 13 lines 7-11, Figure 19)
# ---------------------------------------------------------------------------


def _apply_context_conditions(
    query: Select,
    context_path: list[TPNode],
    n_tp: TPNode,
    nj: SchemaNode,
    catalog: TableColumns,
) -> None:
    main_chain_top = _top_of_chain(n_tp, nj)
    on_path = set(id(tp) for tp in context_path)
    for p_tp in context_path:
        if p_tp is n_tp:
            # Upward selects put n on the context path; nest() already
            # translated its predicates, cross conditions and branches.
            continue
        schema_node = p_tp.schema_node
        if schema_node.tag_query is None and not schema_node.is_root:
            # Query-less context nodes carry no attributes: any attribute
            # predicate is statically decided (missing => false).
            if p_tp.predicates:
                apply_predicates(
                    query, p_tp.predicates, ParamResolver("__never", [])
                )
            for child in p_tp.children:
                if id(child) in on_path or child is main_chain_top:
                    continue
                condition = ExistsExpr(nest(child, catalog))
                if child.negated:
                    query.add_where(UnaryOp("NOT", condition))
                else:
                    query.add_where(condition)
            continue
        if p_tp.cross_conditions:
            def resolver_for(term_node):
                columns = (
                    output_columns(term_node.tag_query, catalog)
                    if term_node.tag_query is not None
                    else []
                )
                return ParamResolver(term_node.bv, columns)

            apply_cross_conditions(query, p_tp.cross_conditions, resolver_for)
        if p_tp.predicates:
            if schema_node.bv is None:
                raise CompositionError(
                    f"predicate on queryless node <{schema_node.tag}>"
                )
            columns = (
                output_columns(schema_node.tag_query, catalog)
                if schema_node.tag_query is not None
                else []
            )
            apply_predicates(
                query,
                p_tp.predicates,
                ParamResolver(schema_node.bv, columns),
            )
        for child in p_tp.children:
            if id(child) in on_path or child is main_chain_top:
                continue
            subquery = nest(child, catalog)
            condition = ExistsExpr(subquery)
            if child.negated:
                query.add_where(UnaryOp("NOT", condition))
            else:
                query.add_where(condition)


def _top_of_chain(n_tp: TPNode, nj: SchemaNode):
    """The topmost main-chain TP node (the child of nj's TP node)."""
    node = n_tp
    while node.parent is not None and node.parent.schema_node is not nj:
        node = node.parent
    return node


# ---------------------------------------------------------------------------
# Parameter renaming (Figure 9, lines 21-22)
# ---------------------------------------------------------------------------


def _rename_parameters(
    query: Select,
    bvmap: dict[str, str],
    ancestor_exposures: dict[str, Exposure],
    new_bv: str,
    own_exposure: Exposure,
) -> None:
    def fn(expr):
        if not isinstance(expr, ParamRef):
            return None
        if expr.var in bvmap:
            target = bvmap[expr.var]
            if target == new_bv:
                carried = own_exposure.get(expr.var, {})
            else:
                carried = ancestor_exposures.get(target, {}).get(expr.var, {})
            return ParamRef(target, carried.get(expr.column, expr.column))
        # Already-renamed parameters (from the upward correlation or a
        # prior pass) reference TVQ binding variables directly.
        if expr.var in ancestor_exposures:
            return None
        raise CompositionError(
            f"unresolvable binding variable ${expr.var} in composed query"
        )

    map_exprs(query, fn)

"""Step 4: the stylesheet view (Sections 3.4, 4.4; Figures 7(c), 15, 16).

Takes the connected output tag tree, copies each TVQ node's tag query
onto its pseudo-root (Figure 9 lines 29-31), then eliminates pseudo-roots
top-down, pushing queries into their children (lines 32-42):

* a query-less child inherits the pseudo-root's binding variable and a
  clone of its query (one clone per child — several children re-run the
  query, which is the "grouped rather than interleaved" note of
  Section 4.4),
* a child that already carries a query (a connected child rule whose
  body was a bare apply-templates) is **forced-unbound**: the
  pseudo-root's query is inlined into it at whatever scope references the
  variable (the nested-derived-table shape of Figure 16), its columns are
  carried to the output, and descendants' references are renamed.

The surviving element/context nodes convert into a fresh
:class:`~repro.schema_tree.model.SchemaTreeQuery` — the stylesheet view.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import CompositionError
from repro.core.ott import APPLY, CONTEXT, ELEMENT, PSEUDO, OTTNode
from repro.core.tvq import TraverseViewQuery
from repro.schema_tree.model import ROOT_ID, SchemaNode, SchemaTreeQuery
from repro.sql.analysis import TableColumns
from repro.sql.ast import ParamRef, Select
from repro.sql.params import map_exprs, referenced_vars
from repro.sql.transform import attach_parent_query


def attach_queries(tvq: TraverseViewQuery, otts: dict[int, OTTNode]) -> None:
    """Copy bv and tag query from each TVQ node to its OTT pseudo-root
    (Figure 9, lines 29-31)."""
    for tvq_node in tvq.root.walk():
        tree = otts[id(tvq_node)]
        tree.bv = tvq_node.bv
        tree.tag_query = tvq_node.tag_query


def eliminate_pseudo_roots(
    root: OTTNode, catalog: TableColumns, paper_mode: bool = False
) -> list[OTTNode]:
    """Remove pseudo-roots, pushing queries down (Figure 9, lines 32-42).

    Returns the list of top-level OTT nodes of the stylesheet view.
    """
    # Line 32: the topmost pseudo-root (the root rule's, which has no
    # query) simply disappears; its children become top level.
    if root.kind != PSEUDO:
        raise CompositionError("output tag tree does not start at a pseudo-root")
    top_level = list(root.children)
    for child in top_level:
        child.parent = None
        if root.tag_query is not None:
            _push_into_child(child, root, catalog, 0, paper_mode)

    # Lines 33-42: repeatedly eliminate remaining pseudo-roots, topmost
    # first so that forced unbinding cascades outside-in. One pre-order
    # snapshot per pass handles every pseudo-root whose parent is already
    # settled (ancestors precede descendants in the snapshot, so a whole
    # pseudo chain collapses in a single pass) — the loop runs a bounded
    # number of times instead of once per node, which mattered: the E6
    # blowup spent 95% of composition time in the old rescan-per-node
    # loop.
    changed = True
    while changed:
        changed = False
        for node in [n for t in top_level for n in t.walk()]:
            if node.kind != PSEUDO:
                continue
            parent = node.parent
            if parent is None or parent.kind == PSEUDO:
                continue  # wait until the parent pseudo-root is gone
            children = list(node.children)
            for index, child in enumerate(children):
                _push_into_child(child, node, catalog, index, paper_mode)
            parent.replace_child(node, children)
            changed = True
        # Top-level pseudo-roots (root rule body was a bare
        # apply-templates): splice their children into the top level.
        index = 0
        while index < len(top_level):
            node = top_level[index]
            if node.kind != PSEUDO:
                index += 1
                continue
            children = list(node.children)
            for c_index, child in enumerate(children):
                _push_into_child(child, node, catalog, c_index, paper_mode)
                child.parent = None
            top_level[index:index + 1] = children
            changed = True
        # A fresh pass picks up pseudo-roots that surfaced this round.
    return top_level


def _push_into_child(
    child: OTTNode,
    pseudo: OTTNode,
    catalog: TableColumns,
    sibling_index: int,
    paper_mode: bool = False,
) -> None:
    """Push a pseudo-root's query into one child (lines 36-41)."""
    if pseudo.tag_query is None:
        return
    assert pseudo.bv is not None
    if child.tag_query is None:
        # Line 37: the child inherits the query. Each sibling needs its
        # own binding variable so the view stays well-formed; descendants
        # referencing the pseudo-root's variable are renamed (line 41).
        child.tag_query = pseudo.tag_query.clone()
        if sibling_index == 0:
            child.bv = pseudo.bv
        else:
            child.bv = f"{pseudo.bv}_d{sibling_index + 1}"
            _rename_var_in_subtree(child, pseudo.bv, child.bv)
        return
    # Lines 39-41: forced unbinding (Figure 16).
    assert child.bv is not None
    exposure = attach_parent_query(
        child.tag_query, pseudo.bv, pseudo.tag_query, catalog,
        scalar_aggregates=not paper_mode,
    )
    _redirect_var_in_subtree(child, pseudo.bv, child.bv, exposure)


def _rename_var_in_subtree(node: OTTNode, old: str, new: str) -> None:
    for descendant in node.walk():
        if descendant is node:
            continue
        if descendant.tag_query is not None:
            _rename_in_query(descendant.tag_query, old, new, None)


def _redirect_var_in_subtree(
    node: OTTNode, old: str, new: str, exposure: dict[str, str]
) -> None:
    for descendant in node.walk():
        if descendant is node:
            continue
        if descendant.tag_query is not None:
            _rename_in_query(descendant.tag_query, old, new, exposure)


def _rename_in_query(
    query: Select, old: str, new: str, exposure: Optional[dict[str, str]]
) -> None:
    def fn(expr):
        if isinstance(expr, ParamRef) and expr.var == old:
            column = expr.column
            if exposure is not None:
                column = exposure.get(column, column)
            return ParamRef(new, column)
        return None

    map_exprs(query, fn)


def to_schema_tree(top_level: list[OTTNode]) -> SchemaTreeQuery:
    """Convert the pushed-down OTT into a schema-tree query."""
    view = SchemaTreeQuery()
    counter = [ROOT_ID]

    def convert(node: OTTNode, parent: SchemaNode, source_bv: Optional[str]) -> None:
        if node.kind == PSEUDO:  # pragma: no cover - eliminated earlier
            raise CompositionError("pseudo-root survived elimination")
        if node.kind == APPLY:  # pragma: no cover - replaced during connect
            raise CompositionError("apply placeholder survived connection")
        counter[0] += 1
        if node.kind == CONTEXT:
            attr_columns: Optional[list[str]] = list(node.context_columns)
        else:
            attr_columns = []
        schema_node = SchemaNode(
            id=counter[0],
            tag=node.tag,
            bv=node.bv,
            tag_query=node.tag_query,
            attr_columns=attr_columns,
            literal_attributes=dict(node.literal_attributes),
        )
        schema_node.data_attributes = dict(node.data_attrs)
        if node.tag_query is None and (node.data_attrs or node.kind == CONTEXT):
            schema_node.attr_source_bv = source_bv
        parent.add_child(schema_node)
        child_source = node.bv if node.tag_query is not None else source_bv
        for child in node.children:
            convert(child, schema_node, child_source)

    for node in top_level:
        convert(node, view.root, None)
    return view

"""The rewrite pipeline: lower a stylesheet to the composable dialect.

Order matters:

1. general ``value-of`` lowering (may introduce new rules),
2. flow-control lowering to a fixpoint (new rules may carry bodies with
   further flow control; the worklist inside handles that),
3. optionally, conflict resolution (introduces ``choose`` dispatchers),
   followed by another flow-control pass to lower them.

:func:`repro.core.compose.compose` runs steps 1-2 eagerly and retries
with step 3 when the CTG reports a dynamic conflict.
"""

from __future__ import annotations

from repro.core.rewrites.conflict import resolve_conflicts
from repro.core.rewrites.flow_control import lower_flow_control
from repro.core.rewrites.value_of import lower_value_of
from repro.xslt.model import Stylesheet


def rewrite_to_basic(
    stylesheet: Stylesheet, with_conflict_resolution: bool = False
) -> Stylesheet:
    """Lower a stylesheet toward ``XSLT_basic`` + predicates."""
    lowered = lower_value_of(stylesheet)
    lowered = lower_flow_control(lowered)
    if with_conflict_resolution:
        lowered = resolve_conflicts(lowered)
        lowered = lower_flow_control(lowered)
    return lowered

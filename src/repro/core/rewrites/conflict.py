"""Conflict resolution for template rules (Section 5.2.3, Figure 24).

Potentially-conflicting rules — same mode, same name in the last location
step (or a ``*`` step, which conflicts with everything) — are replaced by
a **dispatcher**: one rule matching the common name whose body is an
``xsl:choose`` testing, in priority order, the *reversed* pattern of each
original rule, and dispatching to that rule under a fresh mode:

.. code-block:: text

    pattern_i = name1[p1]/name2[p2]/.../namen[pn]
    expression_i = .[pn]/parent::name_{n-1}[p_{n-1}]/.../parent::name1[p1]

This corrects a subtle issue in the paper's Figure 24, which moves rule 1
out of mode ``m`` entirely — a node matched *only* by pattern 1 would
then never be processed. The dispatcher keeps every original pattern
reachable while still applying exactly the highest-priority matching
rule.

The dispatcher's ``choose`` is then lowered by the flow-control rewrite,
so the full pipeline yields plain ``XSLT_basic`` + predicates.
"""

from __future__ import annotations

from repro.errors import UnsupportedFeatureError
from repro.core.rewrites.common import ModeAllocator, copy_rule
from repro.xpath.ast import Axis, Expr, LocationPath, PathExpr, Step
from repro.xpath.parser import parse_pattern
from repro.xpath.patterns import Pattern
from repro.xslt.model import (
    ApplyTemplates,
    Choose,
    ChooseWhen,
    Stylesheet,
    TemplateRule,
)


def resolve_conflicts(stylesheet: Stylesheet) -> Stylesheet:
    """Return an equivalent stylesheet with at most one same-mode rule
    able to match any node."""
    result = Stylesheet()
    modes = ModeAllocator(stylesheet)
    for mode in stylesheet.modes():
        rules = [copy_rule(r) for r in stylesheet.rules_for_mode(mode)]
        _emit_mode(rules, mode, modes, result)
    return result


def _emit_mode(
    rules: list[TemplateRule],
    mode: str,
    modes: ModeAllocator,
    result: Stylesheet,
) -> None:
    root_rules = [r for r in rules if r.match.is_root]
    element_rules = [r for r in rules if not r.match.is_root]
    for rule in root_rules:
        # Root patterns only match the document root; more than one is a
        # hard conflict with no data-dependent component.
        result.add(rule)
    if len(root_rules) > 1:
        raise UnsupportedFeatureError(
            "conflicting-rules", f"multiple '/' rules in mode {mode!r}"
        )

    has_star = any(r.match.last_name == "*" for r in element_rules)
    groups: dict[str, list[TemplateRule]]
    if has_star:
        groups = {"*": element_rules}
    else:
        groups = {}
        for rule in element_rules:
            name = rule.match.last_name or "*"
            groups.setdefault(name, []).append(rule)

    for name, members in groups.items():
        if len(members) < 2:
            for rule in members:
                result.add(rule)
            continue
        _emit_dispatcher(name, members, mode, modes, result)


def _emit_dispatcher(
    name: str,
    members: list[TemplateRule],
    mode: str,
    modes: ModeAllocator,
    result: Stylesheet,
) -> None:
    # Priority order: higher priority first; stylesheet position breaks
    # ties (XSLT's recoverable behaviour picks the later rule).
    members = sorted(
        members,
        key=lambda r: (r.effective_priority(), r.position),
        reverse=True,
    )
    choose = Choose()
    for rule in members:
        fresh_mode = modes.fresh()
        when = ChooseWhen(_reverse_pattern(rule.match))
        when.children = [
            ApplyTemplates(
                LocationPath((Step(Axis.SELF, "*"),)), fresh_mode
            )
        ]
        choose.whens.append(when)
        result.add(
            TemplateRule(match=rule.match, mode=fresh_mode, output=rule.output)
        )
    dispatcher = TemplateRule(
        match=parse_pattern(name),
        mode=mode,
        output=[choose],
    )
    result.add(dispatcher)


def _reverse_pattern(pattern: Pattern) -> Expr:
    """``expression_i`` of Figure 24: the self-anchored reversal of a
    match pattern, used as an existence test."""
    if pattern.path.absolute:
        raise UnsupportedFeatureError(
            "conflicting-rules",
            f"cannot reverse the anchored pattern {pattern.to_text()!r}",
        )
    if pattern.uses_descendant_axis():
        raise UnsupportedFeatureError(
            "descendant-axis", f"pattern {pattern.to_text()!r}"
        )
    steps = list(pattern.path.steps)
    reversed_steps: list[Step] = [Step(Axis.SELF, steps[-1].node_test, steps[-1].predicates)]
    for step in reversed(steps[:-1]):
        reversed_steps.append(Step(Axis.PARENT, step.node_test, step.predicates))
    return PathExpr(LocationPath(tuple(reversed_steps)))

"""Shared helpers for stylesheet rewrites."""

from __future__ import annotations

from repro.xslt.model import (
    ApplyTemplates,
    Choose,
    ChooseWhen,
    ForEach,
    IfInstruction,
    LiteralElement,
    OutputNode,
    Stylesheet,
    TemplateRule,
)


class ModeAllocator:
    """Generates fresh mode names that cannot collide with user modes."""

    def __init__(self, stylesheet: Stylesheet, prefix: str = "__m"):
        self._taken = set(stylesheet.modes())
        self._prefix = prefix
        self._counter = 0

    def fresh(self) -> str:
        """Return a new mode name unused so far."""
        while True:
            self._counter += 1
            candidate = f"{self._prefix}{self._counter}"
            if candidate not in self._taken:
                self._taken.add(candidate)
                return candidate


def copy_output(nodes: list[OutputNode]) -> list[OutputNode]:
    """Deep copy a rule body (rewrites must not alias the source)."""
    return [_copy_node(n) for n in nodes]


def _copy_node(node: OutputNode) -> OutputNode:
    if isinstance(node, LiteralElement):
        copy = LiteralElement(node.tag, dict(node.attributes))
        copy.avt_attributes = dict(node.avt_attributes)
        copy.children = copy_output(node.children)
        return copy
    if isinstance(node, ApplyTemplates):
        return ApplyTemplates(
            node.select, node.mode, list(node.with_params), list(node.sorts)
        )
    if isinstance(node, IfInstruction):
        copy = IfInstruction(node.test)
        copy.children = copy_output(node.children)
        return copy
    if isinstance(node, Choose):
        copy = Choose()
        for when in node.whens:
            new_when = ChooseWhen(when.test)
            new_when.children = copy_output(when.children)
            copy.whens.append(new_when)
        copy.otherwise = copy_output(node.otherwise)
        return copy
    if isinstance(node, ForEach):
        copy = ForEach(node.select)
        copy.sorts = list(node.sorts)
        copy.children = copy_output(node.children)
        return copy
    # TextOutput, ValueOf, CopyOf hold immutable payloads; a shallow
    # dataclass copy suffices.
    import copy as _copylib

    return _copylib.copy(node)


def copy_rule(rule: TemplateRule) -> TemplateRule:
    """Deep copy a template rule, preserving its stylesheet position.

    Position matters: it is XSLT's tie-break between equal-priority rules,
    and the conflict rewrite orders its dispatcher by it. Adding the copy
    to a new Stylesheet reassigns the position anyway, but rewrites sort
    copies *before* adding them.
    """
    copy = TemplateRule(
        match=rule.match,
        mode=rule.mode,
        priority=rule.priority,
        output=copy_output(rule.output),
        params=list(rule.params),
    )
    copy.position = rule.position
    return copy

"""Section 5.2 source-to-source rewrites: lower XSLT supersets to the
composable dialect (``XSLT_basic`` plus predicates).

* :mod:`~repro.core.rewrites.flow_control` — ``xsl:if``, ``xsl:choose``,
  ``xsl:for-each`` (Figures 21-22),
* :mod:`~repro.core.rewrites.value_of` — general ``value-of`` selects
  (Figure 23),
* :mod:`~repro.core.rewrites.conflict` — priority-based conflict
  resolution (Figure 24, corrected — see the module docstring),
* :mod:`~repro.core.rewrites.pipeline` — the composition-ready pipeline.

Every rewrite is semantics-preserving under the interpreter; the
property-based tests in ``tests/rewrites`` check exactly that.
"""

from repro.core.rewrites.pipeline import rewrite_to_basic

__all__ = ["rewrite_to_basic"]

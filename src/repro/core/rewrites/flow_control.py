"""Flow-control lowering: xsl:if / xsl:choose / xsl:for-each (Figs 21-22).

Each instruction becomes an ``apply-templates`` that re-selects the
current context through a predicate (``.[test]``) in a **fresh mode**,
plus a new template rule in that mode holding the instruction's body:

* ``<xsl:if test="e">B</xsl:if>``  →  ``apply .[e] mode=m'`` + rule(B),
* ``<xsl:choose>`` with whens ``e1..ek`` and otherwise  →  the guarded
  chain ``.[e1]``, ``.[not(e1) and e2]``, …, ``.[not(e1) and … and
  not(ek)]`` (Figure 22),
* ``<xsl:for-each select="p">B</xsl:for-each>``  →  ``apply p mode=m'`` +
  a rule matching ``p``'s last step name.

The rewrite iterates to a fixpoint, so nested flow control lowers fully.
"""

from __future__ import annotations

from repro.errors import UnsupportedFeatureError
from repro.core.rewrites.common import ModeAllocator, copy_output, copy_rule
from repro.xpath.ast import AttributeRef
from repro.xslt.model import ValueOf
from repro.xpath.ast import (
    Axis,
    BinaryOp,
    Expr,
    FunctionCall,
    LocationPath,
    PathExpr,
    Step,
)
from repro.xpath.parser import parse_pattern
from repro.xslt.model import (
    ApplyTemplates,
    Choose,
    ForEach,
    IfInstruction,
    LiteralElement,
    OutputNode,
    Stylesheet,
    TemplateRule,
)


def lower_flow_control(stylesheet: Stylesheet) -> Stylesheet:
    """Return an equivalent stylesheet without if/choose/for-each."""
    result = Stylesheet()
    modes = ModeAllocator(stylesheet)
    worklist = [copy_rule(rule) for rule in stylesheet.rules]
    index = 0
    while index < len(worklist):
        rule = worklist[index]
        index += 1
        rule.output = _lower_nodes(rule.output, rule, modes, worklist)
        result.add(rule)
    return result


def _guard_conditional_attributes(body: list[OutputNode]) -> None:
    """Reject bodies whose direct children set attributes via value-of @a.

    An attribute attaches to the *enclosing literal element*; pulling the
    body into a separate rule would detach it, silently changing the
    output. The publishing model cannot express conditional attributes,
    so this is rejected loudly.
    """
    for node in body:
        if isinstance(node, ValueOf) and isinstance(node.select, AttributeRef):
            raise UnsupportedFeatureError(
                "conditional-attribute",
                "value-of '@attr' directly under flow control would detach "
                "from its enclosing element",
            )


def _lower_nodes(
    nodes: list[OutputNode],
    rule: TemplateRule,
    modes: ModeAllocator,
    worklist: list[TemplateRule],
) -> list[OutputNode]:
    lowered: list[OutputNode] = []
    for node in nodes:
        if isinstance(node, IfInstruction):
            _guard_conditional_attributes(node.children)
            mode = modes.fresh()
            lowered.append(ApplyTemplates(_self_select(node.test), mode))
            worklist.append(
                TemplateRule(
                    match=rule.match,
                    mode=mode,
                    output=copy_output(node.children),
                )
            )
        elif isinstance(node, Choose):
            negated: list[Expr] = []
            for when in node.whens:
                _guard_conditional_attributes(when.children)
                guard = _conjoin(negated + [when.test])
                mode = modes.fresh()
                lowered.append(ApplyTemplates(_self_select(guard), mode))
                worklist.append(
                    TemplateRule(
                        match=rule.match,
                        mode=mode,
                        output=copy_output(when.children),
                    )
                )
                negated.append(FunctionCall("not", (when.test,)))
            if node.otherwise:
                _guard_conditional_attributes(node.otherwise)
                guard = _conjoin(negated)
                mode = modes.fresh()
                lowered.append(ApplyTemplates(_self_select(guard), mode))
                worklist.append(
                    TemplateRule(
                        match=rule.match,
                        mode=mode,
                        output=copy_output(node.otherwise),
                    )
                )
        elif isinstance(node, ForEach):
            _guard_conditional_attributes(node.children)
            mode = modes.fresh()
            apply = ApplyTemplates(node.select, mode)
            apply.sorts = list(node.sorts)
            lowered.append(apply)
            worklist.append(
                TemplateRule(
                    match=_match_for_select(node.select),
                    mode=mode,
                    output=copy_output(node.children),
                )
            )
        elif isinstance(node, LiteralElement):
            node.children = _lower_nodes(node.children, rule, modes, worklist)
            lowered.append(node)
        else:
            lowered.append(node)
    return lowered


def _self_select(test: Expr) -> LocationPath:
    """The ``.[test]`` select of Figures 21-22."""
    return LocationPath((Step(Axis.SELF, "*", (test,)),))


def _conjoin(exprs: list[Expr]) -> Expr:
    result = exprs[0]
    for expr in exprs[1:]:
        result = BinaryOp("and", result, expr)
    return result


def _match_for_select(select: LocationPath):
    """A pattern matching whatever a for-each select can produce."""
    if not select.steps:
        return parse_pattern("*")
    last = select.steps[-1]
    if last.axis is Axis.CHILD and last.node_test != "*":
        return parse_pattern(last.node_test)
    return parse_pattern("*")

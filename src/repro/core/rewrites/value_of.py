"""General ``xsl:value-of`` lowering (Section 5.2.2, Figure 23).

``<xsl:value-of select="path"/>`` — with a multi-step path select, which
``XSLT_basic`` restriction (10) forbids — becomes
``<xsl:apply-templates select="path" mode="m'"/>`` plus a new rule in
mode ``m'`` whose body is ``<xsl:value-of select="."/>`` (or
``select="@a"`` when the path ends on an attribute step).
"""

from __future__ import annotations

from repro.core.rewrites.common import ModeAllocator, copy_rule
from repro.xpath.ast import (
    AttributeRef,
    Axis,
    ContextRef,
    LocationPath,
    PathExpr,
)
from repro.xpath.parser import parse_pattern
from repro.xslt.model import (
    ApplyTemplates,
    LiteralElement,
    OutputNode,
    Stylesheet,
    TemplateRule,
    ValueOf,
)


def lower_value_of(stylesheet: Stylesheet) -> Stylesheet:
    """Return an equivalent stylesheet whose value-of selects are only
    ``.`` or ``@attr``."""
    result = Stylesheet()
    modes = ModeAllocator(stylesheet)
    new_rules: list[TemplateRule] = []
    for original in stylesheet.rules:
        rule = copy_rule(original)
        rule.output = _lower_nodes(rule.output, modes, new_rules)
        result.add(rule)
    for rule in new_rules:
        result.add(rule)
    return result


def _lower_nodes(
    nodes: list[OutputNode],
    modes: ModeAllocator,
    new_rules: list[TemplateRule],
) -> list[OutputNode]:
    from repro.xslt.model import Choose, ForEach, IfInstruction

    lowered: list[OutputNode] = []
    for node in nodes:
        if isinstance(node, LiteralElement):
            node.children = _lower_nodes(node.children, modes, new_rules)
            lowered.append(node)
            continue
        if isinstance(node, (IfInstruction, ForEach)):
            # Descend into flow-control bodies: this pass runs before the
            # flow-control lowering, which moves these bodies into fresh
            # rules verbatim.
            node.children = _lower_nodes(node.children, modes, new_rules)
            lowered.append(node)
            continue
        if isinstance(node, Choose):
            for when in node.whens:
                when.children = _lower_nodes(when.children, modes, new_rules)
            node.otherwise = _lower_nodes(node.otherwise, modes, new_rules)
            lowered.append(node)
            continue
        if not isinstance(node, ValueOf):
            lowered.append(node)
            continue
        select = node.select
        if isinstance(select, (ContextRef, AttributeRef)):
            lowered.append(node)
            continue
        if not isinstance(select, PathExpr):
            # Computed values (arithmetic, variables) stay as-is; the
            # composer reports them if they survive to composition.
            lowered.append(node)
            continue
        path = select.path
        mode = modes.fresh()
        if path.steps and path.steps[-1].axis is Axis.ATTRIBUTE:
            prefix = LocationPath(path.steps[:-1], absolute=path.absolute)
            attr = path.steps[-1].node_test
            body: list[OutputNode] = [ValueOf(AttributeRef(attr))]
            target = prefix
        else:
            body = [ValueOf(ContextRef())]
            target = path
        lowered.append(ApplyTemplates(target, mode))
        new_rules.append(
            TemplateRule(
                match=_match_for_path(target),
                mode=mode,
                output=body,
            )
        )
    return lowered


def _match_for_path(path: LocationPath):
    if not path.steps:
        return parse_pattern("*")
    last = path.steps[-1]
    if last.axis is Axis.CHILD and last.node_test != "*":
        return parse_pattern(last.node_test)
    return parse_pattern("*")

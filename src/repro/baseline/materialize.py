"""The naive materialize-then-transform pipeline.

This is the strawman of the paper's introduction: evaluate ``v(I)`` in
full — every node, whether or not the stylesheet will ever look at it —
then parse/process the stylesheet over the document. Work counters are
collected so experiments can report exactly how much of that work the
composed approach avoids.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.engine import Database
from repro.schema_tree.evaluator import ViewEvaluator
from repro.schema_tree.model import SchemaTreeQuery
from repro.xmlcore.nodes import Document
from repro.xslt.model import Stylesheet
from repro.xslt.processor import XSLTProcessor


@dataclass
class NaiveRunResult:
    """Output document plus the work performed to produce it."""

    document: Document
    elements_materialized: int
    attributes_materialized: int
    queries_executed: int
    contexts_processed: int
    rules_fired: int


class NaivePipeline:
    """Materialize the view, then interpret the stylesheet."""

    def __init__(
        self,
        view: SchemaTreeQuery,
        stylesheet: Stylesheet,
        builtin_rules: str = "empty",
    ):
        self.view = view
        self.stylesheet = stylesheet
        self.builtin_rules = builtin_rules

    def run(self, db: Database) -> NaiveRunResult:
        """Execute both stages against ``db``, collecting counters."""
        queries_before = db.stats.queries_executed
        evaluator = ViewEvaluator(db)
        document = evaluator.materialize(self.view)
        processor = XSLTProcessor(
            self.stylesheet, builtin_rules=self.builtin_rules
        )
        result = processor.process_document(document)
        return NaiveRunResult(
            document=result,
            elements_materialized=evaluator.stats.elements_created,
            attributes_materialized=evaluator.stats.attributes_created,
            queries_executed=db.stats.queries_executed - queries_before,
            contexts_processed=processor.stats.contexts_processed,
            rules_fired=processor.stats.rules_fired,
        )

"""Baselines the paper compares against (Section 6).

* :mod:`~repro.baseline.materialize` — the naive pipeline: materialize
  the full XML view, then run the XSLT interpreter over it. Always
  correct; does all the work composition avoids.
* :mod:`~repro.baseline.qtree` — a reimplementation of the approach of
  Jain, Mahajan and Suciu (WWW 2002, [7] in the paper): split the
  stylesheet into root-to-leaf rule paths, generate one SQL query per
  path, union the results. It reproduces the deficiencies the paper
  criticizes: only leaf rules contribute output, and parent-axis
  navigation is rejected.
"""

from repro.baseline.materialize import NaivePipeline, NaiveRunResult
from repro.baseline.qtree import QTreeTranslator

__all__ = ["NaivePipeline", "NaiveRunResult", "QTreeTranslator"]

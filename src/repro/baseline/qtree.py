"""The QTree path-translation baseline of Jain, Mahajan and Suciu [7].

Reimplemented from the description in the paper's Section 6: the XSLT
program is separated into distinct root-to-leaf *paths* of rule firings;
each path composes into **one** SQL query (the leaf's data access with
every ancestor's query folded in); the final answer is the union of all
path queries, with result tuples tagged by their path so the XML output
can be assembled.

The documented deficiencies are reproduced faithfully, because they are
exactly what the paper's comparison (Section 6) discusses:

1. **Leaf-only output** — only the last rule on each path contributes a
   result fragment; interior rules' literal output elements are emitted
   once per path, not once per matched node, so stylesheets whose
   interior rules produce per-node output give wrong answers here.
2. **No parent axis** — select expressions using ``..`` are rejected
   (``UnsupportedFeatureError``), as [7]'s QTree "does not appear to
   handle the parent axis" (the paper's example Figure 4 therefore cannot
   run on this baseline at all).
3. Predicates are restricted to attribute comparisons.

Internally the translator reuses this library's CTG/TVQ machinery to
enumerate paths and then flattens each leaf query by folding every
ancestor tag query into it, yielding the single-SQL-per-path behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import UnsupportedFeatureError
from repro.core.ctg import build_ctg
from repro.core.tvq import TVQNode, build_tvq
from repro.relational.engine import Database
from repro.relational.schema import Catalog
from repro.schema_tree.model import SchemaTreeQuery
from repro.sql.analysis import output_columns
from repro.sql.ast import DerivedTable, Select
from repro.sql.params import referenced_vars
from repro.sql.printer import print_select
from repro.sql.transform import attach_parent_query
from repro.xmlcore.nodes import Document, Element
from repro.xpath.ast import Axis
from repro.xslt.model import Stylesheet


@dataclass
class QTreePath:
    """One root-to-leaf path with its single flattened SQL query."""

    tags: list[str]
    leaf_tag: str
    query: Select
    attr_columns: list[str]

    def sql(self) -> str:
        """Render this path's flattened query as SQL text."""
        return print_select(self.query)


@dataclass
class QTreeRunResult:
    """Execution outcome of the baseline."""

    document: Document
    queries_executed: int
    rows_fetched: int
    paths: int = 0
    elements_materialized: int = 0


class QTreeTranslator:
    """Translate (view, stylesheet) into per-path SQL, [7]-style."""

    def __init__(
        self,
        view: SchemaTreeQuery,
        stylesheet: Stylesheet,
        catalog: Catalog,
    ):
        self.view = view
        self.stylesheet = stylesheet
        self.catalog = catalog
        self._reject_parent_axis(stylesheet)
        ctg = build_ctg(view, stylesheet)
        tvq = build_tvq(ctg, catalog)
        self.paths: list[QTreePath] = []
        for node in tvq.root.walk():
            if not node.children and node.tag_query is not None:
                self.paths.append(self._flatten_path(node))

    @staticmethod
    def _reject_parent_axis(stylesheet: Stylesheet) -> None:
        for rule in stylesheet.rules:
            for apply in rule.apply_templates_nodes():
                for step in apply.select.steps:
                    if step.axis is Axis.PARENT:
                        raise UnsupportedFeatureError(
                            "parent-axis",
                            "the QTree baseline cannot navigate to parents "
                            f"(select {apply.select.to_text()!r})",
                        )

    def _flatten_path(self, leaf: TVQNode) -> QTreePath:
        """Fold every ancestor query into the leaf's — one SQL per path."""
        assert leaf.tag_query is not None
        query = leaf.tag_query.clone()
        attr_columns = (
            output_columns(leaf.schema_node.tag_query, self.catalog)
            if leaf.schema_node.tag_query is not None
            else []
        )
        node: Optional[TVQNode] = leaf.parent
        tags = [leaf.schema_node.tag]
        while node is not None:
            tags.append(node.schema_node.tag or "/")
            if node.bv is not None and node.tag_query is not None:
                attach_parent_query(query, node.bv, node.tag_query, self.catalog)
            node = node.parent
        tags.reverse()
        return QTreePath(
            tags=tags,
            leaf_tag=leaf.schema_node.tag,
            query=query,
            attr_columns=attr_columns,
        )

    def run(self, db: Database) -> QTreeRunResult:
        """Execute every path query and assemble the leaf-only output."""
        queries_before = db.stats.queries_executed
        rows_before = db.stats.rows_fetched
        document = Document()
        root = Element("qtree_result")
        document.append(root)
        elements = 1
        for path in self.paths:
            group = Element("path", {"steps": "/".join(path.tags)})
            root.append(group)
            elements += 1
            for row in db.run_query(path.query, env={}):
                element = Element(path.leaf_tag)
                for column in path.attr_columns:
                    if column in row and row[column] is not None:
                        value = row[column]
                        if isinstance(value, float) and value == int(value):
                            value = int(value)
                        element.set(column, str(value))
                group.append(element)
                elements += 1
        return QTreeRunResult(
            document=document,
            queries_executed=db.stats.queries_executed - queries_before,
            rows_fetched=db.stats.rows_fetched - rows_before,
            paths=len(self.paths),
            elements_materialized=elements,
        )

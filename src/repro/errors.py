"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
applications can catch a single base class. Sub-hierarchies mirror the
package layout: XML parsing, XPath, SQL, schema-tree views, XSLT, and the
view-composition algorithm itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class XMLError(ReproError):
    """Base class for XML substrate errors."""


class XMLParseError(XMLError):
    """Raised when XML input is not well-formed.

    Attributes:
        line: 1-based line of the offending input position.
        column: 1-based column of the offending input position.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class XPathError(ReproError):
    """Base class for XPath substrate errors."""


class XPathSyntaxError(XPathError):
    """Raised when an XPath expression or pattern cannot be parsed."""

    def __init__(self, message: str, expression: str = "", position: int = -1):
        self.expression = expression
        self.position = position
        if expression:
            message = f"{message} in {expression!r}"
            if position >= 0:
                message = f"{message} at offset {position}"
        super().__init__(message)


class XPathEvaluationError(XPathError):
    """Raised when an XPath expression fails during evaluation."""


class SQLError(ReproError):
    """Base class for SQL substrate errors."""


class SQLSyntaxError(SQLError):
    """Raised when a tag query cannot be parsed by the SQL-subset parser."""

    def __init__(self, message: str, sql: str = "", position: int = -1):
        self.sql = sql
        self.position = position
        if sql:
            snippet = sql if len(sql) <= 80 else sql[:77] + "..."
            message = f"{message} in {snippet!r}"
            if position >= 0:
                message = f"{message} at offset {position}"
        super().__init__(message)


class SQLTransformError(SQLError):
    """Raised when an AST transformation (unbinding, inlining) fails."""


class SchemaError(ReproError):
    """Raised for relational catalog problems (unknown table/column, ...)."""


class DriverError(ReproError):
    """Base class for engine-driver problems (:mod:`repro.relational.driver`)."""


class DriverUnavailableError(DriverError):
    """Raised when a requested backend cannot be used here.

    Either the backend name is unknown, or it is known but its module
    is not installed (e.g. ``duckdb`` on a sqlite-only box). Tests and
    the CLI catch this to skip or fail with a clear message instead of
    an ImportError deep inside the engine.
    """

    def __init__(self, backend: str, detail: str = ""):
        self.backend = backend
        message = f"backend {backend!r} is unavailable"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class DriverCapabilityError(DriverError):
    """Raised when a driver is asked for a capability it does not declare.

    The capability contract is explicit: a driver without write hooks
    (DuckDB) raises this from ``install_change_capture`` rather than
    silently capturing nothing — auto change capture degrading to "no
    capture" would serve stale bytes under the strict policy.
    """

    def __init__(self, backend: str, capability: str):
        self.backend = backend
        self.capability = capability
        super().__init__(
            f"backend {backend!r} does not support {capability}"
        )


class ViewError(ReproError):
    """Base class for schema-tree view errors."""


class ViewDefinitionError(ViewError):
    """Raised when a schema-tree query definition is malformed."""


class ViewEvaluationError(ViewError):
    """Raised when materializing a view against a database fails."""


class XSLTError(ReproError):
    """Base class for XSLT substrate errors."""


class StylesheetParseError(XSLTError):
    """Raised when a stylesheet document does not describe a valid stylesheet."""


class XSLTRuntimeError(XSLTError):
    """Raised when the XSLT interpreter fails while processing a document."""


class ConflictError(XSLTError):
    """Raised when conflicting template rules cannot be resolved."""


class CompositionError(ReproError):
    """Base class for failures of the view-composition algorithm."""


class UnsupportedFeatureError(CompositionError):
    """Raised when a stylesheet uses a feature outside the composable dialect.

    The offending feature name is recorded so callers (for example the
    hybrid executor) can decide how to fall back.
    """

    def __init__(self, feature: str, detail: str = ""):
        self.feature = feature
        message = f"unsupported feature for composition: {feature}"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)


class UnificationError(CompositionError):
    """Raised when COMBINE cannot unify select and match tree patterns."""


class ServingError(ReproError):
    """Base class for serving-path failures (:mod:`repro.serving`).

    These are *operational* errors — the request was well-formed but the
    server could not (or chose not to) complete it. The resilience layer
    (:mod:`repro.resilience`) raises and classifies them; a
    :class:`~repro.serving.server.RequestTrace` records the outcome
    instead of letting them propagate out of a worker.
    """


class DeadlineExceeded(ServingError):
    """Raised when a request's deadline expires during evaluation.

    Raised cooperatively at query boundaries (the engine's
    ``cancel_check`` hook) or after a hard
    ``sqlite3.Connection.interrupt`` cut a long-running statement short.
    """

    def __init__(self, deadline_ms: float, elapsed_ms: float):
        self.deadline_ms = deadline_ms
        self.elapsed_ms = elapsed_ms
        super().__init__(
            f"deadline of {deadline_ms:.0f}ms exceeded "
            f"after {elapsed_ms:.0f}ms"
        )


class RequestRejected(ServingError):
    """Raised (or recorded) when admission control sheds a request.

    The serving-layer analogue of HTTP 503: the bounded queue is full,
    so the request is refused immediately instead of piling onto a
    saturated server. Never retried internally — backpressure is the
    caller's signal.
    """


class RequestCancelled(ServingError):
    """Raised when a request is cancelled by its :class:`CancelToken`.

    Cancellation is *cooperative and intentional* — the async front end
    cancels the losing attempt of a hedged request pair once the first
    response arrives. A cancelled request is neither a success nor a
    failure: it must not feed the circuit breaker, must not retry, and
    must not fall back to a degraded-stale serve (the winning attempt
    already produced the response).
    """

    def __init__(self, reason: str = ""):
        super().__init__(
            f"request cancelled{f': {reason}' if reason else ''}"
        )


class ReplicaUnavailable(ServingError):
    """Raised when a replica's connection pool refuses new sessions.

    The fleet fault injector marks a replica *crashed* for a window; its
    pool raises this from ``acquire`` so in-flight requests fail fast
    instead of computing against a dead member. Classified
    ``"transient"`` — the crash window ends, and the router's
    :class:`~repro.sharding.replica.ReplicaHealth` machine decides when
    to probe the member again.
    """

    def __init__(self, member: str = "", detail: str = ""):
        self.member = member
        message = "replica refuses new sessions"
        if member:
            message = f"replica {member} refuses new sessions"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class CircuitOpen(ServingError):
    """Raised when a plan's circuit breaker refuses evaluation.

    After ``threshold`` consecutive compile/eval failures the breaker
    *opens* and requests for that plan fingerprint short-circuit here
    (typically into the degraded-stale fallback) until the cooldown
    elapses and a half-open trial is allowed.
    """

    def __init__(self, key: str, retry_after_ms: float = 0.0):
        self.key = key
        self.retry_after_ms = retry_after_ms
        super().__init__(
            f"circuit breaker open for plan {key[:16]} "
            f"(retry after {retry_after_ms:.0f}ms)"
        )


#: Substrings of ``sqlite3.OperationalError`` messages that mark a
#: failure as transient: the statement may well succeed on retry once
#: the lock holder finishes or the I/O hiccup passes.
TRANSIENT_SQLITE_MARKERS = (
    "database is locked",
    "database table is locked",
    "database is busy",
    "disk i/o error",
    "locking protocol",
    "interrupted",
)


#: Driver-supplied exception classifiers (``fn(exc) -> category|None``),
#: registered by backends whose exception types this module cannot know
#: statically (e.g. duckdb). Consulted by :func:`classify_error` for
#: every exception in the cause/context chain. The sqlite taxonomy is
#: built in below so the default backend never depends on registration
#: order.
_DRIVER_CLASSIFIERS: list = []


def register_driver_classifier(fn) -> None:
    """Register a backend's exception classifier (idempotent)."""
    if fn not in _DRIVER_CLASSIFIERS:
        _DRIVER_CLASSIFIERS.append(fn)


def classify_error(exc: BaseException) -> str:
    """Classify an exception for the retry policy.

    Returns one of:

    * ``"deadline"`` — a :class:`DeadlineExceeded`; never retried (the
      time budget is gone by definition).
    * ``"rejected"`` — a :class:`RequestRejected` or
      :class:`CircuitOpen`; never retried (backpressure signals).
    * ``"cancelled"`` — a :class:`RequestCancelled`; never retried and
      never degraded (the caller abandoned the attempt on purpose —
      hedged-request losers land here).
    * ``"transient"`` — a busy/locked/disk-I/O style
      ``sqlite3.OperationalError`` (possibly wrapped in a
      :class:`ViewEvaluationError` — the cause chain is walked), a
      driver-registered transient (e.g. a DuckDB interrupt), or a
      :class:`ReplicaUnavailable` crash-window refusal; worth a retry
      with backoff.
    * ``"permanent"`` — everything else (syntax errors, missing tables,
      wrong-shape results, logic bugs); retrying cannot help.

    Non-default backends register their taxonomy through
    :func:`register_driver_classifier`; a driver classifier may return
    ``"transient"`` or ``"permanent"`` to settle an exception it
    recognizes, or ``None`` to let the walk continue.
    """
    import sqlite3

    seen = set()
    current: BaseException | None = exc
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        if isinstance(current, DeadlineExceeded):
            return "deadline"
        if isinstance(current, RequestCancelled):
            return "cancelled"
        if isinstance(current, (RequestRejected, CircuitOpen)):
            return "rejected"
        if isinstance(current, ReplicaUnavailable):
            return "transient"
        if isinstance(current, sqlite3.OperationalError):
            message = str(current).lower()
            if any(marker in message for marker in TRANSIENT_SQLITE_MARKERS):
                return "transient"
        for classifier in _DRIVER_CLASSIFIERS:
            verdict = classifier(current)
            if verdict is not None:
                return verdict
        current = current.__cause__ or current.__context__
    return "permanent"

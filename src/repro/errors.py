"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
applications can catch a single base class. Sub-hierarchies mirror the
package layout: XML parsing, XPath, SQL, schema-tree views, XSLT, and the
view-composition algorithm itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class XMLError(ReproError):
    """Base class for XML substrate errors."""


class XMLParseError(XMLError):
    """Raised when XML input is not well-formed.

    Attributes:
        line: 1-based line of the offending input position.
        column: 1-based column of the offending input position.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class XPathError(ReproError):
    """Base class for XPath substrate errors."""


class XPathSyntaxError(XPathError):
    """Raised when an XPath expression or pattern cannot be parsed."""

    def __init__(self, message: str, expression: str = "", position: int = -1):
        self.expression = expression
        self.position = position
        if expression:
            message = f"{message} in {expression!r}"
            if position >= 0:
                message = f"{message} at offset {position}"
        super().__init__(message)


class XPathEvaluationError(XPathError):
    """Raised when an XPath expression fails during evaluation."""


class SQLError(ReproError):
    """Base class for SQL substrate errors."""


class SQLSyntaxError(SQLError):
    """Raised when a tag query cannot be parsed by the SQL-subset parser."""

    def __init__(self, message: str, sql: str = "", position: int = -1):
        self.sql = sql
        self.position = position
        if sql:
            snippet = sql if len(sql) <= 80 else sql[:77] + "..."
            message = f"{message} in {snippet!r}"
            if position >= 0:
                message = f"{message} at offset {position}"
        super().__init__(message)


class SQLTransformError(SQLError):
    """Raised when an AST transformation (unbinding, inlining) fails."""


class SchemaError(ReproError):
    """Raised for relational catalog problems (unknown table/column, ...)."""


class ViewError(ReproError):
    """Base class for schema-tree view errors."""


class ViewDefinitionError(ViewError):
    """Raised when a schema-tree query definition is malformed."""


class ViewEvaluationError(ViewError):
    """Raised when materializing a view against a database fails."""


class XSLTError(ReproError):
    """Base class for XSLT substrate errors."""


class StylesheetParseError(XSLTError):
    """Raised when a stylesheet document does not describe a valid stylesheet."""


class XSLTRuntimeError(XSLTError):
    """Raised when the XSLT interpreter fails while processing a document."""


class ConflictError(XSLTError):
    """Raised when conflicting template rules cannot be resolved."""


class CompositionError(ReproError):
    """Base class for failures of the view-composition algorithm."""


class UnsupportedFeatureError(CompositionError):
    """Raised when a stylesheet uses a feature outside the composable dialect.

    The offending feature name is recorded so callers (for example the
    hybrid executor) can decide how to fall back.
    """

    def __init__(self, feature: str, detail: str = ""):
        self.feature = feature
        message = f"unsupported feature for composition: {feature}"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)


class UnificationError(CompositionError):
    """Raised when COMBINE cannot unify select and match tree patterns."""

"""Resilience policy: deadlines, retry/backoff, breaker and queue knobs.

One :class:`ResiliencePolicy` travels with a
:class:`~repro.serving.server.ViewServer` and answers four questions
per request:

* **How long may it run?** ``deadline_ms`` starts a :class:`Deadline`
  that is checked cooperatively at query boundaries (the engine's
  ``cancel_check`` hook) and enforced hard by a
  ``sqlite3.Connection.interrupt`` timer for statements that outlive
  it.
* **How often may it retry?** ``retries`` transient attempts (as
  classified by :func:`repro.errors.classify_error`), spaced by
  exponential backoff with full jitter
  (``min(backoff_max_ms, backoff_base_ms * 2**attempt)`` scaled by a
  uniform draw) — the AWS-style schedule that avoids retry
  synchronization across workers.
* **When does it stop trying at all?** ``breaker_threshold``
  consecutive failures open a per-plan-fingerprint
  :class:`~repro.resilience.breaker.CircuitBreaker`.
* **When is it refused up front?** ``queue_limit`` bounds admission:
  more than ``workers + queue_limit`` requests in flight and new ones
  are shed with a ``rejected`` trace outcome.

``degraded=True`` (the default) lets a failing or breaker-open request
fall back to the last-known-good cached response, marked
``degraded-stale`` — except under the ``strict`` staleness policy,
which by definition never serves stale bytes silently: strict + breaker
open (or any exhausted failure) is an error.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import DeadlineExceeded, ReproError, RequestCancelled


@dataclass(frozen=True)
class ResiliencePolicy:
    """Per-server failure-handling configuration (immutable)."""

    #: Request deadline in milliseconds (``None`` = unbounded).
    deadline_ms: Optional[float] = None
    #: Max *additional* attempts after the first, for transient errors.
    retries: int = 0
    #: Base backoff before the first retry, milliseconds.
    backoff_base_ms: float = 5.0
    #: Ceiling on any single backoff sleep, milliseconds.
    backoff_max_ms: float = 100.0
    #: Consecutive compile/eval failures that open a plan's breaker
    #: (0 disables circuit breaking).
    breaker_threshold: int = 0
    #: How long an open breaker waits before allowing a half-open trial.
    breaker_cooldown_ms: float = 1000.0
    #: Concurrent trial probes admitted while a circuit is half-open.
    #: 1 is the classic single-trial behaviour; a larger budget lets a
    #: busy plan re-close faster without a full thundering herd.
    breaker_half_open_max: int = 1
    #: Requests admitted beyond the worker count before shedding
    #: (``None`` = unbounded queue, the pre-resilience behaviour).
    queue_limit: Optional[int] = None
    #: Serve the last-known-good cached response (``degraded-stale``)
    #: when computation fails or the breaker is open. Never applies
    #: under the ``strict`` staleness policy.
    degraded: bool = True

    def __post_init__(self) -> None:
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ReproError(
                f"deadline_ms must be > 0, got {self.deadline_ms}"
            )
        if self.retries < 0:
            raise ReproError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_base_ms < 0 or self.backoff_max_ms < 0:
            raise ReproError("backoff values must be >= 0")
        if self.breaker_threshold < 0:
            raise ReproError(
                f"breaker_threshold must be >= 0, got {self.breaker_threshold}"
            )
        if self.breaker_cooldown_ms <= 0:
            raise ReproError(
                f"breaker_cooldown_ms must be > 0, "
                f"got {self.breaker_cooldown_ms}"
            )
        if self.breaker_half_open_max < 1:
            raise ReproError(
                f"breaker_half_open_max must be >= 1, "
                f"got {self.breaker_half_open_max}"
            )
        if self.queue_limit is not None and self.queue_limit < 0:
            raise ReproError(
                f"queue_limit must be >= 0, got {self.queue_limit}"
            )

    def backoff_ms(
        self, attempt: int, rng: Optional[random.Random] = None
    ) -> float:
        """Backoff before retry ``attempt`` (1-based): capped exp + jitter."""
        ceiling = min(
            self.backoff_max_ms,
            self.backoff_base_ms * (2 ** max(0, attempt - 1)),
        )
        draw = (rng or random).uniform(0.0, 1.0)
        return ceiling * draw

    def describe(self) -> str:
        """Compact text form for metrics and reports."""
        parts = []
        if self.deadline_ms is not None:
            parts.append(f"deadline={self.deadline_ms:g}ms")
        parts.append(f"retries={self.retries}")
        if self.breaker_threshold:
            parts.append(
                f"breaker={self.breaker_threshold}"
                f"/{self.breaker_cooldown_ms:g}ms"
            )
        if self.queue_limit is not None:
            parts.append(f"queue={self.queue_limit}")
        parts.append("degraded" if self.degraded else "no-degraded")
        return " ".join(parts)


class CancelToken:
    """A thread-safe cooperative cancellation handle.

    The async front end hands one to each serving attempt it may later
    abandon (the losing half of a hedged request pair). Cancellation is
    observed at the same points as deadlines — the engine's
    ``cancel_check`` hook at query boundaries via
    :meth:`Deadline.check` — and, for statements already running,
    through callbacks registered with :meth:`on_cancel` (the serving
    layer registers the borrowed connection's ``interrupt``).
    """

    __slots__ = ("_lock", "_cancelled", "_reason", "_callbacks")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cancelled = False
        self._reason = ""
        self._callbacks: list[Callable[[], None]] = []

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled

    @property
    def reason(self) -> str:
        """The reason passed to :meth:`cancel` (empty until then)."""
        return self._reason

    def cancel(self, reason: str = "") -> bool:
        """Cancel the attempt; fires registered callbacks exactly once.

        Returns ``True`` on the first call, ``False`` if already
        cancelled. Callbacks run outside the lock and must not raise
        (failures are swallowed — cancellation is best-effort beyond
        the cooperative check).
        """
        with self._lock:
            if self._cancelled:
                return False
            self._cancelled = True
            self._reason = reason
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            try:
                callback()
            except Exception:
                pass
        return True

    def on_cancel(self, callback: Callable[[], None]) -> None:
        """Register ``callback`` to fire on cancel (immediately if past)."""
        with self._lock:
            if not self._cancelled:
                self._callbacks.append(callback)
                return
        try:
            callback()
        except Exception:
            pass

    def remove_callback(self, callback: Callable[[], None]) -> None:
        """Deregister a callback registered with :meth:`on_cancel`."""
        with self._lock:
            try:
                self._callbacks.remove(callback)
            except ValueError:
                pass

    def check(self) -> None:
        """Cooperative cancellation point: raise once cancelled."""
        if self._cancelled:
            raise RequestCancelled(self._reason)


class Deadline:
    """A monotonic time budget with cooperative check points.

    ``Deadline.start(None)`` returns an unbounded deadline whose checks
    are free no-ops, so callers never branch on "is there a deadline".
    An optional :class:`CancelToken` rides along: every deadline check
    point doubles as a cancellation check point, so the serving layer's
    existing cooperative-cancellation plumbing (the engine's
    ``cancel_check`` hook) observes both without new call sites.
    """

    __slots__ = ("budget_ms", "token", "_started", "_clock")

    def __init__(
        self,
        budget_ms: Optional[float],
        clock=time.monotonic,
        token: Optional[CancelToken] = None,
    ):
        self.budget_ms = budget_ms
        self.token = token
        self._clock = clock
        self._started = clock()

    @classmethod
    def start(
        cls,
        budget_ms: Optional[float],
        clock=time.monotonic,
        token: Optional[CancelToken] = None,
    ):
        """Begin a deadline now; ``None`` budget means unbounded."""
        return cls(budget_ms, clock, token=token)

    def elapsed_ms(self) -> float:
        """Milliseconds since the deadline started."""
        return (self._clock() - self._started) * 1000.0

    def remaining_ms(self) -> Optional[float]:
        """Milliseconds left (never negative); ``None`` when unbounded."""
        if self.budget_ms is None:
            return None
        return max(0.0, self.budget_ms - self.elapsed_ms())

    @property
    def expired(self) -> bool:
        """Whether the budget is spent."""
        return self.budget_ms is not None and self.remaining_ms() == 0.0

    def check(self) -> None:
        """Cooperative cancellation point: raise once the budget is spent.

        This is what the serving layer installs as the engine's
        ``cancel_check`` hook — every query boundary (and, through the
        evaluators' row loops issuing child queries, effectively every
        row boundary) passes through it. A cancelled token raises
        :class:`~repro.errors.RequestCancelled` first: an abandoned
        attempt stops even when its time budget is still healthy.
        """
        if self.token is not None:
            self.token.check()
        if self.expired:
            raise DeadlineExceeded(self.budget_ms, self.elapsed_ms())

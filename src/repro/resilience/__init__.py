"""Resilient serving: fault injection, deadlines, retries, breakers.

The composed-view serving stack (:mod:`repro.serving`) turns one
request into many SQL queries — which multiplies the surface for
partial failure. This package makes the server *bounded and
predictable* under that failure:

* :mod:`repro.resilience.faults` — a seeded, deterministic
  fault-injection layer (:class:`FaultPlan` / :class:`FaultyEngine`)
  that drills transient errors, latency, wrong-shape results, and
  compile failures into pooled engine sessions.
* :mod:`repro.resilience.policy` — :class:`ResiliencePolicy` (per-
  request deadlines, retry-with-backoff+jitter, breaker and admission
  knobs) and :class:`Deadline` (cooperative cancellation the engine
  checks at query boundaries, backed by a hard
  ``sqlite3.Connection.interrupt`` timer).
* :mod:`repro.resilience.breaker` — a per-plan-fingerprint
  :class:`CircuitBreaker` (closed / open / half-open) living on the
  :class:`~repro.serving.plan_cache.PlanCache`.

Failure classification lives in :func:`repro.errors.classify_error`;
the degraded-stale fallback (serve the last-known-good
:class:`~repro.maintenance.result_cache.ResultCache` entry when
computation fails) is wired in
:class:`~repro.serving.server.ViewServer`. Experiment E16
(``python -m repro.harness --e16-json`` and
``python -m repro serve-bench --faults``) sweeps fault rate × policy
and gates on availability (success + degraded).
"""

from repro.resilience.breaker import BREAKER_STATES, CircuitBreaker
from repro.resilience.faults import (
    FLEET_FAULT_KINDS,
    TRANSIENT_MESSAGES,
    FaultPlan,
    FaultSpec,
    FaultyEngine,
    FleetFaultPlan,
    FleetFaultSpec,
)
from repro.resilience.policy import CancelToken, Deadline, ResiliencePolicy

__all__ = [
    "BREAKER_STATES",
    "CancelToken",
    "CircuitBreaker",
    "Deadline",
    "FLEET_FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "FaultyEngine",
    "FleetFaultPlan",
    "FleetFaultSpec",
    "ResiliencePolicy",
    "TRANSIENT_MESSAGES",
]

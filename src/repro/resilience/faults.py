"""Deterministic fault injection for the serving stack.

The paper's execution model multiplies one XSLT evaluation into many
parameterized SQL queries, so a production server faces *partial*
failure: one busy database, one slow tag query, one driver returning a
wrong-shape result. This module makes those failures reproducible:

* :class:`FaultSpec` — what to inject and how often: transient
  ``sqlite3.OperationalError``\\ s (busy / locked / disk I/O), added
  per-query latency, wrong-shape results (a column silently dropped),
  and compile-time failures.
* :class:`FaultPlan` — *where* and *when*. Decisions are a pure
  function of ``(seed, site, per-site call index)``: the plan keeps one
  counter per site (a base-table name, ``"compile"``, or ``"query"``)
  and hashes the triple, so a given seed produces the same fault
  sequence at every site regardless of thread interleaving *between*
  sites. ``every_n`` sites fire deterministically on each Nth call
  instead of at a rate.
* :class:`FaultyEngine` — a transparent wrapper around a
  :class:`~repro.relational.engine.Database` that consults the plan on
  every :meth:`~repro.relational.engine.Database.run_query`. The
  connection pool wraps each pooled session when constructed with a
  plan, so evaluators exercise faults without knowing about them.

Injected errors are *real* ``sqlite3.OperationalError`` instances with
the stock messages, so the error taxonomy
(:func:`repro.errors.classify_error`) treats injected and genuine
faults identically — which is the point: the resilience policy under
test cannot tell the drill from the fire.
"""

from __future__ import annotations

import hashlib
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.sql.analysis import referenced_tables
from repro.sql.ast import Select

#: Messages injected ``error`` faults rotate through — all classified
#: transient by :func:`repro.errors.classify_error`.
TRANSIENT_MESSAGES = (
    "database is locked",
    "database table is locked: main",
    "disk I/O error",
)


@dataclass(frozen=True)
class FaultSpec:
    """Rates and shapes of the faults a :class:`FaultPlan` injects.

    All rates are per *injection site check* (one query execution or
    one plan compile) in ``[0, 1]``. Checks are ordered: latency first
    (a slow query can still fail), then error, then wrong-shape on the
    returned rows. ``tables`` restricts query-site faults to the named
    base tables; ``every_n`` replaces the error-rate draw with a
    deterministic "every Nth call at this site fails".
    """

    #: Probability a query raises a transient ``OperationalError``.
    error_rate: float = 0.0
    #: Probability a query sleeps ``latency_ms`` before executing.
    latency_rate: float = 0.0
    #: Injected latency per latency fault, milliseconds.
    latency_ms: float = 20.0
    #: Probability a query's rows come back with a column dropped.
    wrong_shape_rate: float = 0.0
    #: Probability a plan compile raises (site ``"compile"``).
    compile_error_rate: float = 0.0
    #: Restrict query-site faults to these base tables (``None`` = all).
    tables: Optional[frozenset[str]] = None
    #: If > 0, inject an error on every Nth call per site instead of
    #: (in addition to never) drawing against ``error_rate``.
    every_n: int = 0

    def __post_init__(self) -> None:
        for name in ("error_rate", "latency_rate", "wrong_shape_rate",
                     "compile_error_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.latency_ms < 0:
            raise ValueError(f"latency_ms must be >= 0, got {self.latency_ms}")
        if self.every_n < 0:
            raise ValueError(f"every_n must be >= 0, got {self.every_n}")


class FaultPlan:
    """Seeded, site-addressed fault schedule shared by a whole server.

    Thread-safe: per-site counters advance under a lock, and each
    decision depends only on ``(seed, site, counter)`` — hashed through
    blake2s into a uniform float — so two runs with the same seed and
    the same per-site call sequence inject the same faults.

    :meth:`disarm` / :meth:`arm` gate injection without resetting the
    counters; benchmarks warm caches with the plan disarmed, then arm it
    for the measured (chaotic) phase.
    """

    def __init__(self, spec: FaultSpec, seed: int = 0, enabled: bool = True):
        self.spec = spec
        self.seed = seed
        self.enabled = enabled
        self._lock = threading.Lock()
        self._site_calls: dict[str, int] = {}
        self._injected = {
            "error": 0, "latency": 0, "wrong-shape": 0, "compile-error": 0,
        }

    # -- schedule ------------------------------------------------------------

    def arm(self) -> None:
        """Enable injection (counters keep running either way)."""
        self.enabled = True

    def disarm(self) -> None:
        """Disable injection; checks still advance the per-site counters."""
        self.enabled = False

    def _draw(self, site: str, index: int, kind: str) -> float:
        digest = hashlib.blake2s(
            f"{self.seed}:{site}:{index}:{kind}".encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") / float(1 << 64)

    def _advance(self, site: str) -> int:
        with self._lock:
            index = self._site_calls.get(site, 0)
            self._site_calls[site] = index + 1
            return index

    def _count(self, kind: str) -> None:
        with self._lock:
            self._injected[kind] += 1

    # -- injection sites -----------------------------------------------------

    def check_query(self, site: str) -> Optional[str]:
        """One query-site check; returns the fault kind to inject, if any.

        Latency faults are applied *here* (the sleep happens inside the
        check so every caller gets identical behaviour); ``"error"`` and
        ``"wrong-shape"`` are returned for the caller to act on.
        """
        index = self._advance(site)
        if not self.enabled:
            return None
        spec = self.spec
        if spec.tables is not None and site not in spec.tables:
            return None
        if spec.latency_rate and (
            self._draw(site, index, "latency") < spec.latency_rate
        ):
            self._count("latency")
            time.sleep(spec.latency_ms / 1000.0)
        nth = spec.every_n and (index + 1) % spec.every_n == 0
        if nth or (
            spec.error_rate
            and self._draw(site, index, "error") < spec.error_rate
        ):
            self._count("error")
            return "error"
        if spec.wrong_shape_rate and (
            self._draw(site, index, "shape") < spec.wrong_shape_rate
        ):
            self._count("wrong-shape")
            return "wrong-shape"
        return None

    def check_compile(self, key: str) -> None:
        """One compile-site check; raises on an injected compile failure."""
        index = self._advance("compile")
        if not self.enabled:
            return
        if self.spec.compile_error_rate and (
            self._draw("compile", index, "compile")
            < self.spec.compile_error_rate
        ):
            self._count("compile-error")
            raise sqlite3.OperationalError(
                f"injected compile failure for plan {key[:16]}"
            )

    def error_for(self, site: str) -> sqlite3.OperationalError:
        """The transient error an ``"error"`` fault at ``site`` raises."""
        with self._lock:
            # Rotate messages by total errors injected so far.
            cursor = self._injected["error"]
        message = TRANSIENT_MESSAGES[cursor % len(TRANSIENT_MESSAGES)]
        return sqlite3.OperationalError(message)

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        """Injection counters plus total site checks (one snapshot)."""
        with self._lock:
            return {
                "seed": self.seed,
                "enabled": self.enabled,
                "checks": sum(self._site_calls.values()),
                "injected": dict(self._injected),
            }


#: Fleet-scoped fault kinds a :class:`FleetFaultPlan` can schedule.
#: ``replica-crash`` makes a replica's pool refuse new sessions,
#: ``apply-stall`` freezes a replica's catch-up loop so its lag grows,
#: ``partition`` makes the primary writable but unreadable from the
#: router (asymmetric partition).
FLEET_FAULT_KINDS = ("replica-crash", "apply-stall", "partition")


@dataclass(frozen=True)
class FleetFaultSpec:
    """Rates and granularity of fleet-scoped (whole-member) faults.

    Unlike :class:`FaultSpec`, whose faults are per query, fleet faults
    afflict a *member* for a stretch of time: decisions are drawn per
    ``window`` consecutive checks at a site, so a crashed replica stays
    crashed for a whole window rather than flickering per call. Kinds
    are member-role aware by construction: crash and stall only ever
    hit replicas, partition only ever hits the primary.
    """

    #: Probability a replica's window is a crash window (pool refuses).
    crash_rate: float = 0.0
    #: Probability a replica's window is an apply-stall window.
    stall_rate: float = 0.0
    #: Probability a primary's window is a read-partition window.
    partition_rate: float = 0.0
    #: Consecutive checks per site that share one fault decision.
    window: int = 8

    def __post_init__(self) -> None:
        for name in ("crash_rate", "stall_rate", "partition_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")

    def rate_for(self, kind: str) -> float:
        """The configured window rate for ``kind`` (ValueError if unknown)."""
        if kind == "replica-crash":
            return self.crash_rate
        if kind == "apply-stall":
            return self.stall_rate
        if kind == "partition":
            return self.partition_rate
        raise ValueError(f"unknown fleet fault kind {kind!r}")


class FleetFaultPlan:
    """Seeded, member-addressed schedule of whole-member faults.

    Mirrors :class:`FaultPlan`'s determinism contract: each check at a
    ``(shard, member, kind)`` site advances a per-site counter, the
    counter's window index is hashed through blake2s with the seed, and
    the draw decides whether the *whole window* is faulted. Same seed +
    same per-site call sequence ⇒ same crash/stall/partition schedule,
    regardless of thread interleaving between sites.
    """

    def __init__(self, spec: FleetFaultSpec, seed: int = 0,
                 enabled: bool = True):
        self.spec = spec
        self.seed = seed
        self.enabled = enabled
        self._lock = threading.Lock()
        self._site_calls: dict[str, int] = {}
        self._injected = {kind: 0 for kind in FLEET_FAULT_KINDS}

    @classmethod
    def for_kind(cls, kind: str, rate: float = 0.5, seed: int = 0,
                 window: int = 8) -> "FleetFaultPlan":
        """A plan injecting only ``kind`` at ``rate`` (CLI convenience)."""
        if kind not in FLEET_FAULT_KINDS:
            raise ValueError(
                f"unknown fleet fault kind {kind!r}; "
                f"expected one of {FLEET_FAULT_KINDS}"
            )
        rates = {
            "replica-crash": {"crash_rate": rate},
            "apply-stall": {"stall_rate": rate},
            "partition": {"partition_rate": rate},
        }[kind]
        return cls(FleetFaultSpec(window=window, **rates), seed=seed)

    def arm(self) -> None:
        """Enable injection (counters keep running either way)."""
        self.enabled = True

    def disarm(self) -> None:
        """Disable injection; checks still advance the per-site counters."""
        self.enabled = False

    def active(self, kind: str, shard: int, member: str) -> bool:
        """One check: is ``kind`` afflicting ``member`` of ``shard`` now?

        Role targeting is structural: crash/stall checks on the primary
        and partition checks on replicas are always ``False`` (and do
        not advance counters) — the fault sites the tentpole names are
        replica crash, replica apply-stall, and primary read-partition.
        """
        if kind not in FLEET_FAULT_KINDS:
            raise ValueError(f"unknown fleet fault kind {kind!r}")
        is_primary = member == "primary"
        if kind == "partition":
            if not is_primary:
                return False
        elif is_primary:
            return False
        site = f"shard{shard}:{member}:{kind}"
        with self._lock:
            index = self._site_calls.get(site, 0)
            self._site_calls[site] = index + 1
        if not self.enabled:
            return False
        rate = self.spec.rate_for(kind)
        if not rate:
            return False
        window = index // self.spec.window
        digest = hashlib.blake2s(
            f"{self.seed}:{site}:{window}:{kind}".encode(), digest_size=8
        ).digest()
        hit = int.from_bytes(digest, "big") / float(1 << 64) < rate
        if hit:
            with self._lock:
                self._injected[kind] += 1
        return hit

    def stats(self) -> dict:
        """Injection counters plus total site checks (one snapshot)."""
        with self._lock:
            return {
                "seed": self.seed,
                "enabled": self.enabled,
                "checks": sum(self._site_calls.values()),
                "injected": dict(self._injected),
            }


@dataclass
class _SiteMemo:
    """Per-engine memo from query identity to its fault site name."""

    sites: dict[int, tuple[str, Select]] = field(default_factory=dict)

    def site_for(self, query: Select) -> str:
        key = id(query)
        cached = self.sites.get(key)
        if cached is not None and cached[1] is query:
            return cached[0]
        tables = referenced_tables(query)
        site = tables[0] if tables else "query"
        self.sites[key] = (site, query)
        return site


class FaultyEngine:
    """A :class:`~repro.relational.engine.Database` wrapper that injects.

    Overrides :meth:`run_query` to consult the :class:`FaultPlan` at the
    query's site (its first referenced base table); everything else —
    ``stats``, ``connection``, ``catalog``, ``close`` — delegates to the
    wrapped engine, so pools, evaluators, and the delta path use it
    unchanged. The wrapper honours the engine's cooperative
    ``cancel_check`` hook *before* injecting latency, so a deadline is
    never blown inside an injected sleep that cancellation should have
    skipped.
    """

    def __init__(self, db, plan: FaultPlan):
        self._db = db
        self._plan = plan
        self._memo = _SiteMemo()
        self.cancel_check = None

    def run_query(self, query: Select, env: Optional[Mapping[str, Any]] = None):
        """Run ``query`` through the wrapped engine, consulting the
        fault plan first: the deadline's ``cancel_check`` fires before
        any injection, an injected error still counts the query as
        executed (the engine did the doomed work), and a wrong-shape
        fault drops one column from otherwise-correct rows."""
        if self.cancel_check is not None:
            self.cancel_check()
        site = self._memo.site_for(query)
        fault = self._plan.check_query(site)
        if fault == "error":
            # Count the doomed query so work accounting reflects the
            # attempt, mirroring a real driver-level failure.
            self._db.stats.record(0)
            raise self._plan.error_for(site)
        rows = self._db.run_query(query, env)
        if fault == "wrong-shape" and rows:
            doomed = next(iter(rows[0]))
            rows = [
                {k: v for k, v in row.items() if k != doomed} for row in rows
            ]
        return rows

    @property
    def wrapped(self):
        """The underlying engine (tests reach through for assertions)."""
        return self._db

    def __getattr__(self, name: str):
        return getattr(self._db, name)

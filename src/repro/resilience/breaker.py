"""Per-fingerprint circuit breaker for compiled publishing plans.

A plan that keeps failing — a poisoned compile, a tag query over a
dropped table, a pathological input — should stop consuming worker
time and pool connections on every request. :class:`CircuitBreaker`
tracks *consecutive* failures per plan fingerprint and walks the
classic three-state machine:

* **closed** — requests flow; ``threshold`` consecutive failures open
  the circuit (a success at any point resets the count).
* **open** — requests short-circuit immediately (the server falls back
  to a degraded-stale response or errors) until ``cooldown_ms``
  elapses.
* **half-open** — after the cooldown, up to ``half_open_max``
  concurrent trial probes are admitted (further requests keep
  short-circuiting until a trial resolves); the first success closes
  the circuit, the first failure re-opens it and restarts the
  cooldown.

One breaker instance guards all keys (it lives on the
:class:`~repro.serving.plan_cache.PlanCache`, which already speaks
plan fingerprints); state per key is a few counters, created lazily.
All transitions happen under one lock and are counted, so
``metrics()`` can report exact open/close/half-open totals. The clock
is injectable for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

#: Breaker states, in reporting order.
BREAKER_STATES = ("closed", "open", "half-open")


class _Circuit:
    """Mutable per-key state (guarded by the registry lock)."""

    __slots__ = ("state", "consecutive_failures", "opened_at", "trials")

    def __init__(self) -> None:
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_at = 0.0
        #: Half-open trial probes currently in flight (admitted by
        #: :meth:`CircuitBreaker.allow`, resolved by the next
        #: ``record_success``/``record_failure`` for the key).
        self.trials = 0


class CircuitBreaker:
    """Registry of per-key circuits with shared threshold and cooldown."""

    def __init__(
        self,
        threshold: int,
        cooldown_ms: float = 1000.0,
        clock: Callable[[], float] = time.monotonic,
        half_open_max: int = 1,
    ):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown_ms <= 0:
            raise ValueError(f"cooldown_ms must be > 0, got {cooldown_ms}")
        if half_open_max < 1:
            raise ValueError(
                f"half_open_max must be >= 1, got {half_open_max}"
            )
        self.threshold = threshold
        self.cooldown_ms = cooldown_ms
        self.half_open_max = half_open_max
        self._clock = clock
        self._lock = threading.Lock()
        self._circuits: dict[str, _Circuit] = {}
        self.opened = 0
        self.closed = 0
        self.half_opened = 0
        self.short_circuits = 0

    def _circuit(self, key: str) -> _Circuit:
        circuit = self._circuits.get(key)
        if circuit is None:
            circuit = self._circuits[key] = _Circuit()
        return circuit

    # -- request gating ------------------------------------------------------

    def allow(self, key: str) -> bool:
        """Whether a request for ``key`` may attempt computation now.

        Open circuits refuse (counted as a short-circuit) until the
        cooldown elapses, at which point the circuit half-opens and
        admits up to ``half_open_max`` concurrent trial probes (any
        further request short-circuits until a probe resolves). The
        check itself has no outcome to report — callers must follow up
        with :meth:`record_success` or :meth:`record_failure` after the
        attempt, and the first failed trial re-opens the circuit
        (restarting the cooldown) while the first success closes it.
        """
        with self._lock:
            circuit = self._circuits.get(key)
            if circuit is None or circuit.state == "closed":
                return True
            if circuit.state == "half-open":
                if circuit.trials < self.half_open_max:
                    circuit.trials += 1
                    return True
                self.short_circuits += 1
                return False
            elapsed_ms = (self._clock() - circuit.opened_at) * 1000.0
            if elapsed_ms < self.cooldown_ms:
                self.short_circuits += 1
                return False
            circuit.state = "half-open"
            circuit.trials = 1
            self.half_opened += 1
            return True

    def retry_after_ms(self, key: str) -> float:
        """Cooldown remaining before ``key`` half-opens (0 when closed)."""
        with self._lock:
            circuit = self._circuits.get(key)
            if circuit is None or circuit.state != "open":
                return 0.0
            elapsed_ms = (self._clock() - circuit.opened_at) * 1000.0
            return max(0.0, self.cooldown_ms - elapsed_ms)

    # -- outcome recording ---------------------------------------------------

    def record_success(self, key: str) -> None:
        """A compile/eval attempt for ``key`` succeeded."""
        with self._lock:
            circuit = self._circuits.get(key)
            if circuit is None:
                return
            if circuit.state == "half-open" and circuit.trials > 0:
                circuit.trials -= 1
            if circuit.state != "closed":
                self.closed += 1
            circuit.state = "closed"
            circuit.consecutive_failures = 0
            circuit.trials = 0

    def record_failure(self, key: str) -> None:
        """A compile/eval attempt for ``key`` failed."""
        with self._lock:
            circuit = self._circuit(key)
            circuit.consecutive_failures += 1
            if circuit.state == "half-open" and circuit.trials > 0:
                circuit.trials -= 1
            if circuit.state == "half-open" or (
                circuit.state == "closed"
                and circuit.consecutive_failures >= self.threshold
            ):
                circuit.state = "open"
                circuit.opened_at = self._clock()
                circuit.trials = 0
                self.opened += 1

    # -- introspection -------------------------------------------------------

    def state(self, key: str) -> str:
        """Current state of ``key``'s circuit (``closed`` if untracked)."""
        with self._lock:
            circuit = self._circuits.get(key)
            return circuit.state if circuit is not None else "closed"

    def stats(self) -> dict:
        """Transition totals plus a histogram of current circuit states."""
        with self._lock:
            histogram = {state: 0 for state in BREAKER_STATES}
            for circuit in self._circuits.values():
                histogram[circuit.state] += 1
            return {
                "threshold": self.threshold,
                "cooldown_ms": self.cooldown_ms,
                "half_open_max": self.half_open_max,
                "half_open_trials": sum(
                    c.trials for c in self._circuits.values()
                ),
                "opened": self.opened,
                "closed": self.closed,
                "half_opened": self.half_opened,
                "short_circuits": self.short_circuits,
                "states": histogram,
            }

"""E15: incremental (delta) maintenance vs full recomputation.

Measures the two maintenance modes on the shared scale-8 hotel
database under a strict policy with a write before every batch: the
``full`` mode re-runs the whole compiled plan on every staleness, the
``delta`` mode re-executes only the dirty schema nodes and splices them
into the captured document. A leaf-heavy write mix (three
``availability`` updates per ``hotel`` update) keeps the dirty frontier
small — the regime the delta path targets. The raw delta primitive
(one :class:`~repro.maintenance.DeltaEvaluator` pass outside the
server) is benchmarked alongside. The full mode x write-rate sweep
lives in ``python -m repro.harness --e15-json``.
"""

import pytest

from repro.core.compose import compose
from repro.core.optimize import prune_stylesheet_view
from repro.maintenance import DeltaEvaluator, WriteTracker, hotel_write
from repro.schema_tree.bulk_evaluator import BulkViewEvaluator
from repro.serving import PublishRequest, ViewServer
from repro.serving.fingerprint import node_read_sets
from repro.workloads.paper import figure1_view, figure4_stylesheet

REQUESTS = 10
WRITE_MIX = ("availability", "availability", "availability", "hotel")


def _batch(db, strategy="nested-loop"):
    view = figure1_view(db.catalog)
    stylesheet = figure4_stylesheet()
    return [
        PublishRequest(view, stylesheet, strategy=strategy)
        for _ in range(REQUESTS)
    ]


@pytest.mark.parametrize("maintenance", ["full", "delta"])
def test_e15_stale_batch_by_maintenance_mode(benchmark, serving_db, maintenance):
    """One write lands before every batch; the first stale request per
    round pays either a full re-evaluation or a delta splice."""
    benchmark.group = "E15 incremental maintenance (10-request batch)"
    tracker = WriteTracker()
    serving_db.attach_tracker(tracker)
    batch = _batch(serving_db)
    step = [0]
    with ViewServer(
        serving_db.catalog,
        source=serving_db,
        workers=4,
        keep_xml=False,
        tracker=tracker,
        staleness="strict",
        maintenance=maintenance,
    ) as server:
        server.render_many(batch)

        def round_with_write():
            hotel_write(serving_db, step[0], tracker, mix=WRITE_MIX)
            step[0] += 1
            server.render_many(batch)

        benchmark(round_with_write)


def test_e15_delta_evaluator_single_pass(benchmark, serving_db):
    """The delta primitive alone: one availability write, one splice."""
    benchmark.group = "E15 primitives"
    from repro.maintenance import MaterializedState

    target = compose(
        figure1_view(serving_db.catalog),
        figure4_stylesheet(),
        serving_db.catalog,
    )
    prune_stylesheet_view(target, serving_db.catalog)
    reads = node_read_sets(target)
    capture = {}
    document = BulkViewEvaluator(
        serving_db, capture_instances=capture
    ).materialize(target)
    holder = [MaterializedState(document, capture)]
    step = [0]

    def one_delta():
        hotel_write(serving_db, step[0], mix=("availability",))
        step[0] += 1
        result = DeltaEvaluator(serving_db).evaluate(
            target, holder[0], reads, ["availability"]
        )
        holder[0] = result.state

    benchmark(one_delta)


def test_e15_full_reevaluation_single_pass(benchmark, serving_db):
    """The cost the delta primitive replaces: one full bulk run."""
    benchmark.group = "E15 primitives"
    target = compose(
        figure1_view(serving_db.catalog),
        figure4_stylesheet(),
        serving_db.catalog,
    )
    prune_stylesheet_view(target, serving_db.catalog)
    step = [0]

    def one_full():
        hotel_write(serving_db, step[0], mix=("availability",))
        step[0] += 1
        BulkViewEvaluator(serving_db).materialize(target)

    benchmark(one_full)

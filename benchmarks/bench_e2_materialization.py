"""E2: the materialization saving — Figure 4 over the Figure 1 view.

Times both pipelines on the full paper workload (Figure 4 uses the
parent axis, so QTree cannot participate here) and asserts the central
claim: the composed view materializes strictly fewer elements.
"""

from repro.baseline.materialize import NaivePipeline
from repro.core.compose import compose
from repro.schema_tree.evaluator import ViewEvaluator
from repro.workloads.paper import figure4_stylesheet


def test_e2_naive_figure4(benchmark, hotel_db, paper_view):
    pipeline = NaivePipeline(paper_view, figure4_stylesheet())
    benchmark.group = "E2 materialization"
    result = benchmark(pipeline.run, hotel_db)
    assert result.elements_materialized > 0


def test_e2_composed_figure4(benchmark, hotel_db, paper_view):
    composed = compose(paper_view, figure4_stylesheet(), hotel_db.catalog)
    benchmark.group = "E2 materialization"

    def run():
        evaluator = ViewEvaluator(hotel_db)
        evaluator.materialize(composed)
        return evaluator.stats.elements_created

    composed_elements = benchmark(run)
    naive = NaivePipeline(paper_view, figure4_stylesheet()).run(hotel_db)
    assert composed_elements < naive.elements_materialized

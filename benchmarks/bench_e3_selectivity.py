"""E3: selectivity — a stylesheet touching 1 of 16 branches.

The composed view only queries the touched branch; the naive pipeline
materializes all 16 regardless. Expected shape: composed wins by roughly
the untouched fraction.
"""

import pytest

from repro.baseline.materialize import NaivePipeline
from repro.core.compose import compose
from repro.relational.engine import Database
from repro.schema_tree.evaluator import ViewEvaluator
from repro.workloads.synthetic import (
    fanout_catalog,
    fanout_stylesheet,
    fanout_view,
    populate_fanout,
)

BRANCHES = 16


@pytest.fixture(scope="module")
def fanout_db():
    catalog = fanout_catalog(BRANCHES)
    db = Database(catalog)
    populate_fanout(db, BRANCHES, roots=5, rows_per_branch=50)
    yield db
    db.close()


@pytest.fixture(scope="module")
def view(fanout_db):
    return fanout_view(BRANCHES, fanout_db.catalog)


def test_e3_naive_touch_one(benchmark, fanout_db, view):
    stylesheet = fanout_stylesheet(BRANCHES, touched=1)
    benchmark.group = "E3 selectivity (1/16 branches)"
    benchmark(NaivePipeline(view, stylesheet).run, fanout_db)


def test_e3_composed_touch_one(benchmark, fanout_db, view):
    stylesheet = fanout_stylesheet(BRANCHES, touched=1)
    composed = compose(view, stylesheet, fanout_db.catalog)
    benchmark.group = "E3 selectivity (1/16 branches)"
    benchmark(lambda: ViewEvaluator(fanout_db).materialize(composed))


def test_e3_naive_touch_all(benchmark, fanout_db, view):
    stylesheet = fanout_stylesheet(BRANCHES, touched=BRANCHES)
    benchmark.group = "E3 selectivity (16/16 branches)"
    benchmark(NaivePipeline(view, stylesheet).run, fanout_db)


def test_e3_composed_touch_all(benchmark, fanout_db, view):
    stylesheet = fanout_stylesheet(BRANCHES, touched=BRANCHES)
    composed = compose(view, stylesheet, fanout_db.catalog)
    benchmark.group = "E3 selectivity (16/16 branches)"
    benchmark(lambda: ViewEvaluator(fanout_db).materialize(composed))

"""E17: row/block delta pushdown and fragment byte-cache serving.

Measures the fragment-serving stack on the shared scale-8 hotel
database against the delta and full maintenance modes, under the two
entity-local write mixes the techniques target: a single-hotel
``confroom`` capacity write (block pushdown: re-aggregate one hotel's
and one metro's confstat blocks, share everything else) and a
single-hotel ``pool`` flip (row pushdown: re-fetch one row). The raw
block-splice primitive (one :class:`~repro.maintenance.DeltaEvaluator`
pass with tracked row detail, outside the server) is benchmarked
alongside its node-level cost. The full ratio sweep and the mismatch
gate live in ``python -m repro.harness --e17-json``.
"""

import pytest

from repro.maintenance import (
    DeltaEvaluator,
    MaterializedState,
    WriteTracker,
    hotel_conference_write,
    hotel_payload_write,
)
from repro.schema_tree.bulk_evaluator import BulkViewEvaluator
from repro.serving import PublishRequest, ViewServer
from repro.serving.fingerprint import node_read_sets
from repro.workloads.paper import figure1_view

REQUESTS = 10

CONFIGS = [
    ("full", None),
    ("delta", None),
    ("fragment", "all"),
    ("fragment", "auto"),
]


def _batch(db):
    # The raw Figure 1 view: the composed stylesheet views concentrate
    # reads into one top node, which hides per-fragment structure.
    view = figure1_view(db.catalog)
    return view, [
        PublishRequest(view, None, strategy="bulk") for _ in range(REQUESTS)
    ]


@pytest.mark.parametrize("maintenance,policy", CONFIGS)
def test_e17_leaf_write_batch_by_config(
    benchmark, serving_db, maintenance, policy
):
    """One tracked confroom-capacity write lands before every batch; the
    first stale request per round pays the maintenance mode's price —
    block splice plus span-splice serialization on the fragment path."""
    benchmark.group = "E17 fragment serving (10-request batch, leaf write)"
    tracker = WriteTracker()
    serving_db.attach_tracker(tracker)
    view, batch = _batch(serving_db)
    step = [0]
    with ViewServer(
        serving_db.catalog,
        source=serving_db,
        workers=1,
        keep_xml=False,
        tracker=tracker,
        staleness="strict",
        maintenance=maintenance,
        fragment_policy=policy,
    ) as server:
        server.render_many(batch)
        for _ in range(8):  # let the auto policy converge before timing
            hotel_conference_write(serving_db, step[0], tracker, hotels=1)
            step[0] += 1
            server.render_many(batch)

        def round_with_write():
            hotel_conference_write(serving_db, step[0], tracker, hotels=1)
            step[0] += 1
            server.render_many(batch)

        benchmark(round_with_write)


def test_e17_block_splice_single_pass(benchmark, serving_db):
    """The block primitive alone: one hotel's confrooms change, two
    aggregate blocks (hotel + metro confstat) re-evaluate."""
    benchmark.group = "E17 primitives"
    view = figure1_view(serving_db.catalog)
    reads = node_read_sets(view)
    tracker = WriteTracker()
    capture = {}
    document = BulkViewEvaluator(
        serving_db, capture_instances=capture
    ).materialize(view)
    holder = [MaterializedState(document, capture)]
    step = [0]

    def one_block_delta():
        stamped = tracker.snapshot()
        hotel_conference_write(serving_db, step[0], tracker, hotels=1)
        step[0] += 1
        changes = tracker.changes_since(stamped, ("confroom",))
        result = DeltaEvaluator(serving_db).evaluate(
            view, holder[0], reads, tuple(changes), changes=changes
        )
        holder[0] = result.state
        assert result.blocks_spliced == 2

    benchmark(one_block_delta)


def test_e17_node_level_single_pass(benchmark, serving_db):
    """The cost the block primitive replaces: the same write with the
    row detail withheld, forcing node-level re-evaluation."""
    benchmark.group = "E17 primitives"
    view = figure1_view(serving_db.catalog)
    reads = node_read_sets(view)
    capture = {}
    document = BulkViewEvaluator(
        serving_db, capture_instances=capture
    ).materialize(view)
    holder = [MaterializedState(document, capture)]
    step = [0]

    def one_node_delta():
        hotel_conference_write(serving_db, step[0], tracker=None, hotels=1)
        step[0] += 1
        result = DeltaEvaluator(serving_db).evaluate(
            view, holder[0], reads, ("confroom",)
        )
        holder[0] = result.state

    benchmark(one_node_delta)


def test_e17_row_splice_single_pass(benchmark, serving_db):
    """The row primitive alone: one pool flip, one row re-fetched."""
    benchmark.group = "E17 primitives"
    view = figure1_view(serving_db.catalog)
    reads = node_read_sets(view)
    tracker = WriteTracker()
    capture = {}
    document = BulkViewEvaluator(
        serving_db, capture_instances=capture
    ).materialize(view)
    holder = [MaterializedState(document, capture)]
    step = [0]

    def one_row_delta():
        stamped = tracker.snapshot()
        hotel_payload_write(serving_db, step[0], tracker, rows=1)
        step[0] += 1
        changes = tracker.changes_since(stamped, ("hotel",))
        result = DeltaEvaluator(serving_db).evaluate(
            view, holder[0], reads, tuple(changes), changes=changes
        )
        holder[0] = result.state
        assert result.rows_spliced == 1

    benchmark(one_row_delta)

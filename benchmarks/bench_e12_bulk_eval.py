"""E12: bulk decorrelated evaluation vs nested-loop vs memoized.

The bulk strategy executes one decorrelated query per schema node (seven
for the Figure 1 view, three for the Figure 4 composed view) instead of
one query per parent binding, then stitches the flat row streams back
into the tree with a grouped merge. The full scale sweep lives in
``python -m repro.harness --e12-json``.
"""

import pytest

from repro.schema_tree.bulk_evaluator import BulkViewEvaluator
from repro.schema_tree.evaluator import ViewEvaluator
from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.workloads.paper import figure1_view, figure4_stylesheet


@pytest.fixture(scope="module")
def e12_db():
    """A larger instance than ``dense_hotel_db`` so per-binding query
    overheads dominate the nested-loop baseline, as in the E12 sweep."""
    db = build_hotel_database(HotelDataSpec().scaled(16))
    yield db
    db.close()


def test_e12_figure1_nested_loop(benchmark, e12_db):
    view = figure1_view(e12_db.catalog)
    benchmark.group = "E12 bulk evaluation (figure 1)"
    benchmark(lambda: ViewEvaluator(e12_db).materialize(view))


def test_e12_figure1_memoized(benchmark, e12_db):
    view = figure1_view(e12_db.catalog)
    benchmark.group = "E12 bulk evaluation (figure 1)"
    benchmark(lambda: ViewEvaluator(e12_db, memoize=True).materialize(view))


def test_e12_figure1_bulk(benchmark, e12_db):
    view = figure1_view(e12_db.catalog)
    benchmark.group = "E12 bulk evaluation (figure 1)"
    benchmark(lambda: BulkViewEvaluator(e12_db).materialize(view))


def test_e12_composed_nested_loop(benchmark, e12_db):
    from repro.core.compose import compose

    view = compose(
        figure1_view(e12_db.catalog), figure4_stylesheet(), e12_db.catalog
    )
    benchmark.group = "E12 bulk evaluation (composed)"
    benchmark(lambda: ViewEvaluator(e12_db).materialize(view))


def test_e12_composed_bulk(benchmark, e12_db):
    from repro.core.compose import compose

    view = compose(
        figure1_view(e12_db.catalog), figure4_stylesheet(), e12_db.catalog
    )
    benchmark.group = "E12 bulk evaluation (composed)"
    benchmark(lambda: BulkViewEvaluator(e12_db).materialize(view))

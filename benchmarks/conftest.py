"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one experiment of EXPERIMENTS.md at a fixed,
benchmark-friendly scale; the full sweeps live in
``python -m repro.harness``.
"""

from __future__ import annotations

import pytest

from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.workloads.paper import figure1_view


@pytest.fixture(scope="session")
def hotel_db():
    db = build_hotel_database(HotelDataSpec().scaled(4))
    yield db
    db.close()


@pytest.fixture(scope="session")
def dense_hotel_db():
    db = build_hotel_database(
        HotelDataSpec(
            metros=2, hotels_per_metro=4,
            guestrooms_per_hotel=10, availability_per_room=6,
        )
    )
    yield db
    db.close()


@pytest.fixture(scope="session")
def paper_view(hotel_db):
    return figure1_view(hotel_db.catalog)


@pytest.fixture(scope="session")
def serving_db():
    """Scale-8 hotel database shared by the serving benchmarks (E13/E14).

    Opened ``cross_thread=True`` so the update-aware benchmarks can
    write to it from the benchmark thread while server workers
    re-snapshot it; E14 write mutations (``hotel_write``) only toggle
    values in place, so the database stays benchmark-comparable across
    tests.
    """
    db = build_hotel_database(HotelDataSpec().scaled(8), cross_thread=True)
    yield db
    db.close()

"""E13: concurrent serving with the compiled-plan cache.

Measures the ``ViewServer`` request path: a warm batch (plans cached,
requests only execute SQL and build XML) against a cold batch (plan
cache and fingerprint memo cleared per request, so every request pays
compose + prune + print), and the plan-cache lookup itself. The full
workers x strategy sweep lives in ``python -m repro.harness --e13-json``.
"""

import pytest

from repro.serving import (
    PublishRequest,
    ViewServer,
    clear_fingerprint_memo,
)
from repro.workloads.paper import figure1_view, figure4_stylesheet

REQUESTS = 10


@pytest.fixture(scope="module")
def e13_db(serving_db):
    """The shared scale-8 serving database (see ``conftest.serving_db``)."""
    return serving_db


def _batch(db, strategy):
    view = figure1_view(db.catalog)
    stylesheet = figure4_stylesheet()
    return [
        PublishRequest(view, stylesheet, strategy=strategy)
        for _ in range(REQUESTS)
    ]


@pytest.mark.parametrize("strategy", ["nested-loop", "bulk"])
def test_e13_warm_concurrent(benchmark, e13_db, strategy):
    batch = _batch(e13_db, strategy)
    benchmark.group = "E13 serving (10-request batch)"
    with ViewServer(
        e13_db.catalog, source=e13_db, workers=4, keep_xml=False
    ) as server:
        server.submit(batch[0]).result()  # prime the plan cache
        benchmark(lambda: server.render_many(batch))


def test_e13_cold_single_worker(benchmark, e13_db):
    batch = _batch(e13_db, "nested-loop")
    benchmark.group = "E13 serving (10-request batch)"

    with ViewServer(
        e13_db.catalog, source=e13_db, workers=1, keep_xml=False
    ) as server:

        def cold_batch():
            for request in batch:
                server.plan_cache.clear()
                clear_fingerprint_memo()
                server.submit(request).result()

        benchmark(cold_batch)


def test_e13_plan_cache_hit(benchmark, e13_db):
    with ViewServer(
        e13_db.catalog, source=e13_db, workers=1, keep_xml=False
    ) as server:
        request = _batch(e13_db, "nested-loop")[0]
        server.submit(request).result()
        key = server.plan_key_for(request)
        benchmark.group = "E13 plan cache"
        benchmark(lambda: server.plan_cache.get(key))

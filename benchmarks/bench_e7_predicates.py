"""E7: predicate pushdown (§5.1) — the Figure 17 stylesheet."""

from repro.baseline.materialize import NaivePipeline
from repro.core.compose import compose
from repro.schema_tree.evaluator import ViewEvaluator
from repro.workloads.paper import figure17_stylesheet


def test_e7_naive_figure17(benchmark, hotel_db, paper_view):
    benchmark.group = "E7 predicate pushdown"
    benchmark(NaivePipeline(paper_view, figure17_stylesheet()).run, hotel_db)


def test_e7_composed_figure17(benchmark, hotel_db, paper_view):
    composed = compose(paper_view, figure17_stylesheet(), hotel_db.catalog)
    benchmark.group = "E7 predicate pushdown"
    benchmark(lambda: ViewEvaluator(hotel_db).materialize(composed))

"""E20: engine backends — the same publish, engine swapped underneath.

Times the full publish path (materialize + serialize) for the Figure 1
raw view and the Figure 4 composition on every registered backend,
through the same :class:`~repro.relational.driver.EngineDriver` seam
the serving stack uses. Backends whose module is not installed skip.
The update-aware sweep with byte gates lives in
``python -m repro.harness --e20-json`` — here the database is static
and the numbers isolate per-engine query cost.
"""

import pytest

from repro.core.compose import compose
from repro.core.optimize import prune_stylesheet_view
from repro.errors import DriverUnavailableError
from repro.relational.driver import BACKEND_NAMES, resolve_driver
from repro.schema_tree.evaluator import materialize
from repro.workloads.hotel import HotelDataSpec, build_hotel_database
from repro.workloads.paper import figure1_view, figure4_stylesheet
from repro.xmlcore.serializer import serialize


@pytest.fixture(scope="module", params=list(BACKEND_NAMES))
def backend_db(request):
    try:
        driver = resolve_driver(request.param)
    except DriverUnavailableError as exc:
        pytest.skip(str(exc))
    db = build_hotel_database(
        HotelDataSpec().scaled(4), seed=2003, driver=driver,
    )
    yield db
    db.close()


def test_e20_figure1_publish(benchmark, backend_db):
    view = figure1_view(backend_db.catalog)
    benchmark.group = "E20 backends: figure1 publish"
    xml = benchmark(lambda: serialize(materialize(view, backend_db)))
    assert xml.startswith("<")


def test_e20_figure4_publish(benchmark, backend_db):
    composed = compose(
        figure1_view(backend_db.catalog),
        figure4_stylesheet(),
        backend_db.catalog,
    )
    prune_stylesheet_view(composed, backend_db.catalog)
    benchmark.group = "E20 backends: figure4 publish"
    xml = benchmark(lambda: serialize(materialize(composed, backend_db)))
    assert xml.startswith("<")

"""E16: resilient serving under deterministic fault injection.

Measures what the resilience stack costs and what it buys on the
shared scale-8 hotel database. A seeded
:class:`~repro.resilience.FaultPlan` injects transient sqlite errors
into pooled queries while writes force recomputation past the
staleness bound; the policy run (retries + breaker + degraded-stale
fallback) is benchmarked against a no-policy run on the same fault
schedule, plus two primitives: the per-query tax of a *disarmed* fault
wrapper, and one breaker allow/record cycle. The fault-rate x policy
availability sweep lives in ``python -m repro.harness --e16-json``.
"""

import pytest

from repro.maintenance import WriteTracker, hotel_write
from repro.resilience import CircuitBreaker, FaultPlan, FaultSpec, ResiliencePolicy
from repro.serving import PublishRequest, ViewServer
from repro.workloads.paper import figure1_view, figure4_stylesheet

REQUESTS = 10
FAULT_SEED = 7
POLICY = ResiliencePolicy(
    deadline_ms=5000.0,
    retries=3,
    backoff_base_ms=1.0,
    backoff_max_ms=10.0,
    breaker_threshold=8,
    breaker_cooldown_ms=100.0,
)


def _batch(db, strategy="nested-loop"):
    view = figure1_view(db.catalog)
    stylesheet = figure4_stylesheet()
    return [
        PublishRequest(view, stylesheet, strategy=strategy)
        for _ in range(REQUESTS)
    ]


@pytest.mark.parametrize(
    "config", ["baseline", "resilient"], ids=["no-policy", "policy"]
)
def test_e16_faulty_stale_batch_by_policy(benchmark, serving_db, config):
    """One write lands before every batch, forcing recomputation through
    a 10% transient-error fault plan; the policy run retries/degrades
    where the baseline errors."""
    benchmark.group = "E16 resilience (10-request faulty batch)"
    tracker = WriteTracker()
    serving_db.attach_tracker(tracker)
    batch = _batch(serving_db)
    faults = FaultPlan(
        FaultSpec(error_rate=0.1), seed=FAULT_SEED, enabled=False
    )
    step = [0]
    with ViewServer(
        serving_db.catalog,
        source=serving_db,
        workers=4,
        keep_xml=False,
        tracker=tracker,
        staleness="bounded:2",
        resilience=POLICY if config == "resilient" else None,
        faults=faults,
    ) as server:
        server.render_many(batch)  # warm: compile + last-known-good entry
        faults.arm()

        def round_with_write():
            for _ in range(3):  # outrun the bounded:2 staleness window
                hotel_write(
                    serving_db, step[0], tracker, mix=("availability",)
                )
                step[0] += 1
            server.render_many(batch)

        benchmark(round_with_write)
        assert server.pool.outstanding() == 0


def test_e16_disarmed_fault_wrapper_tax(benchmark, serving_db):
    """The steady-state cost of carrying the fault layer: a fully warm
    cached batch served through FaultyEngine-wrapped sessions with the
    plan disarmed (every check runs, nothing injects)."""
    benchmark.group = "E16 primitives"
    tracker = WriteTracker()
    serving_db.attach_tracker(tracker)
    batch = _batch(serving_db)
    faults = FaultPlan(FaultSpec(error_rate=0.5), seed=FAULT_SEED)
    faults.disarm()
    with ViewServer(
        serving_db.catalog,
        source=serving_db,
        workers=4,
        keep_xml=False,
        tracker=tracker,
        staleness="bounded:1000000",
        resilience=POLICY,
        faults=faults,
    ) as server:
        server.render_many(batch)
        benchmark(server.render_many, batch)


def test_e16_breaker_allow_record_cycle(benchmark):
    """One closed-circuit gate + success record, the per-request tax
    every breaker-guarded computation pays."""
    benchmark.group = "E16 primitives"
    breaker = CircuitBreaker(threshold=5, cooldown_ms=100.0)

    def cycle():
        assert breaker.allow("plan-key")
        breaker.record_success("plan-key")

    benchmark(cycle)

"""E10 (ablation): memoized vs nested-loop view evaluation.

The memoizing evaluator shares tag-query executions between contexts
whose parameter values coincide (e.g. metro_available repeated per
hotel_available with the same startdate).
"""

from repro.schema_tree.evaluator import ViewEvaluator


def test_e10_nested_loop(benchmark, dense_hotel_db, ):
    from repro.workloads.paper import figure1_view

    view = figure1_view(dense_hotel_db.catalog)
    benchmark.group = "E10 evaluation memoization"
    benchmark(lambda: ViewEvaluator(dense_hotel_db).materialize(view))


def test_e10_memoized(benchmark, dense_hotel_db):
    from repro.workloads.paper import figure1_view

    view = figure1_view(dense_hotel_db.catalog)
    benchmark.group = "E10 evaluation memoization"
    benchmark(
        lambda: ViewEvaluator(dense_hotel_db, memoize=True).materialize(view)
    )

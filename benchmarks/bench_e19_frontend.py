"""E19: the async HTTP front door.

Measures the cost layers the front end stacks on the serving pool: the
asyncio facade bridge alone (``submit`` via ``wrap_future``), then the
full socket path (HTTP parse, dispatch, keep-alive reuse) for a
single-connection batch. The hedging/priority sweeps with fault
injection live in ``python -m repro.harness --e19-json`` — here the
server is healthy and the numbers isolate per-request overhead.
"""

import asyncio
import json

import pytest

from repro.frontend import build_hotel_app, serve_app

REQUESTS = 6


@pytest.fixture(scope="module")
def app():
    application = build_hotel_app(scale=1, workers=2)
    yield application
    asyncio.run(application.close())


def test_e19_facade_submit_batch(benchmark, app):
    """The asyncio bridge alone: submit -> thread pool -> wrap_future."""
    benchmark.group = "E19 front end (6-request batch)"
    request = app.request_for("figure4", "bulk")

    async def batch():
        for _ in range(REQUESTS):
            trace = await app.facade.submit(request)
            assert trace.outcome == "success"

    benchmark(lambda: asyncio.run(batch()))


def test_e19_http_keep_alive_batch(benchmark, app):
    """The whole front door: socket, HTTP parse, dispatch, keep-alive."""
    benchmark.group = "E19 front end (6-request batch)"
    body = json.dumps({"view": "figure4", "strategy": "bulk"}).encode()
    payload = (
        f"POST /publish HTTP/1.1\r\nHost: bench\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode() + body

    async def batch():
        server = await serve_app(app)
        try:
            reader, writer = await asyncio.open_connection(*server.address)
            for _ in range(REQUESTS):
                writer.write(payload)
                await writer.drain()
                head = await reader.readuntil(b"\r\n\r\n")
                status = int(head.split(b" ", 2)[1])
                assert status == 200
                length = int(
                    head.lower().split(b"content-length:")[1].split(b"\r\n")[0]
                )
                await reader.readexactly(length)
            writer.close()
            await writer.wait_closed()
        finally:
            await server.drain(timeout=5.0)

    benchmark(lambda: asyncio.run(batch()))

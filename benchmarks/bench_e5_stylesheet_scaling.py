"""E5: composition time vs stylesheet size on a fixed 24-level view."""

import pytest

from repro.core.compose import compose
from repro.workloads.synthetic import chain_catalog, chain_stylesheet, chain_view

LEVELS = 24


@pytest.fixture(scope="module")
def fixed():
    catalog = chain_catalog(LEVELS)
    return catalog, chain_view(LEVELS, catalog)


@pytest.mark.parametrize("depth", [4, 12, 24])
def test_e5_compose_stylesheet_depth(benchmark, fixed, depth):
    catalog, view = fixed
    stylesheet = chain_stylesheet(LEVELS, selected_levels=depth)
    benchmark.group = "E5 composition vs stylesheet size"
    benchmark.extra_info["rules"] = stylesheet.size()
    benchmark(compose, view, stylesheet, catalog)

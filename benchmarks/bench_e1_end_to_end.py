"""E1: end-to-end latency — Composed vs Naive vs QTree.

Regenerates the E1 table of EXPERIMENTS.md at scale factor 4. The
expected shape: composed beats naive by several x; QTree is fast but
produces the wrong (leaf-only) output.
"""

import pytest

from repro.baseline.materialize import NaivePipeline
from repro.baseline.qtree import QTreeTranslator
from repro.core.compose import compose
from repro.schema_tree.evaluator import ViewEvaluator
from repro.workloads.paper import qtree_compatible_stylesheet


@pytest.fixture(scope="module")
def stylesheet():
    return qtree_compatible_stylesheet()


def test_e1_naive(benchmark, hotel_db, paper_view, stylesheet):
    pipeline = NaivePipeline(paper_view, stylesheet)
    benchmark.group = "E1 end-to-end"
    benchmark(pipeline.run, hotel_db)


def test_e1_composed(benchmark, hotel_db, paper_view, stylesheet):
    composed = compose(paper_view, stylesheet, hotel_db.catalog)
    benchmark.group = "E1 end-to-end"

    def run():
        return ViewEvaluator(hotel_db).materialize(composed)

    benchmark(run)


def test_e1_composed_including_composition(benchmark, hotel_db, paper_view, stylesheet):
    benchmark.group = "E1 end-to-end"

    def run():
        composed = compose(paper_view, stylesheet, hotel_db.catalog)
        return ViewEvaluator(hotel_db).materialize(composed)

    benchmark(run)


def test_e1_qtree(benchmark, hotel_db, paper_view, stylesheet):
    translator = QTreeTranslator(paper_view, stylesheet, hotel_db.catalog)
    benchmark.group = "E1 end-to-end"
    benchmark(translator.run, hotel_db)

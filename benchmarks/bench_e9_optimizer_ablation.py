"""E9 (ablation): dead-column elimination on composed views.

Compares evaluating the raw composed view (carrying every ancestor
column, the paper's TEMP.* shape) against the pruned view.
"""

import pytest

from repro.core.compose import compose
from repro.core.optimize import prune_stylesheet_view
from repro.schema_tree.evaluator import ViewEvaluator
from repro.workloads.paper import figure4_stylesheet


@pytest.fixture(scope="module")
def composed_views(hotel_db, paper_view):
    raw = compose(paper_view, figure4_stylesheet(), hotel_db.catalog)
    pruned = compose(paper_view, figure4_stylesheet(), hotel_db.catalog)
    report = prune_stylesheet_view(pruned, hotel_db.catalog)
    assert report.columns_removed > 0
    return raw, pruned


def test_e9_composed_raw(benchmark, hotel_db, composed_views):
    raw, _pruned = composed_views
    benchmark.group = "E9 dead-column elimination"
    benchmark(lambda: ViewEvaluator(hotel_db).materialize(raw))


def test_e9_composed_pruned(benchmark, hotel_db, composed_views):
    _raw, pruned = composed_views
    benchmark.group = "E9 dead-column elimination"
    benchmark(lambda: ViewEvaluator(hotel_db).materialize(pruned))

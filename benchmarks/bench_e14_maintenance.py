"""E14: update-aware serving under writes.

Measures the maintenance layer's serving-path costs on the shared
scale-8 hotel database: a batch served entirely from the result cache
(hits), the same batch under strict freshness with a write before every
round (every request recomputes over re-synced data), the same under
bounded staleness (cached bytes keep flowing), and the raw
result-cache/tracker primitives. The full policy x write-rate sweep
lives in ``python -m repro.harness --e14-json``.
"""

import pytest

from repro.maintenance import (
    ResultCache,
    StalenessPolicy,
    WriteTracker,
    hotel_write,
)
from repro.serving import PublishRequest, ViewServer
from repro.workloads.paper import figure1_view, figure4_stylesheet

REQUESTS = 10


def _batch(db, strategy="nested-loop"):
    view = figure1_view(db.catalog)
    stylesheet = figure4_stylesheet()
    return [
        PublishRequest(view, stylesheet, strategy=strategy)
        for _ in range(REQUESTS)
    ]


def _tracked_server(db, tracker, staleness):
    return ViewServer(
        db.catalog,
        source=db,
        workers=4,
        keep_xml=False,
        tracker=tracker,
        staleness=staleness,
    )


def test_e14_result_cache_hits(benchmark, serving_db):
    """No writes: after the first batch every request is a cached hit."""
    benchmark.group = "E14 maintenance (10-request batch)"
    tracker = WriteTracker()
    serving_db.attach_tracker(tracker)
    batch = _batch(serving_db)
    with _tracked_server(serving_db, tracker, "strict") as server:
        server.render_many(batch)  # prime plan + result caches
        benchmark(lambda: server.render_many(batch))


@pytest.mark.parametrize(
    "staleness", ["strict", "bounded:64"], ids=["strict", "bounded"]
)
def test_e14_batch_with_write_per_round(benchmark, serving_db, staleness):
    """One write lands before every batch: strict recomputes everything
    (pool re-sync + full evaluation), bounded keeps serving cached bytes."""
    benchmark.group = "E14 maintenance (10-request batch)"
    tracker = WriteTracker()
    serving_db.attach_tracker(tracker)
    batch = _batch(serving_db)
    step = [0]
    with _tracked_server(serving_db, tracker, staleness) as server:
        server.render_many(batch)

        def round_with_write():
            hotel_write(serving_db, step[0], tracker)
            step[0] += 1
            server.render_many(batch)

        benchmark(round_with_write)


def test_e14_result_cache_lookup(benchmark):
    """The per-request freshness check: one lookup against a live vector."""
    benchmark.group = "E14 primitives"
    cache = ResultCache()
    tables = ("availability", "confroom", "guestroom", "hotel", "metroarea")
    versions = {table: 10 for table in tables}
    cache.store("plan:bulk", "<xml/>" * 100, versions, tables)
    policy = StalenessPolicy.bounded(4)
    live = dict(versions, hotel=12)
    benchmark(lambda: cache.lookup("plan:bulk", live, policy))


def test_e14_tracker_record_write(benchmark):
    benchmark.group = "E14 primitives"
    tracker = WriteTracker()
    benchmark(lambda: tracker.record_write("hotel"))

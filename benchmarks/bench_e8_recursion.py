"""E8: recursion partial pushdown (§5.3) vs full interpretation."""

import pytest

from repro.core.hybrid import HybridExecutor
from repro.schema_tree.evaluator import ViewEvaluator
from repro.workloads.paper import figure1_view
from repro.xslt.parser import parse_stylesheet
from repro.xslt.processor import XSLTProcessor

RECURSIVE = """
<xsl:template match="/metro">
  <xsl:param name="idx" select="5"/>
  <result_metro>
    <xsl:apply-templates select="hotel/hotel_available[@COUNT_a_id&gt;10]/metro_available[@COUNT_a_id&gt;$idx]">
      <xsl:with-param name="idx" select="$idx"/>
    </xsl:apply-templates>
  </result_metro>
</xsl:template>

<xsl:template match="metro_available">
  <xsl:param name="idx"/>
  <xsl:choose>
    <xsl:when test="$idx&lt;=1"><xsl:value-of select="."/></xsl:when>
    <xsl:otherwise>
      <result_metroavail>
        <xsl:apply-templates select="self::[@COUNT_a_id&gt;50]/../../..">
          <xsl:with-param name="idx" select="$idx - 1"/>
        </xsl:apply-templates>
      </result_metroavail>
    </xsl:otherwise>
  </xsl:choose>
</xsl:template>
"""


@pytest.fixture(scope="module")
def workload(dense_hotel_db):
    view = figure1_view(dense_hotel_db.catalog)
    stylesheet = parse_stylesheet(RECURSIVE)
    return view, stylesheet


def test_e8_naive_recursive(benchmark, dense_hotel_db, workload):
    view, stylesheet = workload
    processor = XSLTProcessor(stylesheet, builtin_rules="standard")
    benchmark.group = "E8 recursion"

    def run():
        doc = ViewEvaluator(dense_hotel_db).materialize(view)
        return processor.process_document(doc)

    benchmark(run)


def test_e8_hybrid_recursive(benchmark, dense_hotel_db, workload):
    view, stylesheet = workload
    executor = HybridExecutor(
        view, stylesheet, dense_hotel_db.catalog,
        fallback_builtin_rules="standard",
    )
    assert executor.plan.kind == "recursive"
    benchmark.group = "E8 recursion"
    benchmark(executor.execute, dense_hotel_db)

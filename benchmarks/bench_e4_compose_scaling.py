"""E4: composition time vs view size (the polynomial claim of §4.5)."""

import pytest

from repro.core.compose import compose
from repro.workloads.synthetic import chain_catalog, chain_stylesheet, chain_view


@pytest.mark.parametrize("levels", [4, 8, 16, 32])
def test_e4_compose_chain(benchmark, levels):
    catalog = chain_catalog(levels)
    view = chain_view(levels, catalog)
    stylesheet = chain_stylesheet(levels)
    benchmark.group = "E4 composition vs view size"
    benchmark.extra_info["view_nodes"] = view.size()
    composed = benchmark(compose, view, stylesheet, catalog)
    assert composed.size() >= levels

"""E6: the multi-incoming-edge blowup (§4.2.2) — TVQ size doubles per level."""

import pytest

from repro.core.ctg import build_ctg
from repro.core.tvq import build_tvq
from repro.workloads.synthetic import blowup_stylesheet, chain_catalog, chain_view


@pytest.mark.parametrize("levels", [4, 8, 12])
def test_e6_blowup_unfolding(benchmark, levels):
    catalog = chain_catalog(levels)
    view = chain_view(levels, catalog)
    stylesheet = blowup_stylesheet(levels)
    ctg = build_ctg(view, stylesheet)
    benchmark.group = "E6 TVQ blowup"
    benchmark.extra_info["expected_tvq_nodes"] = 2 ** (levels + 1) - 1
    tvq = benchmark(build_tvq, ctg, catalog, 1_000_000)
    assert tvq.size() == 2 ** (levels + 1) - 1

"""E21: replica-aware fleet resilience.

Measures the request path of a replicated fleet on the shared scale-8
hotel database: a steady all-hit batch over a 1-shard/2-replica set
(reads rotate across caught-up members), the same batch with
replica-crash windows armed (the router's fault gate skips crashed
replicas and the pool admission hook refuses stragglers), and the raw
replica catch-up primitive (primary write events replayed into a
replica's tracker lineage). The fault-kind x replica-count sweep and
the availability / byte / anti-affinity gates live in
``python -m repro.harness --e21-json``.
"""

import pytest

from repro.maintenance.tracker import WriteTracker
from repro.maintenance.workload import hotel_metro_write
from repro.resilience import FleetFaultPlan, FleetFaultSpec
from repro.sharding import ReplicaApplier, ShardRouter
from repro.workloads.hotel import hotel_partition_scheme
from repro.workloads.paper import figure1_view

REQUESTS = 6
REPLICAS = 2


def _request(view):
    from repro.serving import PublishRequest

    return PublishRequest(view, strategy="bulk")


@pytest.fixture(scope="module")
def replica_fleet(serving_db):
    """A 1-shard, 2-replica set over the shared scale-8 database."""
    router = ShardRouter.build(
        serving_db.catalog,
        serving_db,
        hotel_partition_scheme(),
        1,
        replicas=REPLICAS,
        workers=2,
        staleness="strict",
        maintenance="full",
    )
    yield serving_db, router
    router.close()


@pytest.fixture(scope="module")
def crashing_fleet(serving_db):
    """The same replica set with replica-crash windows armed."""
    plan = FleetFaultPlan(
        FleetFaultSpec(crash_rate=0.5, window=4), seed=21
    )
    router = ShardRouter.build(
        serving_db.catalog,
        serving_db,
        hotel_partition_scheme(),
        1,
        replicas=REPLICAS,
        workers=2,
        staleness="strict",
        maintenance="full",
        fleet_faults=plan,
    )
    yield serving_db, router
    router.close()


def test_e21_replicated_all_hit_batch(benchmark, replica_fleet):
    """Steady state: reads rotate across three caught-up members,
    every one serving from its result cache."""
    db, router = replica_fleet
    view = figure1_view(db.catalog)
    benchmark.group = "E21 replicated serving (6-request batch)"
    router.render(view, strategy="bulk")  # prime caches on all members
    benchmark(
        lambda: router.render_many([_request(view) for _ in range(REQUESTS)])
    )


def test_e21_replica_crash_batch(benchmark, crashing_fleet):
    """The same batch under crash windows: the candidate gate skips
    crashed replicas, survivors absorb the traffic."""
    db, router = crashing_fleet
    view = figure1_view(db.catalog)
    benchmark.group = "E21 replicated serving (6-request batch)"
    router.render(view, strategy="bulk")
    benchmark(
        lambda: router.render_many([_request(view) for _ in range(REQUESTS)])
    )


def test_e21_replica_catch_up(benchmark, serving_db):
    """The raw catch-up primitive: a burst of metro-local writes on the
    primary tracker, replayed event-for-event into the replica's own
    lineage by the (synchronous, zero-delay) applier."""
    domain = [
        row["metroid"]
        for row in serving_db.run_sql(
            "SELECT metroid FROM metroarea ORDER BY metroid", {}
        )
    ]
    step = [0]

    def write_burst():
        primary = WriteTracker()
        replica = WriteTracker()
        applier = ReplicaApplier(primary, replica, delay_ms=0.0)
        try:
            for _ in range(32):
                hotel_metro_write(
                    serving_db, step[0], tracker=primary, domain=domain
                )
                step[0] += 1
            assert applier.lag() == 0
        finally:
            applier.close()

    benchmark.group = "E21 replica catch-up (32 writes)"
    benchmark(write_burst)

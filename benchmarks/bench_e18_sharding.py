"""E18: sharded scatter/merge serving.

Measures the sharded fleet's request path on the shared scale-8 hotel
database: an all-hit batch (every shard serves from its result cache
and the router replays memoized merged bytes), a batch after a
metro-local write (exactly one shard recomputes its slice, the merge
and serialization re-run), and the raw spine merge + serialize of
per-shard documents. The full fleet-size sweep and the scaling /
mismatch gates live in ``python -m repro.harness --e18-json``.
"""

import pytest

from repro.maintenance.workload import hotel_metro_write
from repro.schema_tree.evaluator import materialize
from repro.sharding import (
    KeyRangePartitioner,
    ShardRouter,
    merge_documents,
    partition_database,
    partition_keys,
    plan_merge,
)
from repro.workloads.hotel import hotel_partition_scheme
from repro.workloads.paper import figure1_view
from repro.xmlcore.serializer import serialize

REQUESTS = 6
SHARDS = 2


@pytest.fixture(scope="module")
def fleet(serving_db):
    """A 2-shard fleet over the shared scale-8 serving database."""
    router = ShardRouter.build(
        serving_db.catalog,
        serving_db,
        hotel_partition_scheme(),
        SHARDS,
        workers=2,
        staleness="strict",
        maintenance="full",
    )
    yield serving_db, router
    router.close()


def test_e18_all_hit_batch(benchmark, fleet):
    """Steady state between writes: per-shard result-cache hits plus
    the router's merged-bytes memo."""
    db, router = fleet
    view = figure1_view(db.catalog)
    benchmark.group = "E18 sharded serving (6-request batch)"
    router.render(view, strategy="bulk")  # prime caches and the memo
    benchmark(
        lambda: router.render_many([_request(view) for _ in range(REQUESTS)])
    )


def _request(view):
    from repro.serving import PublishRequest

    return PublishRequest(view, strategy="bulk")


def test_e18_one_shard_dirty_batch(benchmark, fleet):
    """A metro-local write lands before every batch: one shard
    recomputes its slice, the other serves a hit, merge re-runs."""
    db, router = fleet
    view = figure1_view(db.catalog)
    domain = [
        row["metroid"]
        for row in db.run_sql(
            "SELECT metroid FROM metroarea ORDER BY metroid", {}
        )
    ]
    benchmark.group = "E18 sharded serving (6-request batch)"
    router.render(view, strategy="bulk")
    step = [0]

    def write_then_batch():
        this = step[0]
        router.route_write(
            lambda source, tracker: hotel_metro_write(
                source, this, tracker=tracker, domain=domain
            )
        )
        step[0] += 1
        return router.render_many([_request(view) for _ in range(REQUESTS)])

    benchmark(write_then_batch)


def test_e18_spine_merge_and_serialize(benchmark, serving_db):
    """The raw merge primitive: concatenate per-shard partition runs
    under the spine and serialize the merged document."""
    view = figure1_view(serving_db.catalog)
    scheme = hotel_partition_scheme()
    partitioner = KeyRangePartitioner.from_keys(
        partition_keys(serving_db, scheme), SHARDS
    )
    shards = partition_database(serving_db, scheme, partitioner)
    try:
        plan = plan_merge(view)
        documents = [materialize(view, shard) for shard in shards]
        benchmark.group = "E18 spine merge"
        benchmark(lambda: serialize(merge_documents(plan, documents)))
    finally:
        for shard in shards:
            shard.close()
